#!/usr/bin/env python3
"""COPS as deployed: geo-replicated datacenters.

The flat protocol zoo models one cluster; this example runs COPS the way
its paper deploys it — two datacenters, each holding a full partitioned
copy of the key space, clients pinned to their local datacenter, writes
replicating asynchronously with remote dependency checks.

Watch three things:

1. local operations are fast and never wait for the WAN;
2. a dependent write replicated out of order is *held invisible* at the
   remote datacenter until its dependency lands (the dep-check that
   gives COPS its name — "Clusters of Order-Preserving Servers");
3. remote visibility lag grows with the causal chain depth, while local
   reads are untouched — the geo analogue of the paper's trade-off.
"""

from repro.consistency import check_history
from repro.protocols.cops_geo import build_geo_system
from repro.sim.scheduler import RoundRobinScheduler, run_until_quiescent
from repro.txn.types import read_only_txn, write_only_txn


def main() -> None:
    system = build_geo_system(
        objects=("wall:alice", "wall:bob"),
        n_dcs=2,
        partitions_per_dc=2,
        clients=("alice", "bob"),
        home_dcs={"alice": 0, "bob": 1},
    )
    sched = RoundRobinScheduler()
    sim = system.sim

    print("alice (dc0) posts; bob (dc1) replies — across the WAN")
    system.execute(
        "alice", write_only_txn({"wall:alice": "going hiking!"}, txid="post"),
        scheduler=sched,
    )
    system.settle()
    seen = system.execute(
        "bob", read_only_txn(("wall:alice",), txid="read"), scheduler=sched
    )
    print(f"  bob sees: {seen.reads}")
    system.execute(
        "bob", write_only_txn({"wall:bob": "have fun!"}, txid="reply"),
        scheduler=sched,
    )
    system.settle()
    rec = system.execute(
        "alice",
        read_only_txn(("wall:alice", "wall:bob"), txid="check"),
        scheduler=sched,
    )
    print(f"  alice sees: {rec.reads}")

    print()
    print("now the WAN reorders replication: the reply arrives at dc0 first")
    system2 = build_geo_system(
        objects=("wall:alice", "wall:bob"),
        n_dcs=2,
        partitions_per_dc=2,
        clients=("alice", "bob"),
        home_dcs={"alice": 1, "bob": 1},  # both in dc1 this time
    )
    sim2 = system2.sim
    sched2 = RoundRobinScheduler()
    # bob posts then replies-to-self, all in dc1; dc0 receives the REPLY
    # replication first
    system2.execute(
        "bob", write_only_txn({"wall:alice": "borrowed wall"}, txid="w0"),
        scheduler=sched2,
    )
    system2.execute(
        "bob", read_only_txn(("wall:alice",), txid="r0"), scheduler=sched2
    )
    system2.execute(
        "bob", write_only_txn({"wall:bob": "re: borrowed"}, txid="w1"),
        scheduler=sched2,
    )
    # deliver only the dependent write's replication to dc0
    for m in list(sim2.network.pending(dst="s0p1")):
        sim2.deliver_msg(m)
        sim2.step("s0p1")
    server = system2.server("s0p1")
    pending = [v for v in server.versions("wall:bob") if not v.visible]
    print(f"  dc0's copy of the reply is pending: {pending}")
    print("  (held by the dependency check until the post replicates)")
    system2.settle()
    print(
        "  after full replication: "
        f"{[ (v.value, v.visible) for v in server.versions('wall:bob') ]}"
    )

    report = check_history(system2.history(), level="causal", exact=True)
    print()
    print(f"consistency across both datacenters: {report.describe()}")


if __name__ == "__main__":
    main()
