#!/usr/bin/env python3
"""The §4 loophole: beating the theorem by weakening progress.

SwiftCloud and Eiger-PS (the dagger rows of Table 1) support fast
read-only transactions AND multi-object write transactions — apparently
contradicting the theorem.  Section 4 explains: they live in a different
system model, where "the values they write may be invisible to some
clients for an indefinitely long time".  This example makes the loophole
tangible:

1. a SwiftCloud-style store answers reads in one non-blocking round and
   commits multi-object writes — measured fast, measured WTX, verified
   causally consistent;
2. but a *fresh* client reads the initial values no matter how long ago
   the writes completed: Definition 2 visibility is never reached, so
   the minimal-progress premise (Definition 3) fails — which is exactly
   the premise the theorem needs;
3. ask the store to be fresh (sync before reading) and the theorem
   snaps back: reads now take two rounds.
"""

from repro import Store
from repro.analysis.metrics import analyze_transactions
from repro.core import check_impossibility


def main() -> None:
    print("=" * 68)
    print("1. SwiftCloud-style: fast reads + write transactions ... ")
    print("=" * 68)
    store = Store(
        protocol="swiftcloud",
        objects=["X0", "X1"],
        n_servers=2,
        clients=["writer", "veteran", "fresh1", "fresh2"],
        seed=7,
        sync_every=0,
    )
    store.write("writer", {"X0": "new0", "X1": "new1"})  # multi-object WTX!
    store.settle()
    print("writer committed the multi-object transaction; system quiescent")

    # a veteran client (who has read before) catches up via piggybacking
    store.read("veteran", ["X0"])
    print(f"veteran's second read: {store.read('veteran', ['X0', 'X1'])}")

    stats = analyze_transactions(store.system.sim.trace, store.history(), store.servers)
    rot = [s for s in stats.values() if s.read_only][-1]
    print(
        f"measured: rounds={rot.rounds}, blocked={rot.blocked}, "
        f"values/object={rot.max_values_per_object} -> fast ROT + WTX!"
    )
    print(f"consistency: {store.check_consistency(exact=True).describe()}")

    print()
    print("=" * 68)
    print("2. ... paid for with unbounded staleness")
    print("=" * 68)
    for reader in ("fresh1", "fresh2"):
        print(f"{reader} (never read before) sees: {store.read(reader, ['X0', 'X1'])}")
    print(
        "fresh readers see the INITIAL values (⊥) long after the write\n"
        "completed — Definition 2 visibility never holds, so the theorem's\n"
        "minimal-progress premise (Definition 3) is violated."
    )
    verdict = check_impossibility("swiftcloud", max_k=3)
    print(f"engine verdict: {verdict.outcome} — {verdict.detail[:70]}...")

    print()
    print("=" * 68)
    print("3. Demand freshness and the theorem returns")
    print("=" * 68)
    verdict = check_impossibility("swiftcloud", max_k=3, sync_every=1)
    print(f"with sync-before-read: {verdict.outcome}")
    print(f"  {verdict.detail}")


if __name__ == "__main__":
    main()
