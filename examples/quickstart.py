#!/usr/bin/env python3
"""Quickstart: a causally consistent distributed store in five minutes.

Spins up a simulated COPS-SNOW deployment (the only design with *fast*
read-only transactions: one round, one value, non-blocking), runs a few
transactions, inspects the history, and verifies causal consistency with
the exact Definition-1 checker.  Then demonstrates the functionality
price: COPS-SNOW refuses multi-object write transactions, and Wren —
which accepts them — needs two rounds to read.
"""

from repro import Store
from repro.txn.client import UnsupportedTransaction
from repro.analysis.metrics import analyze_transactions


def main() -> None:
    print("=" * 64)
    print("1. A COPS-SNOW store: fast reads, single-object writes")
    print("=" * 64)
    store = Store(
        protocol="cops_snow",
        objects=["wallet:alice", "wallet:bob", "ledger"],
        n_servers=2,
        clients=["alice", "bob", "auditor", "probe"],
        seed=42,
    )

    store.write("alice", {"wallet:alice": "100"})
    store.write("bob", {"wallet:bob": "250"})
    print("alice and bob funded their wallets")

    # bob reads alice's wallet, then writes the ledger: a causal chain
    seen = store.read("bob", ["wallet:alice"])
    store.write("bob", {"ledger": f"bob saw alice={seen['wallet:alice']}"})
    print(f"bob recorded: {seen}")

    # the auditor reads everything in ONE round
    audit = store.read("auditor", ["wallet:alice", "wallet:bob", "ledger"])
    print(f"auditor sees: {audit}")

    # measured properties of the auditor's read
    stats = analyze_transactions(
        store.system.sim.trace, store.history(), store.servers
    )
    rot = [s for s in stats.values() if s.read_only][-1]
    print(
        f"auditor's ROT: rounds={rot.rounds}, "
        f"values/object<={rot.max_values_per_object}, blocked={rot.blocked}"
        f"  -> fast={rot.fast}"
    )

    report = store.check_consistency(exact=True)
    print(f"causal consistency: {report.describe()}")

    print()
    print("=" * 64)
    print("2. The price of fast reads: no multi-object write transactions")
    print("=" * 64)
    try:
        store.write("alice", {"wallet:alice": "50", "wallet:bob": "300"})
    except UnsupportedTransaction as exc:
        print(f"COPS-SNOW refused the transfer transaction: {exc}")

    print()
    print("=" * 64)
    print("3. Wren accepts the transfer - but reads now take two rounds")
    print("=" * 64)
    wren = Store(
        protocol="wren",
        objects=["wallet:alice", "wallet:bob"],
        n_servers=2,
        clients=["alice", "auditor"],
        seed=42,
    )
    wren.write("alice", {"wallet:alice": "50", "wallet:bob": "300"})
    wren.settle()
    print(f"atomic transfer committed: {wren.read('auditor', ['wallet:alice', 'wallet:bob'])}")
    stats = analyze_transactions(wren.system.sim.trace, wren.history(), wren.servers)
    rot = [s for s in stats.values() if s.read_only][-1]
    print(f"auditor's ROT on Wren: rounds={rot.rounds} (not fast — the theorem at work)")
    print(f"causal consistency: {wren.check_consistency(exact=True).describe()}")


if __name__ == "__main__":
    main()
