#!/usr/bin/env python3
"""The impossibility theorem, executed.

Runs the mechanized proof of "Distributed Transactional Systems Cannot
Be Fast" (SPAA'19) against every protocol in the zoo, prints which of
the four properties each one gives up, and then materializes the paper's
contradiction against the protocols that claim all four:

* FastClaim — caught at induction round k=1 (the γ splice of Figure 3);
* Handshake-K — holds out for exactly 2K rounds of forced server-to-
  server messages (the "troublesome execution" of Lemma 3 growing
  prefix by prefix), then the δ splice catches it.

Finishes with Theorem 2: the same result on a partially replicated
three-server system.
"""

from repro.analysis import figure3
from repro.core import (
    check_impossibility,
    check_impossibility_general,
)
from repro.protocols import protocol_names


def main() -> None:
    print("=" * 72)
    print("Theorem 1: no causally consistent system keeps all of")
    print("  W (multi-object write txns) + one-round + one-value + non-blocking")
    print("=" * 72)
    for name in sorted(protocol_names()):
        verdict = check_impossibility(name, max_k=6)
        print()
        print(verdict.describe())

    print()
    print("=" * 72)
    print("The troublesome execution, growing: Handshake-K needs 2K forced")
    print("messages before the splice catches it")
    print("=" * 72)
    for hops in (1, 2, 3):
        verdict = check_impossibility(
            "handshake", max_k=2 * hops + 2, sync_hops=hops, skip_fast_check=True
        )
        print(
            f"  sync_hops={hops}: {verdict.outcome} at k={verdict.k_reached} "
            f"({len(verdict.forced_messages)} forced messages)"
        )

    print()
    print("=" * 72)
    print("Figure 3, regenerated from the live run")
    print("=" * 72)
    print(figure3("fastclaim"))

    print()
    print("=" * 72)
    print("Theorem 2: three servers, partial replication (factor 2)")
    print("=" * 72)
    verdict = check_impossibility_general(
        "fastclaim",
        objects=("X0", "X1", "X2", "X3"),
        n_servers=3,
        replication=2,
        max_k=4,
    )
    print(verdict.describe())


if __name__ == "__main__":
    main()
