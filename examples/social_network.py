#!/usr/bin/env python3
"""A read-dominated social-network workload across the protocol zoo.

The paper motivates fast read-only transactions with read-dominated
production workloads (Facebook reports well above 95 % reads).  This
example models a tiny social app — user profiles, posts, and timeline
reads that must be causally consistent ("never see the reply without
the post") — and runs the *same* logical workload on several systems,
reporting the latency shape the theorem predicts:

* COPS-SNOW reads in one round but cannot post-with-profile-update
  atomically;
* Wren/Cure keep atomic multi-object writes but pay a snapshot round;
* Spanner reads in one round but blocks behind writers;
* FastClaim "wins" every metric and silently corrupts causality.
"""

from repro.analysis.metrics import analyze_transactions
from repro.analysis.tables import format_table
from repro.consistency import check_history, find_causal_anomalies
from repro.protocols import build_system, get_protocol
from repro.sim.scheduler import RandomScheduler
from repro.txn.client import UnsupportedTransaction
from repro.txn.types import read_only_txn, write_only_txn
from repro.workloads import WorkloadSpec, run_workload

USERS = ["alice", "bob", "carol"]
OBJECTS = [f"profile:{u}" for u in USERS] + [f"posts:{u}" for u in USERS]

PROTOCOLS = ["cops_snow", "cops", "contrarian", "wren", "cure", "spanner", "fastclaim"]


def timeline_scenario(protocol: str) -> dict:
    """Post-and-reply: the classic causal anomaly scenario."""
    system = build_system(
        protocol, objects=OBJECTS, n_servers=3, clients=("alice", "bob", "carol")
    )

    def w(client, writes):
        try:
            system.execute(client, write_only_txn(writes))
            return True
        except UnsupportedTransaction:
            # restricted protocols post without the atomic profile bump
            for obj, val in writes.items():
                system.execute(client, write_only_txn({obj: val}))
            return False

    atomic = w("alice", {"posts:alice": "lunch pics!", "profile:alice": "1 post"})
    # bob reads alice's post, then replies
    got = system.execute(bob_read := "bob", read_only_txn(("posts:alice",)))
    w("bob", {"posts:bob": f"re: {got.reads['posts:alice']}"})
    # carol reads both timelines
    rec = system.execute(
        "carol", read_only_txn(("posts:alice", "posts:bob"), txid="timeline")
    )
    system.settle()
    stats = analyze_transactions(system.sim.trace, system.history(), system.servers)
    anomalies = find_causal_anomalies(system.history())
    return {
        "atomic_post": atomic,
        "timeline": dict(rec.reads),
        "timeline_rounds": stats["timeline"].rounds,
        "anomalies": len(anomalies),
    }


def bulk_run(protocol: str) -> dict:
    system = build_system(
        protocol, objects=OBJECTS, n_servers=3,
        clients=tuple(USERS) + ("dave", "erin"),
    )
    spec = WorkloadSpec(
        n_txns=150, read_ratio=0.95, read_size=(2, 4), write_size=(1, 2),
        zipf_theta=0.9, seed=20,
    )
    hist = run_workload(system, spec, scheduler=RandomScheduler(99))
    stats = analyze_transactions(system.sim.trace, hist, system.servers)
    rots = [s for s in stats.values() if s.read_only]
    level = get_protocol(protocol).consistency
    report = check_history(hist, level=level)
    n = max(1, len(rots))
    return {
        "rounds_avg": sum(s.rounds for s in rots) / n,
        "rounds_max": max(s.rounds for s in rots),
        "blocked_%": 100.0 * sum(s.blocked for s in rots) / n,
        "latency_avg": sum(s.latency_events for s in rots) / n,
        "consistency": f"{level}:{'ok' if report.ok else 'VIOLATED'}",
    }


def main() -> None:
    print("Scenario 1 — post & reply (the anomaly the intro warns about)")
    rows = []
    for p in PROTOCOLS:
        r = timeline_scenario(p)
        rows.append(
            [
                p,
                "yes" if r["atomic_post"] else "no",
                r["timeline_rounds"],
                r["anomalies"],
            ]
        )
    print(
        format_table(
            ["protocol", "atomic post+profile", "timeline rounds", "causal anomalies"],
            rows,
        )
    )

    print()
    print("Scenario 2 — 95%-read timeline workload, 150 transactions")
    rows = []
    for p in PROTOCOLS:
        r = bulk_run(p)
        rows.append(
            [
                p,
                f"{r['rounds_avg']:.2f}",
                r["rounds_max"],
                f"{r['blocked_%']:.0f}%",
                f"{r['latency_avg']:.1f}",
                r["consistency"],
            ]
        )
    print(
        format_table(
            [
                "protocol",
                "avg ROT rounds",
                "max",
                "blocked ROTs",
                "avg latency (events)",
                "verified",
            ],
            rows,
        )
    )
    print()
    print(
        "The shape the theorem predicts: only COPS-SNOW (no write txns)\n"
        "and FastClaim (not actually causal) read in one fast round."
    )


if __name__ == "__main__":
    main()
