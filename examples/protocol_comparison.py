#!/usr/bin/env python3
"""Regenerate Table 1 (and the metadata-cost comparison) from live runs.

Every registered protocol executes the same seeded mixed workload; the
measured R/V/N/WTX row is printed next to the paper's claimed row, the
matching consistency checker verifies each history, and a second table
quantifies the wire cost (GentleRain's O(1) metadata vs Orbe's vectors
vs COPS-RW's "prohibitively big amount of data").
"""

from repro.analysis import characterize, render_table1
from repro.analysis.tables import format_table
from repro.protocols import build_system, protocol_names
from repro.workloads import WorkloadSpec, run_workload

SPEC = WorkloadSpec(
    n_txns=120, read_ratio=0.7, read_size=(2, 3), write_size=(1, 2), seed=11
)


def main() -> None:
    chars = []
    meta_rows = []
    for name in sorted(protocol_names()):
        system = build_system(name, objects=("X0", "X1", "X2", "X3"), n_servers=2)
        hist = run_workload(system, SPEC)
        ch = characterize(system, hist)
        chars.append(ch)
        meta_rows.append(
            [
                name,
                f"{ch.avg_value_bytes:.0f}",
                f"{ch.avg_metadata_bytes:.0f}",
                f"{ch.avg_rot_latency:.1f}",
                ch.max_hops,
            ]
        )
    print(render_table1(chars, include_unimplemented=True))
    print()
    print(
        format_table(
            [
                "protocol",
                "value bytes/ROT",
                "metadata bytes/ROT",
                "latency (events)",
                "hops",
            ],
            meta_rows,
            title="Wire-cost comparison (the price of each design corner)",
        )
    )


if __name__ == "__main__":
    main()
