# Convenience targets; see README.md for details.
#
# PYTHONPATH=src on every python invocation so a clean checkout works
# without `pip install -e .`.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: install test test-fast lint lint-changed bench bench-smoke examples all

install:
	pip install -e . || python setup.py develop  # offline fallback

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest tests/ -m "not slow"

# static protocol-contract and determinism linter (docs/lint.md);
# the budget file pins how many justified suppressions each rule
# family may carry
lint:
	$(PY) -m repro.lint src benchmarks tests/helpers.py --budget lint_budget.json

# same scope, but only files changed vs git HEAD (fast pre-push check)
lint-changed:
	$(PY) -m repro.lint --changed --budget lint_budget.json

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# fast perf-regression gate: exact exploration counts vs the committed
# baseline (PYTHONHASHSEED pinned so any failure reproduces bit-for-bit)
bench-smoke:
	PYTHONHASHSEED=0 $(PY) benchmarks/bench_smoke.py

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/staleness_tradeoff.py
	$(PY) examples/geo_replication.py
	$(PY) examples/social_network.py
	$(PY) examples/protocol_comparison.py
	$(PY) examples/impossibility_demo.py

all: test lint bench
