# Convenience targets; see README.md for details.

.PHONY: install test test-fast bench bench-smoke examples all

install:
	pip install -e . || python setup.py develop  # offline fallback

test:
	python -m pytest tests/

test-fast:
	python -m pytest tests/ -m "not slow"

bench:
	python -m pytest benchmarks/ --benchmark-only

# fast perf-regression gate: exact exploration counts vs the committed
# baseline (PYTHONHASHSEED pinned so any failure reproduces bit-for-bit)
bench-smoke:
	PYTHONHASHSEED=0 python benchmarks/bench_smoke.py

examples:
	python examples/quickstart.py
	python examples/staleness_tradeoff.py
	python examples/geo_replication.py
	python examples/social_network.py
	python examples/protocol_comparison.py
	python examples/impossibility_demo.py

all: install test bench
