"""Process state machines and the step context.

A :class:`Process` models one node of the system graph (a client or a
server).  The simulator calls :meth:`Process.on_step` to perform a
*computation step*: the process receives every message currently residing
in its income buffers and may send at most one message to each neighbour
through the :class:`StepContext`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.codec import const
from repro.sim.messages import Message, Payload, ProcessId


class StepContext:
    """Capability handed to a process for the duration of one step.

    Enforces the model's "at most one message per neighbour per step" rule
    and collects the sends so the executor can place them in the outcome
    buffers atomically at the end of the step.
    """

    def __init__(self, pid: ProcessId, neighbors: Iterable[ProcessId], step_index: int):
        self.pid = pid
        self._neighbors = frozenset(neighbors)
        self.step_index = step_index
        self._sends: Dict[ProcessId, Payload] = {}

    def send(self, dst: ProcessId, payload: Payload) -> None:
        """Queue ``payload`` for ``dst``.  At most one send per neighbour."""
        if dst == self.pid:
            raise ValueError(f"{self.pid} attempted to send to itself")
        if dst not in self._neighbors:
            raise ValueError(f"{self.pid} has no link to {dst}")
        if dst in self._sends:
            raise ValueError(
                f"{self.pid} attempted a second send to {dst} in one step "
                "(the model allows at most one message per neighbour per step)"
            )
        self._sends[dst] = payload

    def sent_to(self, dst: ProcessId) -> bool:
        """Whether a message to ``dst`` is already queued this step."""
        return dst in self._sends

    @property
    def sends(self) -> List[Tuple[ProcessId, Payload]]:
        return list(self._sends.items())


class Process:
    """Base class for all simulated processes.

    Subclasses implement :meth:`on_step`.  All state must be held in plain
    Python attributes so that :meth:`repro.sim.executor.Simulation.snapshot`
    (a serialization) captures the full configuration.

    Each process carries a *dirty counter* (``_version``): the executor
    bumps it after every event applied to the process, and the snapshot
    machinery reuses a cached serialization as long as the counter is
    unchanged.  The counter is bookkeeping about the live object, not part
    of the configuration, so it is excluded from snapshots and
    fingerprints (see :meth:`__getstate__`).  Code that mutates process
    state outside of :meth:`on_step` / ``on_invoke`` must call
    :meth:`mark_dirty` afterwards.

    Subclasses additionally declare their state fields in a
    ``codec_schema`` tuple (see :mod:`repro.sim.codec`): each class
    lists only the fields its own ``__init__`` introduces; the full
    schema is collected over the MRO.  The declaration drives the
    schema-codec snapshot mode (``snapshot_mode="codec"``) and the
    incremental Merkle fingerprints; a class without a complete schema
    still works through the pickled-blob fallback, but pays O(process)
    per event instead of O(delta).  Lint rule RL504 cross-checks the
    declarations against the assignments.
    """

    #: declared state fields for the schema codec; ``pid`` never
    #: changes after construction, so it is a ``const`` field (encoded
    #: once, shared by reference across every snapshot)
    codec_schema = (const("pid"),)

    def __init__(self, pid: ProcessId):
        self.pid = pid
        self._version = 0

    def mark_dirty(self) -> None:
        """Invalidate any cached serialization of this process."""
        self._version = getattr(self, "_version", 0) + 1

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_version", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._version = 0

    def fp_state(self):
        """State as seen by *trace-canonical* fingerprints.

        Defaults to the full snapshot state.  Subclasses that record
        purely diagnostic data derived from the global event counter —
        data the process never branches on, such as a client's
        invocation/completion stamps — override this to mask it, so
        configurations that differ only by a permutation of independent
        events collide under ``Simulation.fingerprint(canonical=True)``.
        State the process *does* branch on must never be masked; a
        protocol whose decisions read the global counter itself (a
        synchronized-clock model) cannot be canonicalized this way and
        must set ``por_safe=False`` in the registry instead.
        """
        return self.__getstate__()

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        """Perform one computation step.

        ``inbox`` contains *all* messages delivered to this process since
        its previous step (the model: a step reads all messages residing in
        the income buffers).  Sends go through ``ctx.send``.
        """
        raise NotImplementedError

    def wants_step(self) -> bool:
        """Whether stepping this process (with an empty inbox) is useful.

        Used by fair schedulers to decide quiescence: a configuration is
        quiescent only when no messages are in transit or pending delivery
        and no process wants a step.  Processes with deferred work (a
        blocked read, an unfinished commit-wait, replication queues) must
        return ``True``.
        """
        return False


class NullProcess(Process):
    """A process that does nothing; handy in tests."""

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        return None
