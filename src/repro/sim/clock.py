"""Logical and simulated-physical clocks.

The protocol zoo needs the full range of timestamping devices used by the
systems in Table 1:

* :class:`LamportClock` — scalar logical clock (Orbe, Contrarian, ...);
* :class:`VectorClock` — per-server vectors (Cure's GST vectors);
* :class:`HybridLogicalClock` — HLC as used by Wren;
* :class:`TrueTimeOracle` — Spanner's bounded-uncertainty clock,
  simulated over the executor's event counter (the substitution for the
  GPS/atomic-clock infrastructure; documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


class LamportClock:
    """Classic scalar logical clock."""

    def __init__(self, start: int = 0):
        self.time = start

    def tick(self) -> int:
        self.time += 1
        return self.time

    def observe(self, other: int) -> int:
        """Merge a timestamp received on a message, then tick."""
        self.time = max(self.time, other) + 1
        return self.time

    def peek(self) -> int:
        return self.time


class VectorClock:
    """Vector clock over a fixed set of node ids."""

    def __init__(self, nodes: Tuple[str, ...], owner: str):
        if owner not in nodes:
            raise ValueError(f"owner {owner!r} not in nodes")
        self.owner = owner
        self.clock: Dict[str, int] = {n: 0 for n in nodes}

    def tick(self) -> Dict[str, int]:
        self.clock[self.owner] += 1
        return dict(self.clock)

    def observe(self, other: Dict[str, int]) -> Dict[str, int]:
        for n, t in other.items():
            if n in self.clock and t > self.clock[n]:
                self.clock[n] = t
        self.clock[self.owner] += 1
        return dict(self.clock)

    def peek(self) -> Dict[str, int]:
        return dict(self.clock)

    @staticmethod
    def leq(a: Dict[str, int], b: Dict[str, int]) -> bool:
        """Pointwise ≤ (the happens-before partial order)."""
        return all(a.get(k, 0) <= b.get(k, 0) for k in set(a) | set(b))

    @staticmethod
    def concurrent(a: Dict[str, int], b: Dict[str, int]) -> bool:
        return not VectorClock.leq(a, b) and not VectorClock.leq(b, a)


@dataclass(frozen=True, order=True)
class HLCTimestamp:
    """Hybrid logical clock timestamp: (physical, logical, node)."""

    physical: int
    logical: int
    node: str = ""


class HybridLogicalClock:
    """HLC (Kulkarni et al.): physical component + logical tiebreaker.

    The "physical" component is fed by the caller (the simulator's event
    counter as seen at each step), so HLC order refines causal order while
    staying close to (simulated) real time.
    """

    def __init__(self, node: str):
        self.node = node
        self.physical = 0
        self.logical = 0

    def now(self, wall: int) -> HLCTimestamp:
        if wall > self.physical:
            self.physical = wall
            self.logical = 0
        else:
            self.logical += 1
        return HLCTimestamp(self.physical, self.logical, self.node)

    def observe(self, ts: HLCTimestamp, wall: int) -> HLCTimestamp:
        new_phys = max(self.physical, ts.physical, wall)
        if new_phys == self.physical == ts.physical:
            self.logical = max(self.logical, ts.logical) + 1
        elif new_phys == self.physical:
            self.logical += 1
        elif new_phys == ts.physical:
            self.logical = ts.logical + 1
        else:
            self.logical = 0
        self.physical = new_phys
        return HLCTimestamp(self.physical, self.logical, self.node)

    def peek(self) -> HLCTimestamp:
        return HLCTimestamp(self.physical, self.logical, self.node)


@dataclass(frozen=True)
class TTInterval:
    """A TrueTime interval: true time ∈ [earliest, latest]."""

    earliest: int
    latest: int


class TrueTimeOracle:
    """Simulated TrueTime with uncertainty bound ``epsilon``.

    True time is the executor's event counter; each process sees it
    through a deterministic per-process skew in ``[-epsilon, +epsilon]``
    derived from the process id, so different processes genuinely disagree
    (within bounds) about the current time.
    """

    def __init__(self, epsilon: int = 4):
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        self.epsilon = epsilon

    def _skew(self, pid: str) -> int:
        if self.epsilon == 0:
            return 0
        h = 0
        for ch in pid:
            h = (h * 131 + ord(ch)) % (2 * self.epsilon + 1)
        return h - self.epsilon

    def now(self, pid: str, wall: int) -> TTInterval:
        local = max(0, wall + self._skew(pid))
        return TTInterval(max(0, local - self.epsilon), local + self.epsilon)

    def after(self, pid: str, t: int, wall: int) -> bool:
        """TT.after(t): guaranteed that true time has passed ``t``."""
        return self.now(pid, wall).earliest > t

    def before(self, pid: str, t: int, wall: int) -> bool:
        """TT.before(t): guaranteed that true time has not reached ``t``."""
        return self.now(pid, wall).latest < t
