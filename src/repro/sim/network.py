"""Links, in-transit queues, and income buffers.

The model is a complete undirected graph; every ordered pair of distinct
processes is a directed link with

* an *in-transit* queue (the source's outcome buffer for that link), and
* the destination's *income buffer* slot for that link.

Links are reliable (no loss, duplication, corruption, injection) but
**asynchronous**: the adversary may deliver in-transit messages in any
order, including out of FIFO order on a single link.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.sim.messages import Message, ProcessId

Link = Tuple[ProcessId, ProcessId]


class Network:
    """In-transit message storage plus per-process income buffers."""

    def __init__(self, pids: Iterable[ProcessId]):
        self.pids: Tuple[ProcessId, ...] = tuple(pids)
        if len(set(self.pids)) != len(self.pids):
            raise ValueError("duplicate process ids")
        # in-transit messages, per directed link
        self.in_transit: Dict[Link, Deque[Message]] = {}
        # delivered-but-unprocessed messages, per destination process
        self.income: Dict[ProcessId, List[Message]] = {p: [] for p in self.pids}
        # per-link send counters, for structural link_seq addressing
        self.link_counts: Dict[Link, int] = {}
        # dirty counter for the snapshot-serialization cache; bumped by
        # every mutator, excluded from snapshots (see __getstate__)
        self._version = 0

    def mark_dirty(self) -> None:
        """Invalidate any cached serialization of this network."""
        self._version += 1

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_version", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._version = 0

    # -- sending ---------------------------------------------------------

    def next_link_seq(self, src: ProcessId, dst: ProcessId) -> int:
        return self.link_counts.get((src, dst), 0)

    def post(self, msg: Message) -> None:
        """Place a freshly sent message in the source's outcome buffer."""
        link = (msg.src, msg.dst)
        expected = self.link_counts.get(link, 0)
        if msg.link_seq != expected:
            raise ValueError(
                f"link_seq mismatch on {link}: got {msg.link_seq}, expected {expected}"
            )
        self.link_counts[link] = expected + 1
        self.in_transit.setdefault(link, deque()).append(msg)
        self._version += 1

    # -- delivery --------------------------------------------------------

    def pending(self, src: Optional[ProcessId] = None, dst: Optional[ProcessId] = None) -> List[Message]:
        """All in-transit messages, optionally filtered by endpoint."""
        out: List[Message] = []
        for (s, d), q in self.in_transit.items():
            if src is not None and s != src:
                continue
            if dst is not None and d != dst:
                continue
            out.extend(q)
        out.sort(key=lambda m: m.msg_id)
        return out

    def find(self, src: ProcessId, dst: ProcessId, link_seq: int) -> Optional[Message]:
        q = self.in_transit.get((src, dst))
        if not q:
            return None
        for m in q:
            if m.link_seq == link_seq:
                return m
        return None

    def deliver(self, src: ProcessId, dst: ProcessId, link_seq: int) -> Message:
        """Move one message from in-transit to the destination's income buffer.

        The adversary addresses the message structurally by
        ``(src, dst, link_seq)``; delivery need not be FIFO.
        """
        q = self.in_transit.get((src, dst))
        if q:
            for i, m in enumerate(q):
                if m.link_seq == link_seq:
                    del q[i]
                    self.income[dst].append(m)
                    self._version += 1
                    return m
        raise KeyError(f"no in-transit message {src}->{dst}#{link_seq}")

    def drain_income(self, pid: ProcessId) -> List[Message]:
        """Remove and return every delivered message awaiting ``pid``.

        The batch is presented in canonical ``(src, link_seq)`` order:
        in the model a step reads the *set* of messages residing in its
        income buffers, so the order in which the adversary happened to
        deliver them within one batch is a simulator artifact.  The
        canonical presentation makes a process's behaviour a function of
        the batch set — which is exactly what lets the exploration
        engine treat two deliveries to the same process as commuting
        (see :mod:`repro.sim.events`).
        """
        msgs = self.income[pid]
        if msgs:
            # canonicalize while the list is still tracked state, then
            # detach and bump: every mutation precedes the version bump
            msgs.sort(key=lambda m: (m.src, m.link_seq))
            self.income[pid] = []
            self._version += 1
        return msgs

    # -- inspection ------------------------------------------------------

    def n_in_transit(self) -> int:
        return sum(len(q) for q in self.in_transit.values())

    def n_income(self) -> int:
        return sum(len(v) for v in self.income.values())

    def idle(self) -> bool:
        """True when no message is in transit and no income buffer is full."""
        return self.n_in_transit() == 0 and self.n_income() == 0
