"""Hostile-but-fair schedulers for chaos testing.

The model's adversary may delay any message arbitrarily (never losing
it).  Beyond the round-robin and seeded-random schedulers these
adversaries exercise the delay freedom systematically:

* :class:`LIFOScheduler` — always delivers the *newest* in-transit
  message first: maximal reordering on every link;
* :class:`StarveLinkScheduler` — withholds one chosen link's messages as
  long as anything else can happen (the pattern behind the paper's
  constructions: one server's view frozen while the world moves);
* :class:`BurstScheduler` — alternates long step-only phases with
  delivery storms, so processes see big message batches at once.

All of them are fair in the limit (a run to quiescence delivers
everything), so every execution they produce is legal — protocols must
stay consistent under all of them, which the chaos tests verify.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.sim.executor import Simulation
from repro.sim.messages import Message, ProcessId
from repro.sim.scheduler import Scheduler


class LIFOScheduler(Scheduler):
    """Delivers newest-first; steps round-robin between deliveries."""

    def __init__(self) -> None:
        self._rr = 0
        self._phase = 0

    def tick(self, sim: Simulation, pids: Optional[Sequence[ProcessId]] = None) -> bool:
        deliverable = self._deliverable(sim, pids)
        steppable = self._steppable(sim, pids)
        if not deliverable and not steppable:
            return False
        do_deliver = deliverable and (self._phase % 2 == 0 or not steppable)
        self._phase += 1
        if do_deliver:
            sim.deliver_msg(deliverable[-1])  # newest message first
            return True
        order = sorted(steppable)
        sim.step(order[self._rr % len(order)])
        self._rr += 1
        return True


class StarveLinkScheduler(Scheduler):
    """Withholds one directed link's messages for long stretches.

    Messages on the starved link are delayed while anything else can
    move, but at most ``patience`` ticks at a time — processes with
    deferred work keep generating steps forever (retries, gossip), so an
    unconditional starvation would be unfair (the message would *never*
    be delivered, which the model forbids).  Bounded starvation keeps
    the run legal while still producing extreme reorderings.
    """

    def __init__(self, src: ProcessId, dst: ProcessId, patience: int = 25):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.src = src
        self.dst = dst
        self.patience = patience
        self._rr = 0
        self._phase = 0
        self._starving_since = 0

    def tick(self, sim: Simulation, pids: Optional[Sequence[ProcessId]] = None) -> bool:
        deliverable = self._deliverable(sim, pids)
        preferred = [
            m for m in deliverable if not (m.src == self.src and m.dst == self.dst)
        ]
        starved = [m for m in deliverable if m not in preferred]
        steppable = self._steppable(sim, pids)
        if not deliverable and not steppable:
            return False
        self._phase += 1
        if starved:
            self._starving_since += 1
            if self._starving_since >= self.patience or not (preferred or steppable):
                self._starving_since = 0
                sim.deliver_msg(starved[0])
                return True
        do_deliver = preferred and (self._phase % 2 == 0 or not steppable)
        if do_deliver:
            sim.deliver_msg(preferred[0])
            return True
        if steppable:
            order = sorted(steppable)
            sim.step(order[self._rr % len(order)])
            self._rr += 1
            return True
        sim.deliver_msg(deliverable[0])
        return True


class BurstScheduler(Scheduler):
    """Step-only phases punctuated by delivery storms."""

    def __init__(self, burst_every: int = 8, seed: int = 0):
        if burst_every < 1:
            raise ValueError("burst_every must be >= 1")
        self.burst_every = burst_every
        self.rng = random.Random(seed)
        self._count = 0

    def tick(self, sim: Simulation, pids: Optional[Sequence[ProcessId]] = None) -> bool:
        deliverable = self._deliverable(sim, pids)
        steppable = self._steppable(sim, pids)
        if not deliverable and not steppable:
            return False
        self._count += 1
        in_storm = (self._count // self.burst_every) % 2 == 1
        if in_storm and deliverable:
            sim.deliver_msg(self.rng.choice(deliverable))
            return True
        if steppable:
            sim.step(self.rng.choice(sorted(steppable)))
            return True
        sim.deliver_msg(deliverable[0])
        return True


ADVERSARIES = {
    "lifo": LIFOScheduler,
    "burst": BurstScheduler,
}


def all_adversaries(servers: Sequence[ProcessId]) -> List[Tuple[str, Scheduler]]:
    """One instance of every adversary, including per-link starvation."""
    out: List[Tuple[str, Scheduler]] = [
        ("lifo", LIFOScheduler()),
        ("burst", BurstScheduler(seed=3)),
    ]
    for i, src in enumerate(servers):
        for dst in servers[i + 1 :]:
            out.append((f"starve:{src}->{dst}", StarveLinkScheduler(src, dst)))
    return out
