"""Asynchronous message-passing simulator.

This package implements the system model of Section 2 of the paper:

* processes (clients and servers) are deterministic state machines whose
  state includes one *income* and one *outcome* buffer per incident link;
* a **computation step** lets a process read all messages residing in its
  income buffers, perform local computation, and send at most one message
  to each of its neighbours;
* a **delivery event** removes one message from the outcome buffer of the
  source and places it in the income buffer of the destination;
* links do not lose, modify, inject or duplicate messages;
* the order of events is controlled by an adversary (a
  :class:`~repro.sim.scheduler.Scheduler` or an explicit command script).

The simulator is deterministic: an execution is a pure function of the
initial configuration and the sequence of :mod:`~repro.sim.replay`
commands applied to it, which is what makes the paper's
indistinguishability splices executable (see :mod:`repro.core.splicing`).
"""

from repro.sim.messages import Message, Payload
from repro.sim.process import Process, StepContext
from repro.sim.network import Network
from repro.sim.executor import (
    SNAPSHOT_MODES,
    Simulation,
    Configuration,
    BlobConfiguration,
    DeepCopyConfiguration,
    SimCounters,
    use_snapshot_mode,
)
from repro.sim.replay import Command, StepCmd, DeliverCmd, InvokeCmd, ReplayError
from repro.sim.scheduler import (
    Scheduler,
    RoundRobinScheduler,
    RandomScheduler,
    run_until_quiescent,
)
from repro.sim.trace import Trace, StepEvent, DeliverEvent, InvokeEvent
from repro.sim.clock import (
    LamportClock,
    VectorClock,
    HybridLogicalClock,
    HLCTimestamp,
    TrueTimeOracle,
    TTInterval,
)

__all__ = [
    "Message",
    "Payload",
    "Process",
    "StepContext",
    "Network",
    "SNAPSHOT_MODES",
    "Simulation",
    "Configuration",
    "BlobConfiguration",
    "DeepCopyConfiguration",
    "SimCounters",
    "use_snapshot_mode",
    "Command",
    "StepCmd",
    "DeliverCmd",
    "InvokeCmd",
    "ReplayError",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "run_until_quiescent",
    "Trace",
    "StepEvent",
    "DeliverEvent",
    "InvokeEvent",
    "LamportClock",
    "VectorClock",
    "HybridLogicalClock",
    "HLCTimestamp",
    "TrueTimeOracle",
    "TTInterval",
]
