"""Schedulers: the adversary's default strategies.

The order of events in an execution is controlled by an adversary.  For
ordinary workload runs we provide two fair adversaries (round-robin and
seeded-random); the proof engine drives the simulation with explicit
command scripts instead (see :mod:`repro.core`).

A *solo* execution (the paper: "only ``c`` and the servers take steps") is
obtained by restricting the scheduler to a subset of process ids;
messages destined to excluded processes stay in transit.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence

from repro.sim.events import deliverable_messages, steppable_pids
from repro.sim.executor import Simulation
from repro.sim.messages import Message, ProcessId


class SchedulerStalled(RuntimeError):
    """The scheduler ran out of its event budget before the goal was met."""


class Scheduler:
    """Base class: repeatedly choose and apply one event."""

    def tick(self, sim: Simulation, pids: Optional[Sequence[ProcessId]] = None) -> bool:
        """Apply one event among the allowed processes.

        Returns ``False`` when there is nothing to do (quiescence w.r.t.
        the restriction).
        """
        raise NotImplementedError

    def run(
        self,
        sim: Simulation,
        pids: Optional[Sequence[ProcessId]] = None,
        until: Optional[Callable[[Simulation], bool]] = None,
        max_events: int = 100_000,
    ) -> int:
        """Apply events until ``until(sim)`` holds or quiescence.

        Returns the number of events applied.  Raises
        :class:`SchedulerStalled` if the budget is exhausted first.
        """
        applied = 0
        while applied < max_events:
            if until is not None and until(sim):
                return applied
            if not self.tick(sim, pids):
                if until is None or until(sim):
                    return applied
                raise SchedulerStalled(
                    f"quiescent after {applied} events but goal not reached"
                )
            applied += 1
        if until is not None and until(sim):
            return applied
        raise SchedulerStalled(f"event budget {max_events} exhausted")

    # -- helpers shared by subclasses -------------------------------------
    #
    # Both delegate to the sanctioned enumeration in repro.sim.events so
    # the schedulers, the chaos adversaries and the exploration engine
    # all agree on what "enabled" means.

    @staticmethod
    def _deliverable(
        sim: Simulation, pids: Optional[Sequence[ProcessId]]
    ) -> List[Message]:
        """In-transit messages whose destination may act.

        Messages to excluded processes are withheld (arbitrarily delayed),
        which is how solo executions are realized.
        """
        return deliverable_messages(sim, pids)

    @staticmethod
    def _steppable(
        sim: Simulation, pids: Optional[Sequence[ProcessId]]
    ) -> List[ProcessId]:
        return steppable_pids(sim, pids)


class RoundRobinScheduler(Scheduler):
    """Deterministic fair adversary.

    Alternates a delivery phase (deliver the oldest deliverable message)
    with a step phase (step the next process, cycling).  Fair: every sent
    message is eventually delivered and every process that wants steps
    gets them, so any execution it produces is legal.
    """

    def __init__(self) -> None:
        self._rr = 0
        self._phase = 0

    def tick(self, sim: Simulation, pids: Optional[Sequence[ProcessId]] = None) -> bool:
        deliverable = self._deliverable(sim, pids)
        steppable = self._steppable(sim, pids)
        if not deliverable and not steppable:
            return False
        # alternate, falling back to whichever is available
        do_deliver = deliverable and (self._phase % 2 == 0 or not steppable)
        self._phase += 1
        if do_deliver:
            sim.deliver_msg(deliverable[0])
            return True
        order = sorted(steppable)
        pid = order[self._rr % len(order)]
        self._rr += 1
        sim.step(pid)
        return True


class RandomScheduler(Scheduler):
    """Seeded random fair adversary: picks uniformly among enabled events."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def tick(self, sim: Simulation, pids: Optional[Sequence[ProcessId]] = None) -> bool:
        deliverable = self._deliverable(sim, pids)
        steppable = self._steppable(sim, pids)
        choices: List = [("d", m) for m in deliverable] + [
            ("s", p) for p in steppable
        ]
        if not choices:
            return False
        kind, x = self.rng.choice(choices)
        if kind == "d":
            sim.deliver_msg(x)
        else:
            sim.step(x)
        return True


def run_until_quiescent(
    sim: Simulation,
    scheduler: Optional[Scheduler] = None,
    pids: Optional[Sequence[ProcessId]] = None,
    max_events: int = 100_000,
) -> int:
    """Drive ``sim`` with a fair scheduler until (restricted) quiescence."""
    sched = scheduler if scheduler is not None else RoundRobinScheduler()
    return sched.run(sim, pids=pids, max_events=max_events)
