"""The execution engine: configurations, steps, deliveries, snapshots.

A :class:`Simulation` owns the processes and the network and applies
events to them.  Its mutable state — process states, in-transit and income
buffers, counters — *is* the configuration in the sense of the paper; the
:meth:`Simulation.snapshot` / :meth:`Simulation.restore` pair implements
``RC(C, α)`` exploration: snapshot a configuration ``C``, run any legal
fragment ``α``, observe, restore, run a different fragment.

Every applied event is appended both to the observational
:class:`~repro.sim.trace.Trace` and to a replayable command log, so that
any fragment can be re-executed (possibly filtered) from a snapshot — the
mechanism behind the paper's indistinguishability splices.
"""

from __future__ import annotations

import copy
import hashlib
import io
import pickle
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from operator import is_
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.codec import (
    CodecError,
    ComponentLedger,
    cells_digest,
    collect_schema,
    ledger_from_cells,
)
from repro.sim.messages import Message, Payload, ProcessId
from repro.sim.network import Network
from repro.sim.process import Process, StepContext
from repro.sim.replay import Command, DeliverCmd, InvokeCmd, ReplayError, StepCmd
from repro.sim.trace import DeliverEvent, InvokeEvent, StepEvent, Trace

#: Snapshots are serialized at pickle protocol 5 (out-of-band-buffer era,
#: the fastest framing available).
PICKLE_PROTOCOL = 5


@dataclass
class SimCounters:
    """Cost accounting for the ``RC(C, α)`` machinery.

    Surfaced by :meth:`repro.core.explore.ExplorationResult.describe` and
    the fork benchmarks so the perf trajectory of the snapshot path stays
    observable across PRs.
    """

    snapshots: int = 0          #: snapshot() calls
    restores: int = 0           #: restore() calls
    fingerprints: int = 0       #: fingerprint() calls
    cache_hits: int = 0         #: component serializations reused
    cache_misses: int = 0       #: component serializations recomputed
    bytes_serialized: int = 0   #: bytes actually pickled for snapshots
    bytes_reused: int = 0       #: snapshot bytes served from the dirty cache
    bytes_restored: int = 0     #: bytes deserialized by restores
    restore_reuses: int = 0     #: restores that kept every live component
    #: per-component accounting (delta snapshots): sub-blobs pickled by
    #: snapshot(), sub-blobs deserialized by restore(), and live
    #: components a delta restore() kept untouched because their bytes
    #: already matched the snapshot.
    components_serialized: int = 0
    components_restored: int = 0
    components_reused: int = 0
    #: work-stealing frontier accounting (parallel runs; see
    #: repro.engine.parallel): subtree roots a worker published back to
    #: the shared deque instead of exploring, published roots consumed
    #: by a *different* worker than their publisher, times a worker
    #: found the deque empty and waited, and global seen-set traffic
    #: (claims that lost to another worker / claims that won).
    publishes: int = 0
    steals: int = 0
    idle_waits: int = 0
    shared_seen_hits: int = 0
    shared_seen_inserts: int = 0
    #: schema-codec accounting (snapshot_mode="codec"): Merkle subtree
    #: leaves (field cells / map keys / seq elements) freshly encoded
    #: vs reused from their shadow, and components that fell back to
    #: the pickled-blob path because their class declares no (or an
    #: incomplete) codec schema.  cells_encoded is the "re-hashed
    #: subtrees" measure the codec benchmark gates on: after one event
    #: it stays O(delta in the touched component), not O(process).
    cells_encoded: int = 0
    cells_reused: int = 0
    codec_fallbacks: int = 0

    def describe(self) -> str:
        total = self.bytes_serialized + self.bytes_reused
        pct = 100.0 * self.bytes_reused / total if total else 0.0
        return (
            f"{self.snapshots} snapshots "
            f"({self.components_serialized} components pickled), "
            f"{self.restores} restores "
            f"({self.components_restored} components loaded / "
            f"{self.components_reused} kept), "
            f"{self.fingerprints} fingerprints; serialization cache "
            f"{self.cache_hits} hits / {self.cache_misses} misses "
            f"({pct:.0f}% of {total} snapshot bytes reused)"
        )

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def merge(self, other: "SimCounters") -> None:
        """Accumulate another ledger into this one (parallel workers)."""
        for key, value in other.__dict__.items():
            setattr(self, key, getattr(self, key) + value)


def _uv(out: bytearray, n: int) -> None:
    """Append one unsigned LEB128 varint (structural payload framing)."""
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _net_capture(net: Network, prev=None):
    """Snapshot a network as an immutable structural tuple — zero bytes.

    The network's mutable state is pure *placement*: which
    :class:`~repro.sim.messages.Message` sits in which in-transit queue
    or income buffer, plus the per-link send counters.  The messages
    themselves are immutable once sent (the model's "links do not modify
    messages", enforced by lint rule RL404, whose contract already
    shares payloads by reference with the trace) — so a snapshot needs
    no serialization at all: capture the container *shapes* in immutable
    tuples and hold the message objects by reference.  Restoring
    (:func:`_net_build`) rebuilds fresh containers around the same
    messages, which satisfies the Configuration ownership rule the same
    way ``copy.deepcopy`` does when it returns immutables by identity.

    ``prev`` (the previous capture, any branch) enables per-container
    tuple reuse: a queue/buffer whose elements match the previous
    sub-tuple *element-for-element by identity* is exactly the captured
    container, so the sub-tuple is reused — which is what keeps the
    identity-keyed fragment memos downstream (``_net_frag``) hot.  The
    full scan is the only sound check: restores share the pre-fork
    :class:`Message` objects by reference (:func:`_net_build` rebuilds
    containers, not messages), and ``Network.deliver`` removes from
    arbitrary queue positions — so two sibling DFS branches that
    deliver *different* non-last messages out of the same restored
    queue hold containers with equal length and an identical last
    element but different contents.  A shape-plus-last-element guard
    would alias their captures.  The scan is O(n) per container, the
    same order as building the fresh tuple it avoids, and degrades to
    the length check alone on the first mismatch.
    """
    in_transit = net.in_transit
    income = net.income
    if prev is None:
        ptransit = pincome = ()
    else:
        ptransit = prev[1]
        pincome = prev[3]
    npt = len(ptransit)
    transit: List[Any] = []
    i = 0
    for link, q in in_transit.items():
        n = len(q)
        if i < npt:
            pent = ptransit[i]
            tq = pent[1]
            if len(tq) == n and pent[0] == link and all(map(is_, q, tq)):
                transit.append(pent)
                i += 1
                continue
        transit.append((link, tuple(q)))
        i += 1
    npi = len(pincome)
    inc: List[Any] = []
    i = 0
    for pid, v in income.items():
        n = len(v)
        if i < npi:
            pent = pincome[i]
            tv = pent[1]
            if len(tv) == n and pent[0] == pid and all(map(is_, v, tv)):
                inc.append(pent)
                i += 1
                continue
        inc.append((pid, tuple(v)))
        i += 1
    return (
        net.pids,
        tuple(transit),
        tuple(net.link_counts.items()),
        tuple(inc),
    )


def _net_build(state) -> Network:
    """Materialize a private :class:`Network` from a structural capture.

    Containers are rebuilt fresh (mutating the result never touches the
    capture or any other materialization); the immutable messages are
    shared by reference.
    """
    pids, transit, counts, income = state
    net = Network.__new__(Network)
    net.pids = pids
    net.in_transit = {link: deque(q) for link, q in transit}
    net.link_counts = dict(counts)
    net.income = {pid: list(v) for pid, v in income}
    net._version = 0
    return net


class Configuration:
    """A component-granular delta snapshot of a configuration.

    One immutable pickle sub-blob per :class:`Process` plus one
    structural capture of the :class:`Network`, each produced (and
    cached) against the component's ``_version`` dirty counter.
    Components that did not change between two snapshots share the
    *same* object by reference, which is what makes
    :meth:`Simulation.restore` a **delta apply**: a live component whose
    cached capture *is* the snapshot's is provably in the snapshotted
    state already and is kept as-is; only the components that actually
    differ are re-materialized.  A DFS backtrack after a single ``Step``
    therefore touches one process, not eleven.

    The network's capture (:func:`_net_capture`) costs no serialization
    in either direction: its mutable state is message *placement*, and
    the placed messages are immutable once sent (lint rule RL404), so
    snapshots hold them by reference inside immutable tuples and
    restores rebuild fresh containers around them.  The process
    sub-blobs stay pickled bytes — process state is arbitrary mutable
    protocol data, so only a byte-level copy isolates branches.

    Splitting the snapshot per component gives up the single pickle
    memo of the old monolithic blob (kept as :class:`BlobConfiguration`,
    ``snapshot_mode="blob"``): an object referenced from two processes
    deserializes to two equal copies instead of one shared object.  That
    is safe here because nothing in the system is sharing-sensitive —
    messages are immutable, and fingerprints serialize by *value*
    (identity-blind fast-mode pickle, :meth:`Simulation._dumps_canonical`),
    so the state partition and every verdict are unchanged.
    ``snapshot_mode="deepcopy"`` remains the bit-identical oracle.

    **Ownership rule (unchanged):** a Configuration may be restored any
    number of times, and restoring must never hand out mutable state
    aliased with the snapshot.  Sub-blobs are immutable bytes and the
    network capture is immutable tuples over immutable messages; a
    restored component is either a fresh materialization or a live
    component whose capture already equals the snapshot's — mutating it
    afterwards bumps its dirty counter, so later snapshots and restores
    see the divergence.

    :meth:`fork` shares the (immutable) captures, so it stays O(1).
    """

    __slots__ = (
        "proc_blobs",
        "net_state",
        "msg_counter",
        "event_count",
        "fp_dumps",
        "fp_dumps_canon",
    )

    def __init__(
        self,
        proc_blobs: Tuple[Tuple[ProcessId, bytes], ...],
        net_state,
        msg_counter: int,
        event_count: int,
    ):
        #: per-process sub-blobs, in the process map's insertion order
        #: (restore rebuilds the map in exactly this order)
        self.proc_blobs = proc_blobs
        #: the network's structural capture (see :func:`_net_capture`)
        self.net_state = net_state
        self.msg_counter = msg_counter
        self.event_count = event_count
        #: per-process fingerprint dumps for exactly this snapshot's
        #: state, attached by :meth:`Simulation.fingerprint` so a later
        #: restore can re-prime the fingerprint cache (restored branches
        #: then only re-serialize the processes an event actually
        #: touched).  The second slot holds the trace-canonical variant
        #: (masked ``fp_state``), attached by ``fingerprint(canonical=True)``.
        self.fp_dumps: Optional[Tuple[Tuple[ProcessId, bytes], ...]] = None
        self.fp_dumps_canon: Optional[Tuple[Tuple[ProcessId, bytes], ...]] = None

    def materialize(self) -> Tuple[Dict[ProcessId, Process], Network]:
        """Materialize a private (processes, network) pair.

        Each call materializes afresh; mutating the result never touches
        the snapshot (the network's containers are rebuilt, its messages
        are shared but immutable).
        """
        return self.processes, self.network

    @property
    def processes(self) -> Dict[ProcessId, Process]:
        """Materialize private copies of the snapshotted processes.

        Decodes the process sub-blobs only (each property access is a
        fresh, independent materialization of just its half).
        """
        return {pid: pickle.loads(blob) for pid, blob in self.proc_blobs}

    @property
    def network(self) -> Network:
        """Materialize a private copy of the snapshotted network."""
        return _net_build(self.net_state)

    def fork(self) -> "Configuration":
        forked = Configuration(
            proc_blobs=self.proc_blobs,  # immutable: share, don't copy
            net_state=self.net_state,
            msg_counter=self.msg_counter,
            event_count=self.event_count,
        )
        forked.fp_dumps = self.fp_dumps  # immutable too: share, don't copy
        forked.fp_dumps_canon = self.fp_dumps_canon
        return forked

    def size_bytes(self) -> int:
        """Serialized bytes held: the process sub-blobs.

        The network capture holds no serialized bytes at all (structural
        tuples over shared immutable messages), so it contributes zero.
        """
        return sum(len(b) for _, b in self.proc_blobs)


class BlobConfiguration:
    """The monolithic single-blob snapshot (the pre-delta fast path).

    One pickle blob holding the full process map *and* the network,
    serialized together in a single pass, so the pickle memo spans the
    whole configuration and cross-component object sharing survives a
    restore.  Kept as ``snapshot_mode="blob"`` so the delta rework stays
    measurable in-process (``benchmarks/bench_delta.py`` asserts the
    ≥ 5x serialization-traffic drop against exactly this path) and as a
    second reference implementation beside the deep-copy oracle.
    """

    __slots__ = ("blob", "msg_counter", "event_count", "fp_dumps", "fp_dumps_canon")

    def __init__(self, blob: bytes, msg_counter: int, event_count: int):
        self.blob = blob
        self.msg_counter = msg_counter
        self.event_count = event_count
        self.fp_dumps: Optional[Tuple[Tuple[ProcessId, bytes], ...]] = None
        self.fp_dumps_canon: Optional[Tuple[Tuple[ProcessId, bytes], ...]] = None

    def materialize(self) -> Tuple[Dict[ProcessId, Process], Network]:
        """Deserialize a private (processes, network) pair."""
        return pickle.loads(self.blob)

    @property
    def processes(self) -> Dict[ProcessId, Process]:
        return self.materialize()[0]

    @property
    def network(self) -> Network:
        return self.materialize()[1]

    def fork(self) -> "BlobConfiguration":
        forked = BlobConfiguration(
            blob=self.blob,
            msg_counter=self.msg_counter,
            event_count=self.event_count,
        )
        forked.fp_dumps = self.fp_dumps
        forked.fp_dumps_canon = self.fp_dumps_canon
        return forked

    def size_bytes(self) -> int:
        return len(self.blob)


@dataclass
class DeepCopyConfiguration:
    """The pre-optimization snapshot: deep copies of the live objects.

    Kept as a reference implementation (``snapshot_mode="deepcopy"``) so
    tests can pin the old contract and the fork benchmark can measure the
    before/after of the bytes-snapshot rework in one process.  Restoring
    one of these must fork first — the held objects would otherwise alias
    live state after a restore.
    """

    processes: Dict[ProcessId, Process]
    network: Network
    msg_counter: int
    event_count: int
    #: lazily computed by :meth:`size_bytes`.  A snapshot's held state
    #: never changes after capture, so the size is computed once — the
    #: old implementation re-pickled the full (processes, network) pair
    #: on *every* call, which made cost reporting itself O(state).
    _size: Optional[int] = None

    def fork(self) -> "DeepCopyConfiguration":
        return DeepCopyConfiguration(
            processes=copy.deepcopy(self.processes),
            network=copy.deepcopy(self.network),
            msg_counter=self.msg_counter,
            event_count=self.event_count,
        )

    def size_bytes(self) -> int:  # parity with Configuration, for benchmarks
        if self._size is None:
            self._size = len(
                pickle.dumps((self.processes, self.network), PICKLE_PROTOCOL)
            )
        return self._size


class CodecConfiguration:
    """A schema-codec delta snapshot: per-field canonical cells.

    Like :class:`Configuration` this is component-granular, but each
    process entry is a tuple of immutable **cells** (one per declared
    schema field, see :mod:`repro.sim.codec`) instead of one opaque
    pickle blob.  That exposes the delta *inside* a component: a restore
    whose target differs from the live state by one field decodes that
    field only, and the fingerprint layer hashes the same cells
    Merkle-style instead of re-serializing the state.  A component whose
    class declares no usable schema ships as a pickled blob entry
    (``cells`` slot ``None``) — the oracle-equivalence contract never
    depends on schema coverage.

    Entries are ``(pid, clsref, cells, blob)`` where exactly one of
    ``cells``/``blob`` is set; ``clsref`` ("module:qualname") lets a
    different process (parallel worker) rebuild the component ledger
    and decode the cells.  The ownership rule matches
    :class:`Configuration`: everything held is immutable bytes/tuples,
    so restores never alias live state.
    """

    __slots__ = ("procs", "net_state", "msg_counter", "event_count")

    def __init__(
        self,
        procs: Tuple[Tuple[ProcessId, Optional[str], Optional[Tuple[bytes, ...]], Optional[bytes]], ...],
        net_state,
        msg_counter: int,
        event_count: int,
    ):
        self.procs = procs
        self.net_state = net_state
        self.msg_counter = msg_counter
        self.event_count = event_count

    def materialize(self) -> Tuple[Dict[ProcessId, Process], Network]:
        """Materialize a private (processes, network) pair."""
        return self.processes, self.network

    @property
    def processes(self) -> Dict[ProcessId, Process]:
        """Decode private copies of the snapshotted processes only.

        Each property access is a fresh, independent materialization of
        just its half — touching both halves via the properties costs
        one decode each, not two full ``materialize()`` passes.
        """
        procs: Dict[ProcessId, Process] = {}
        for pid, clsref, cells, blob in self.procs:
            if cells is None:
                procs[pid] = pickle.loads(blob)
            else:
                ledger = ledger_from_cells(clsref, pid, cells)
                procs[pid] = ledger.decode_component(cells)
        return procs

    @property
    def network(self) -> Network:
        """Rebuild a private copy of the snapshotted network only."""
        return _net_build(self.net_state)

    def fork(self) -> "CodecConfiguration":
        return CodecConfiguration(
            procs=self.procs,  # immutable: share, don't copy
            net_state=self.net_state,
            msg_counter=self.msg_counter,
            event_count=self.event_count,
        )

    def size_bytes(self) -> int:
        total = 0
        for _pid, _clsref, cells, blob in self.procs:
            if cells is None:
                total += len(blob)
            else:
                total += sum(len(c) for c in cells)
        return total


#: the four snapshot implementations: "bytes" (component-granular delta
#: snapshots, the default), "codec" (schema-codec cells, field-granular
#: deltas + Merkle fingerprints), "blob" (the monolithic single-blob
#: fast path kept as the perf baseline), "deepcopy" (the reference
#: oracle).
SNAPSHOT_MODES = ("bytes", "codec", "blob", "deepcopy")


@contextmanager
def use_snapshot_mode(mode: str):
    """Force every new snapshot into one of :data:`SNAPSHOT_MODES`.

    Benchmark/test helper; flips the class-level default and restores it.
    """
    if mode not in SNAPSHOT_MODES:
        raise ValueError(f"unknown snapshot mode {mode!r}")
    old = Simulation.snapshot_mode
    Simulation.snapshot_mode = mode
    try:
        yield
    finally:
        Simulation.snapshot_mode = old


class _SetMark:
    """Sentinel class tagging a canonicalized (sorted) set — see _canonize."""


class _ObjMark:
    """Sentinel class tagging a canonicalized object — see _canonize."""


_ATOMIC_TYPES = (str, int, float, bool, bytes, type(None))


def _fast_dumps(obj: Any) -> bytes:
    """C pickle in *fast mode* (no memo): bytes are identity-blind."""
    buf = io.BytesIO()
    p = pickle.Pickler(buf, PICKLE_PROTOCOL)
    p.fast = True
    p.dump(obj)
    return buf.getvalue()


def _canonize(obj: Any, memo: Optional[Dict[int, Any]] = None) -> Any:
    """Rewrite a state tree into a canonical, order-deterministic form.

    Containers are rebuilt bottom-up; sets and frozensets become
    ``(_SetMark, is_frozen, sorted elements)`` with elements ordered by
    their own canonical bytes (a total order that never compares
    heterogeneous elements with ``<``); any other object becomes
    ``(_ObjMark, module, qualname, canonized state)``.  The sentinel
    *classes* are picklable by reference and cannot collide with
    protocol-state values.  Dicts keep their insertion order — both
    ``copy.deepcopy`` and ``pickle.loads`` preserve it, so it is already
    deterministic.

    ``memo`` is a per-call memo for the set-element sort keys, keyed by
    the *original* element's id (each entry holds the element strongly,
    so ids stay stable for the duration of the call): a vector-clock
    entry shared by several sets in one state is canonized and dumped
    once per pass instead of once per set that contains it.
    """
    t = type(obj)
    if t in _ATOMIC_TYPES:
        return obj
    if t is tuple:
        return tuple(_canonize(x, memo) for x in obj)
    if t is list:
        return [_canonize(x, memo) for x in obj]
    if t is dict:
        return {_canonize(k, memo): _canonize(v, memo) for k, v in obj.items()}
    if t is set or t is frozenset:
        if memo is None:
            memo = {}
        entries = []
        for x in obj:
            ent = memo.get(id(x))
            if ent is None or ent[0] is not x:
                cx = _canonize(x, memo)
                ent = (x, _fast_dumps(cx), cx)
                # repro-lint: disable=RL103 — per-call memo; the entry
                # pins x so the id stays valid, and hits are guarded
                # with `is`; keys are never ordered or iterated
                memo[id(x)] = ent
            entries.append(ent)
        entries.sort(key=lambda e: e[1])
        return (_SetMark, t is frozenset, [e[2] for e in entries])
    return (
        _ObjMark,
        t.__module__,
        t.__qualname__,
        _canonize(obj.__getstate__(), memo),
    )


class _CompRow:
    """One component's dirty-tracked serializations, all in one place.

    A row is valid while the live component *is* ``obj`` at dirty
    version ``version``; every mutation of the component goes through
    an event (which bumps the counter), so validity is two identity/int
    comparisons.  The row carries every capture the snapshot and
    fingerprint machinery ever needs for that component — the restorable
    snapshot capture plus the two value-canonical fingerprint dumps —
    filled lazily, so no state is ever serialized twice for the same
    (object, version) pair and a restore re-primes all three in one go.
    """

    __slots__ = ("obj", "version", "blob", "nbytes", "fp", "fp_canon")

    def __init__(self, obj: Any, version: int):
        self.obj = obj
        self.version = version
        #: the restorable snapshot capture: ``pickle.dumps(obj)`` for a
        #: process row, the structural :func:`_net_capture` tuple for
        #: the network row
        self.blob: Optional[Any] = None
        #: total capture bytes (codec mode), summed once per capture so
        #: cache hits don't re-walk the cell tuple
        self.nbytes: int = 0
        self.fp: Optional[bytes] = None        #: canonical dump of __getstate__
        self.fp_canon: Optional[bytes] = None  #: canonical dump of fp_state()


#: cache key for the network's component row (process rows key on pid)
_NET = "\x00network"

#: whether a class's MRO declares a ``codec_schema`` — a pure function
#: of the class, memoized so schema-less components skip ledger
#: construction without paying the MRO walk on every capture
_HAS_SCHEMA: Dict[type, bool] = {}


def _class_has_schema(cls: type) -> bool:
    has = _HAS_SCHEMA.get(cls)
    if has is None:
        has = _HAS_SCHEMA[cls] = collect_schema(cls) is not None
    return has


def _fp_hasher():
    return hashlib.blake2b(digest_size=16)


#: eviction caps for the identity-keyed fingerprint memos.  Entries pin
#: their key objects alive (that is what keeps the ``id`` keys valid),
#: and messages are re-minted on every post-restore re-execution — so an
#: unbounded memo grows with *total events executed*, not with live
#: state.  On overflow the memo is simply cleared: both are pure caches,
#: so the only cost is re-encoding a few live entries on the next pass.
_PAYLOAD_MEMO_CAP = 4096
_NET_FRAG_CAP = 8192


class Simulation:
    """A running instance of the system."""

    #: one of :data:`SNAPSHOT_MODES`; class attribute, overridable per
    #: instance.  "bytes" is the component-granular delta path.
    snapshot_mode = "bytes"

    def __init__(self, processes: Sequence[Process]):
        self.processes: Dict[ProcessId, Process] = {}
        for p in processes:
            if p.pid in self.processes:
                raise ValueError(f"duplicate pid {p.pid}")
            self.processes[p.pid] = p
        self.network = Network(self.processes.keys())
        self.trace = Trace()
        self.log: List[Command] = []
        self._msg_counter = 0
        self.event_count = 0
        self.counters = SimCounters()
        # per-component dirty-tracked serialization rows (snapshot
        # sub-blob + fingerprint dumps), keyed by pid / _NET; see
        # _CompRow.  Rows hold the component strongly, so object ids
        # cannot be recycled into false hits.
        self._comp_rows: Dict[str, _CompRow] = {}
        # schema-codec component ledgers (snapshot_mode="codec"), keyed
        # by pid.  A ledger persists across version bumps — that
        # persistence is what makes re-encoding O(changed fields) — and
        # is value-verified on every capture, so it survives restores
        # and even wholesale component replacement.  Only successful
        # builds are stored: the pickle-fallback decision is recomputed
        # per capture so it stays a pure function of (class, state).
        self._codec_ledgers: Dict[str, ComponentLedger] = {}
        # canonical-fingerprint payload memo (codec mode): messages are
        # immutable once sent (RL404), so each payload's canonical form
        # is computed once per simulation instead of once per
        # fingerprint.  Entries hold the message strongly (ids stay
        # valid); keyed by id because payloads are arbitrary unhashable
        # values.  Bounded by _PAYLOAD_MEMO_CAP (cleared on overflow).
        self._payload_canon: Dict[int, Tuple[Message, Any]] = {}
        # sorted pid order + index map, rebuilt only if the process set
        # ever changes size (pids are fixed at construction; restores
        # replace values, never keys).  Used by every fingerprint.
        self._pid_cache: Optional[
            Tuple[Tuple[ProcessId, ...], Dict[ProcessId, int]]
        ] = None
        # the most recent network capture (any branch) — seeds the
        # per-container tuple reuse inside :func:`_net_capture`
        self._net_prev = None
        # per-container structural-payload fragments, keyed by capture
        # sub-tuple identity (the guard value keeps the tuple alive);
        # bounded by _NET_FRAG_CAP (cleared on overflow)
        self._net_frag: Dict[int, Tuple[Any, bytes]] = {}
        # the monolithic-blob cache, used by snapshot_mode="blob" only.
        # An entry is valid while the live container objects are
        # identical (``is``) and the aggregate dirty key (per-process
        # dirty counters plus the network's) is unchanged — then the
        # blob is their exact current serialization.
        self._config_cache: Optional[
            Tuple[Dict, Network, Tuple[int, ...], int, bytes]
        ] = None

    # -- configuration management -----------------------------------------

    def _pid_order(self) -> Tuple[Tuple[ProcessId, ...], Dict[ProcessId, int]]:
        """``(sorted pids, pid → sorted index)``, cached."""
        cached = self._pid_cache
        if cached is None or len(cached[0]) != len(self.processes):
            order = tuple(sorted(self.processes))
            cached = (order, {pid: i for i, pid in enumerate(order)})
            self._pid_cache = cached
        return cached

    def _proc_versions(self) -> Tuple[int, ...]:
        return tuple(
            getattr(p, "_version", 0) for p in self.processes.values()
        )

    def _row(self, key: str, obj: Any) -> _CompRow:
        """The component's cache row, invalidated on identity/version drift."""
        version = getattr(obj, "_version", 0)
        row = self._comp_rows.get(key)
        if row is None or row.obj is not obj or row.version != version:
            row = _CompRow(obj, version)
            self._comp_rows[key] = row
        return row

    def _comp_blob(self, row: _CompRow) -> bytes:
        """The component's snapshot sub-blob, serialized at most once."""
        blob = row.blob
        if blob is None:
            blob = row.blob = pickle.dumps(row.obj, PICKLE_PROTOCOL)
            self.counters.cache_misses += 1
            self.counters.components_serialized += 1
            self.counters.bytes_serialized += len(blob)
        else:
            self.counters.cache_hits += 1
            self.counters.bytes_reused += len(blob)
        return blob

    def _net_snapshot_state(self):
        """The network's structural capture, built at most once per version.

        Contributes zero to the byte ledger: :func:`_net_capture` holds
        the (immutable) messages by reference and serializes nothing.
        """
        row = self._row(_NET, self.network)
        state = row.blob
        if state is None:
            state = row.blob = _net_capture(self.network, self._net_prev)
            self._net_prev = state
            self.counters.cache_misses += 1
            self.counters.components_serialized += 1
        else:
            self.counters.cache_hits += 1
        return state

    def _codec_capture(
        self, pid: ProcessId, proc: Process, row: Optional[_CompRow] = None
    ) -> Tuple[Optional[Tuple[bytes, ...]], Optional[bytes]]:
        """The component's codec capture: ``(cells, None)`` or, for a
        schema-less component, ``(None, pickle_blob)``.

        Cached in the component's row (``row.blob`` holds the cell
        tuple / the blob); on a cache miss the ledger re-encodes only
        the cells whose fresh encoding differs from the cached bytes.
        ``row``, when supplied, must be the component's current row
        (saves the lookup on paths that already fetched it).
        """
        if row is None:
            row = self._row(pid, proc)
        cached = row.blob
        if cached is not None:
            self.counters.cache_hits += 1
            self.counters.bytes_reused += row.nbytes
            if type(cached) is tuple:
                return cached, None
            return None, cached
        ledger = self._codec_ledgers.get(pid)
        if ledger is None or ledger.cls is not type(proc):
            # (re)build the ledger.  The cells-vs-blob decision must be
            # a pure function of (class, state) — never of the
            # simulation's history — or two branches/workers reaching
            # the identical state would fingerprint it differently and
            # break shared-seen-set dedup.  So a failed build is never
            # cached: schema-less classes are recognized by the (pure,
            # class-keyed) _class_has_schema memo, and a state-level
            # mismatch falls back for this capture only and is retried
            # on the next one.
            ledger = None
            if _class_has_schema(type(proc)):
                try:
                    ledger = ComponentLedger(proc)
                except CodecError:
                    ledger = None
            if ledger is None:
                self._codec_ledgers.pop(pid, None)
            else:
                self._codec_ledgers[pid] = ledger
        self.counters.cache_misses += 1
        self.counters.components_serialized += 1
        if ledger is None:
            self.counters.codec_fallbacks += 1
            blob = pickle.dumps(proc, PICKLE_PROTOCOL)
            self.counters.bytes_serialized += len(blob)
            row.blob = blob
            row.nbytes = len(blob)
            return None, blob
        try:
            cells = ledger.capture(proc, self.counters)
        except CodecError:
            # state drifted outside the schema (e.g. a field rebound to
            # an unsupported type): fall back for THIS capture only.
            # The ledger is kept and the next capture retries the codec
            # path, so the fallback — and with it the fingerprint —
            # stays a function of the state, not of when the drift
            # happened (a partially updated cell cache is harmless:
            # capture re-encodes and byte-compares every field).
            self.counters.codec_fallbacks += 1
            blob = pickle.dumps(proc, PICKLE_PROTOCOL)
            self.counters.bytes_serialized += len(blob)
            row.blob = blob
            row.nbytes = len(blob)
            return None, blob
        row.blob = cells
        row.nbytes = sum(len(c) for c in cells)
        return cells, None

    def _config_blob(self) -> bytes:
        """The monolithic combined blob (snapshot_mode="blob" only)."""
        procs = self.processes
        net = self.network
        versions = self._proc_versions()
        net_version = getattr(net, "_version", 0)
        entry = self._config_cache
        if (
            entry is not None
            and entry[0] is procs
            and entry[1] is net
            and entry[2] == versions
            and entry[3] == net_version
        ):
            self.counters.cache_hits += 1
            self.counters.bytes_reused += len(entry[4])
            return entry[4]
        blob = pickle.dumps((procs, net), PICKLE_PROTOCOL)
        self._config_cache = (procs, net, versions, net_version, blob)
        self.counters.cache_misses += 1
        self.counters.bytes_serialized += len(blob)
        return blob

    def snapshot(self):
        """Capture the current configuration.

        In the default ``"bytes"`` mode the snapshot is one pickle
        sub-blob (protocol 5) per process plus one zero-copy structural
        capture of the network, each served from the per-component dirty
        cache: after one event, only the touched components are
        captured, every clean capture is shared by reference with the
        previous snapshot.  ``"blob"`` serializes the whole
        configuration as one combined blob (the pre-delta path);
        ``"deepcopy"`` deep copies the live objects.
        """
        self.counters.snapshots += 1
        if self.snapshot_mode == "deepcopy":
            return DeepCopyConfiguration(
                processes=copy.deepcopy(self.processes),
                network=copy.deepcopy(self.network),
                msg_counter=self._msg_counter,
                event_count=self.event_count,
            )
        if self.snapshot_mode == "blob":
            return BlobConfiguration(
                blob=self._config_blob(),
                msg_counter=self._msg_counter,
                event_count=self.event_count,
            )
        if self.snapshot_mode == "codec":
            entries = []
            ledgers = self._codec_ledgers
            rows = self._comp_rows
            counters = self.counters
            for pid, proc in self.processes.items():
                # inline row-hit fast path (the overwhelmingly common
                # case: one event dirties one component)
                row = rows.get(pid)
                if (
                    row is not None
                    and row.obj is proc
                    and row.version == proc._version
                    and row.blob is not None
                ):
                    cached = row.blob
                    counters.cache_hits += 1
                    counters.bytes_reused += row.nbytes
                    if type(cached) is tuple:
                        entries.append((pid, ledgers[pid].clsref, cached, None))
                    else:
                        entries.append((pid, None, None, cached))
                    continue
                cells, blob = self._codec_capture(pid, proc, row=None)
                ledger = ledgers.get(pid)
                clsref = ledger.clsref if (ledger is not None and cells is not None) else None
                entries.append((pid, clsref, cells, blob))
            return CodecConfiguration(
                procs=tuple(entries),
                net_state=self._net_snapshot_state(),
                msg_counter=self._msg_counter,
                event_count=self.event_count,
            )
        return Configuration(
            proc_blobs=tuple(
                (pid, self._comp_blob(self._row(pid, proc)))
                for pid, proc in self.processes.items()
            ),
            net_state=self._net_snapshot_state(),
            msg_counter=self._msg_counter,
            event_count=self.event_count,
        )

    def restore(self, config) -> None:
        """Return to a previously captured configuration.

        A configuration may be restored any number of times; restoring
        never aliases live state (the :class:`Configuration` ownership
        rule).  Bytes snapshots get this for free — restored components
        are materialized fresh from immutable sub-blobs — so no
        defensive copy is made.  Component-granular snapshots restore as
        a **delta apply**: a live component whose cached serialization
        *is* the snapshot's sub-blob (same object, same dirty version,
        same bytes object) is already in the snapshotted state and is
        kept; only the components that differ are re-deserialized.
        Deep-copy snapshots must still fork once to stay private.

        The trace and the command log are observational and are *not*
        rewound; use their ``mark``/cursor mechanisms to slice branches.
        """
        self.counters.restores += 1
        if isinstance(config, Configuration):
            self._restore_delta(config)
        elif isinstance(config, CodecConfiguration):
            self._restore_codec(config)
        elif isinstance(config, BlobConfiguration):
            self._restore_blob(config)
        else:
            forked = config.fork()
            self.processes = forked.processes
            self.network = forked.network
            self._config_cache = None
            self._comp_rows = {}
            self._net_prev = None
        self._msg_counter = config.msg_counter
        self.event_count = config.event_count

    def _restore_delta(self, config: Configuration) -> None:
        """Apply only the components that differ from the snapshot."""
        counters = self.counters
        fp_map = dict(config.fp_dumps) if config.fp_dumps is not None else None
        fpc_map = (
            dict(config.fp_dumps_canon)
            if config.fp_dumps_canon is not None
            else None
        )
        rows = self._comp_rows
        new_procs: Dict[ProcessId, Process] = {}
        changed = 0
        for pid, blob in config.proc_blobs:
            live = self.processes.get(pid)
            row = rows.get(pid)
            if (
                row is not None
                and live is not None
                and row.obj is live
                and row.version == getattr(live, "_version", 0)
                and row.blob is blob
            ):
                # the live process's exact serialization *is* this
                # sub-blob: it already equals the snapshot, keep it
                counters.components_reused += 1
                proc = live
            else:
                proc = pickle.loads(blob)
                row = _CompRow(proc, 0)
                row.blob = blob
                rows[pid] = row
                counters.components_restored += 1
                counters.bytes_restored += len(blob)
                changed += 1
            # re-prime the fingerprint dumps: the row's state is exactly
            # what the snapshot's attached dumps were computed from, so
            # a branch off this restore only re-serializes what it
            # touches
            if row.fp is None and fp_map is not None:
                row.fp = fp_map.get(pid)
            if row.fp_canon is None and fpc_map is not None:
                row.fp_canon = fpc_map.get(pid)
            new_procs[pid] = proc
        net = self.network
        row = rows.get(_NET)
        if (
            row is not None
            and row.obj is net
            and row.version == getattr(net, "_version", 0)
            and row.blob is config.net_state
        ):
            counters.components_reused += 1
        else:
            net = _net_build(config.net_state)
            row = _CompRow(net, 0)
            row.blob = config.net_state
            rows[_NET] = row
            counters.components_restored += 1
            self.network = net
            changed += 1
        # the snapshot's capture describes the network's exact state now,
        # so it is the right (same-lineage) seed for the next capture's
        # per-container reuse scan
        self._net_prev = config.net_state
        if changed == 0:
            counters.restore_reuses += 1
        if changed or len(new_procs) != len(self.processes):
            self.processes = new_procs

    def _restore_codec(self, config: "CodecConfiguration") -> None:
        """Apply a codec snapshot as a *field-level* delta.

        Three tiers per component, cheapest first:

        1. The live component's cached capture *is* the snapshot's cell
           tuple (identity): keep it untouched.
        2. The live component's row is current (same object, same dirty
           version) and its ledger matches: compare the snapshot's
           cells against the live capture's cells and decode **only the
           differing fields in place**.  Sound because equal canonical
           bytes imply equal values (injectivity), snapshots hold only
           immutable bytes (nothing aliases the mutated process), and
           in the engine's one-snapshot-per-node DFS the live rows are
           exactly the child state the search is backing out of.
        3. Otherwise materialize the component fresh from its cells
           (rebuilding the ledger if the component shipped from another
           process), or from its pickle blob for fallback components.
        """
        counters = self.counters
        rows = self._comp_rows
        ledgers = self._codec_ledgers
        new_procs: Dict[ProcessId, Process] = {}
        changed = 0
        for pid, clsref, cells, blob in config.procs:
            live = self.processes.get(pid)
            row = rows.get(pid)
            row_current = (
                row is not None
                and live is not None
                and row.obj is live
                and row.version == getattr(live, "_version", 0)
            )
            if row_current and row.blob is (cells if cells is not None else blob):
                counters.components_reused += 1
                new_procs[pid] = live
                continue
            ledger = ledgers.get(pid)
            if (
                cells is not None
                and row_current
                and type(row.blob) is tuple
                and ledger is not None
                and ledger.cls is type(live)
            ):
                # field-level in-place delta against the live capture
                live_cells = row.blob
                schema = ledger.schema
                decoded = 0
                for i, cell in enumerate(cells):
                    have = live_cells[i]
                    if cell is have or cell == have:
                        continue
                    name = schema[i].name
                    setattr(
                        live,
                        name,
                        ledger.decode_field_delta(
                            i, cell, getattr(live, name), counters
                        ),
                    )
                    decoded += 1
                if decoded:
                    live.mark_dirty()
                    counters.components_restored += 1
                    changed += 1
                else:
                    counters.components_reused += 1
                row = _CompRow(live, getattr(live, "_version", 0))
                row.blob = cells
                row.nbytes = sum(len(c) for c in cells)
                rows[pid] = row
                new_procs[pid] = live
                continue
            # full materialization
            changed += 1
            counters.components_restored += 1
            if cells is None:
                proc = pickle.loads(blob)
                counters.bytes_restored += len(blob)
            else:
                if ledger is None or ledger.clsref != clsref:
                    ledger = ledger_from_cells(clsref, pid, cells)
                    ledgers[pid] = ledger
                proc = ledger.decode_component(cells)
                counters.bytes_restored += sum(
                    len(cells[i])
                    for i, f in enumerate(ledger.schema)
                    if f.kind != "const"
                )
            row = _CompRow(proc, 0)
            row.blob = cells if cells is not None else blob
            row.nbytes = (
                sum(len(c) for c in cells) if cells is not None else len(blob)
            )
            rows[pid] = row
            new_procs[pid] = proc
        net = self.network
        row = rows.get(_NET)
        if (
            row is not None
            and row.obj is net
            and row.version == getattr(net, "_version", 0)
            and row.blob is config.net_state
        ):
            counters.components_reused += 1
        else:
            net = _net_build(config.net_state)
            row = _CompRow(net, 0)
            row.blob = config.net_state
            rows[_NET] = row
            counters.components_restored += 1
            self.network = net
            changed += 1
        # the snapshot's capture describes the network's exact state now,
        # so it is the right (same-lineage) seed for the next capture's
        # per-container reuse scan
        self._net_prev = config.net_state
        if changed == 0:
            counters.restore_reuses += 1
        if changed or len(new_procs) != len(self.processes):
            self.processes = new_procs

    def _restore_blob(self, config: "BlobConfiguration") -> None:
        """Restore from a monolithic blob (snapshot_mode="blob")."""
        entry = self._config_cache
        if (
            entry is not None
            and entry[0] is self.processes
            and entry[1] is self.network
            and entry[2] == self._proc_versions()
            and entry[3] == getattr(self.network, "_version", 0)
            and entry[4] is config.blob
        ):
            # the live configuration's exact serialization *is* this
            # blob: the state already equals the snapshot, keep it
            self.counters.restore_reuses += 1
            return
        self.processes, self.network = pickle.loads(config.blob)
        self._config_cache = (
            self.processes,
            self.network,
            self._proc_versions(),
            getattr(self.network, "_version", 0),
            config.blob,
        )
        self.counters.bytes_restored += len(config.blob)
        # re-prime the fingerprint rows from the snapshot's attached dumps
        self._comp_rows = {}
        self._net_prev = None
        for attr, dumps in (
            ("fp", config.fp_dumps),
            ("fp_canon", config.fp_dumps_canon),
        ):
            if dumps is None:
                continue
            for pid, dump in dumps:
                row = self._row(pid, self.processes[pid])
                setattr(row, attr, dump)

    def _structural_payload_strict(self) -> bytes:
        """The network's message placement as canonical bytes (strict).

        Built from the network's structural capture so the per-link and
        per-buffer fragments can be memoized by tuple identity — the
        capture delta (:func:`_net_capture`) reuses the sub-tuple of
        every untouched container, so one event re-encodes one or two
        fragments.  Each fragment is a self-delimiting varint run
        (``src dst n msg_id…`` for links, ``pid n msg_id…`` for income
        buffers); the payload is the two fragment lists sorted by bytes,
        each with a count prefix.  That framing is uniquely decodable,
        so two configurations produce the same payload **iff** their
        placements are equal — the same partition the pickled-tuple
        payload induced.  The link indices are load-bearing: a
        position-only encoding would collide states where the same
        ``msg_id`` sits on *different* links.
        """
        net = self.network
        idx = self._pid_order()[1]
        # the capture is cached on the net row by _net_snapshot_state;
        # build it here (uncounted) if a fingerprint runs first
        row = self._row(_NET, net)
        state = row.blob
        if state is None:
            state = row.blob = _net_capture(net, self._net_prev)
            self._net_prev = state
        frag = self._net_frag
        if len(frag) >= _NET_FRAG_CAP:
            frag.clear()
        tfrags: List[bytes] = []
        for ent in state[1]:
            e = frag.get(id(ent))
            if e is not None and e[0] is ent:
                tfrags.append(e[1])
                continue
            (s, d), q = ent
            out = bytearray()
            push = out.append
            a = idx[s]
            b = idx[d]
            push(a) if a < 0x80 else _uv(out, a)
            push(b) if b < 0x80 else _uv(out, b)
            n = len(q)
            push(n) if n < 0x80 else _uv(out, n)
            for m in q:
                mid = m.msg_id
                push(mid) if mid < 0x80 else _uv(out, mid)
            eb = bytes(out)
            # repro-lint: disable=RL103 — fragment memo; the entry pins
            # ent so the id stays valid, hits are guarded with `is`,
            # and the fragments are sorted by content below
            frag[id(ent)] = (ent, eb)
            tfrags.append(eb)
        ifrags: List[bytes] = []
        for ent in state[3]:
            e = frag.get(id(ent))
            if e is not None and e[0] is ent:
                ifrags.append(e[1])
                continue
            pid, msgs = ent
            out = bytearray()
            push = out.append
            a = idx[pid]
            push(a) if a < 0x80 else _uv(out, a)
            n = len(msgs)
            push(n) if n < 0x80 else _uv(out, n)
            for m in msgs:
                mid = m.msg_id
                push(mid) if mid < 0x80 else _uv(out, mid)
            eb = bytes(out)
            # repro-lint: disable=RL103 — same identity-guarded memo as
            # the transit fragments above
            frag[id(ent)] = (ent, eb)
            ifrags.append(eb)
        tfrags.sort()
        ifrags.sort()
        pre1 = bytearray()
        _uv(pre1, len(tfrags))
        pre2 = bytearray()
        _uv(pre2, len(ifrags))
        return bytes(pre1) + b"".join(tfrags) + bytes(pre2) + b"".join(ifrags)

    def _canon_payload(self, m: Message):
        """A message's canonized payload, memoized for the simulation.

        Messages are immutable once sent (the model's "links do not
        modify messages", lint rule RL404), so the canonical form never
        changes; entries hold the message strongly so the id key stays
        valid.  Used by the codec fingerprint path, where the canonical
        trace would otherwise re-canonize every in-flight payload on
        every fingerprint.
        """
        memo = self._payload_canon
        entry = memo.get(id(m))
        if entry is None or entry[0] is not m:
            if len(memo) >= _PAYLOAD_MEMO_CAP:
                memo.clear()
            entry = (m, _canonize(m.payload, {}))
            # repro-lint: disable=RL103 — identity-guarded memo; the
            # entry pins m, hits check `entry[0] is m`, keys unordered
            memo[id(m)] = entry
        return entry[1]

    def _structural_trace_canonical(self, memo: bool = False):
        """Message placement *and contents* up to commutation (POR).

        Blind to global ``msg_id``s: in-transit messages are identified
        by their per-link ``link_seq`` (queue order on one link is always
        send order, so the tuple is canonical), and income batches are
        the *sorted set* of ``(src, link_seq)`` entries — sound because
        :meth:`Network.drain_income` presents every batch in that
        canonical order, making a step's behaviour a function of the
        batch set.  Two configurations reached by commuting independent
        events (different-process steps mint different ``msg_id``s;
        same-process deliveries permute a batch) therefore collide here,
        which is what lets the engine keep one representative per
        Mazurkiewicz trace.  Empty queues and buffers are dropped: a
        link that emptied is the same as one never used.

        Unlike the strict placement this one must carry each message's
        **payload**: without the globally-sequenced ``msg_id`` (whose
        numbering encodes the whole minting order), ``(src, link_seq)``
        alone no longer determines what the message says — two branches
        can produce the same skeleton with different replies in flight.
        """
        net = self.network
        idx = self._pid_order()[1]
        canon = self._canon_payload if memo else (lambda m: _canonize(m.payload))
        return (
            tuple(
                sorted(
                    (
                        (idx[src], idx[dst]),
                        tuple((m.link_seq, canon(m)) for m in q),
                    )
                    for (src, dst), q in net.in_transit.items()
                    if q
                )
            ),
            tuple(
                sorted(
                    (
                        idx[pid],
                        tuple(
                            sorted(
                                (idx[m.src], m.link_seq, canon(m))
                                for m in msgs
                            )
                        ),
                    )
                    for pid, msgs in net.income.items()
                    if msgs
                )
            ),
        )

    @staticmethod
    def _dumps_canonical(obj: Any) -> bytes:
        """Pickle ``obj`` by *value*, blind to identity and set order.

        Fingerprint serializations must be a pure function of the state's
        values.  A normal pickle is not, on two counts:

        * **Object identity.**  The pickle memo distinguishes a state
          holding two references to one ``'X0'`` string from a state
          holding two equal copies — and *which* of those a live
          simulation holds depends on how it got there
          (``copy.deepcopy`` returns immutables by identity, so a
          restored branch keeps referencing the very same interned
          strings as objects created afterwards, while ``pickle.loads``
          materializes fresh copies).  Pickle's *fast mode* disables the
          memo — repeated references are re-serialized inline.  (Fast
          mode cannot handle cyclic state; protocol state here is plain
          acyclic data.)
        * **Set iteration order.**  Sets serialize in hash-table order,
          which depends on the interpreter's hash seed *and* on the
          set's construction history — a set rebuilt by ``loads`` can
          iterate differently from the equal set it was dumped from.
          :func:`_canonize` rewrites sets and frozensets into sorted
          form.  (Dicts are insertion-ordered and pickle preserves that
          order, so they are already deterministic.)

        The canonical rewrite is a light Python walk; the byte emission
        stays on the C pickler.  (The C pickler alone cannot do this: it
        fast-paths exact builtin containers before consulting
        ``reducer_override``, so set order cannot be intercepted there,
        and fast mode cannot handle cyclic state — protocol state here
        is plain acyclic data.)
        """
        return _fast_dumps(_canonize(obj, {}))

    def _proc_fp_dumps(self, canonical: bool = False) -> List[Tuple[ProcessId, bytes]]:
        """Canonical per-process state dumps, for :meth:`fingerprint`.

        Each process's state is serialized with :meth:`_dumps_canonical`
        — deliberately a *different* serialization than the snapshot's
        combined blob, whose memo encodes object-sharing topology (a
        strictly finer relation than the value equality the exploration
        engine has always pruned with).  ``canonical=True`` serializes
        :meth:`Process.fp_state` instead of the raw snapshot state, so
        data the process never branches on (a client's event-counter
        stamps) is masked out of the trace-canonical fingerprint.

        Dumps live in the same per-component cache rows as the snapshot
        sub-blobs (see :class:`_CompRow`), keyed on (object identity,
        dirty counter): every process mutation goes through
        ``step``/``invoke`` (which bump the counter), and :meth:`restore`
        re-primes the rows from the snapshot's attached dumps — so a
        fingerprint after restore-plus-one-event re-serializes at most
        the one process the event touched (none at all for a delivery).
        """
        attr = "fp_canon" if canonical else "fp"
        out: List[Tuple[ProcessId, bytes]] = []
        for pid in self._pid_order()[0]:
            proc = self.processes[pid]
            row = self._row(pid, proc)
            dump = getattr(row, attr)
            if dump is not None:
                self.counters.cache_hits += 1
            else:
                state = proc.fp_state() if canonical else proc.__getstate__()
                dump = self._dumps_canonical(state)
                setattr(row, attr, dump)
                self.counters.cache_misses += 1
            out.append((pid, dump))
        return out

    def _codec_fp_digests(
        self, canonical: bool = False
    ) -> List[Tuple[ProcessId, bytes]]:
        """Per-process Merkle digests (snapshot_mode="codec").

        The strict digest combines the component's field cells
        (:func:`repro.sim.codec.cells_digest`); the canonical variant
        swaps in the masked cells for fields declaring a ``canon``
        transform and reuses the strict cells for everything else — so
        a fingerprint after one event re-hashes only the cells the
        event touched, and the hashing itself is C-speed over already
        encoded buffers.  Digests live in the same dirty-keyed rows as
        the cell captures; components without a schema hash their
        canonical pickle, which keeps the partition identical to the
        bytes mode's.
        """
        counters = self.counters
        out: List[Tuple[ProcessId, bytes]] = []
        rows = self._comp_rows
        procs = self.processes
        for pid in self._pid_order()[0]:
            proc = procs[pid]
            # inline _row(): the row is current for every untouched
            # component, and fingerprints run twice per state
            row = rows.get(pid)
            if row is None or row.obj is not proc or row.version != proc._version:
                row = _CompRow(proc, proc._version)
                rows[pid] = row
            digest = row.fp_canon if canonical else row.fp
            if digest is not None:
                counters.cache_hits += 1
                out.append((pid, digest))
                continue
            cells, _blob = self._codec_capture(pid, proc, row)
            if cells is None:
                state = proc.fp_state() if canonical else proc.__getstate__()
                digest = hashlib.blake2b(
                    self._dumps_canonical(state), digest_size=16
                ).digest()
            else:
                ledger = self._codec_ledgers[pid]
                use = (
                    ledger.canon_capture(proc, cells, counters)
                    if canonical
                    else cells
                )
                digest = cells_digest(use, _fp_hasher)
            if canonical:
                row.fp_canon = digest
            else:
                row.fp = digest
            counters.cache_misses += 1
            out.append((pid, digest))
        return out

    def _describes_live(self, config) -> bool:
        """Whether ``config`` is verifiably a snapshot of the live state.

        True only when every component's cached serialization *is* the
        snapshot's sub-blob (delta snapshots) or the combined blob cache
        entry *is* the snapshot's blob (monolithic snapshots) — i.e. the
        check is identity-based and never re-serializes anything.
        """
        if isinstance(config, BlobConfiguration):
            entry = self._config_cache
            return (
                entry is not None
                and entry[0] is self.processes
                and entry[1] is self.network
                and entry[2] == self._proc_versions()
                and entry[3] == getattr(self.network, "_version", 0)
                and entry[4] is config.blob
            )
        if len(config.proc_blobs) != len(self.processes):
            return False
        rows = self._comp_rows
        for pid, blob in config.proc_blobs:
            live = self.processes.get(pid)
            row = rows.get(pid)
            if (
                live is None
                or row is None
                or row.obj is not live
                or row.version != getattr(live, "_version", 0)
                or row.blob is not blob
            ):
                return False
        row = rows.get(_NET)
        return (
            row is not None
            and row.obj is self.network
            and row.version == getattr(self.network, "_version", 0)
            and row.blob is config.net_state
        )

    def fingerprint(
        self,
        config: Optional["Configuration"] = None,
        canonical: bool = False,
    ) -> bytes:
        """A content hash of the current configuration, for revisit pruning.

        Covers every process's state plus the structural placement of
        in-transit and income messages; deliberately *excludes* the event
        and message counters (and the dirty counters), so configurations
        reached by different interleavings of the same events collide.
        Pickle is stable here because all process state is plain Python
        data and the simulation is deterministic.

        ``canonical=True`` hashes the *trace-canonical* placement instead
        (:meth:`_structural_trace_canonical`): blind to global ``msg_id``
        numbering and to intra-batch income order, so configurations that
        differ only by a permutation of independent events collide.  The
        exploration engine uses it for partial-order reduction; the
        default (strict) placement stays byte-compatible with the
        pre-engine baselines.

        ``config``, when given, must be a snapshot of the *current*
        configuration (the one-snapshot-per-node pattern takes it anyway);
        the hash itself is always computed from the live per-process
        states — see :meth:`_proc_fp_dumps` for why the snapshot's
        combined blob would hash a finer relation.  As a side effect the
        per-process dumps are attached to ``config`` (when it is verified
        to still describe the live state), so restoring it later
        re-primes the fingerprint cache.
        """
        self.counters.fingerprints += 1
        codec_mode = self.snapshot_mode == "codec"
        if codec_mode:
            # Merkle path: per-process digests straight from the cell
            # captures; no dumps to attach — the persistent ledgers are
            # the cache, and restores keep them primed by construction
            dumps = self._codec_fp_digests(canonical)
        else:
            dumps = self._proc_fp_dumps(canonical)
            attach_slot = "fp_dumps_canon" if canonical else "fp_dumps"
            if (
                isinstance(config, (Configuration, BlobConfiguration))
                and getattr(config, attach_slot) is None
                and self._describes_live(config)
            ):
                setattr(config, attach_slot, tuple(dumps))
        # the structural payload is a pure function of the network state,
        # so it caches in the network's dirty-keyed row (fp/fp_canon are
        # unused on the _NET row otherwise)
        netrow = self._row(_NET, self.network)
        pattr = "fp_canon" if canonical else "fp"
        payload = getattr(netrow, pattr)
        if payload is None:
            if canonical:
                # the canonical structure embeds message payloads
                # (arbitrary values), so it needs the
                # identity-independent serializer
                payload = _fast_dumps(
                    self._structural_trace_canonical(memo=codec_mode)
                )
            else:
                payload = self._structural_payload_strict()
            setattr(netrow, pattr, payload)
        h = hashlib.blake2b(digest_size=16)
        for _pid, dump in dumps:
            # length-framed: process order is fixed (sorted pids), the
            # frame keeps dump boundaries unambiguous
            h.update(len(dump).to_bytes(8, "little"))
            h.update(dump)
        h.update(payload)
        return h.digest()

    # -- events -------------------------------------------------------------

    def step(self, pid: ProcessId) -> StepEvent:
        """Apply a computation step of ``pid``."""
        proc = self.processes[pid]
        inbox = self.network.drain_income(pid)
        neighbors = [q for q in self.processes if q != pid]
        self.event_count += 1
        ctx = StepContext(pid, neighbors, self.event_count)
        proc.on_step(ctx, inbox)
        proc.mark_dirty()
        # the network is NOT marked dirty here: its own mutators (post,
        # deliver, drain_income) bump its version, and messages are
        # immutable once sent (the model's "links do not modify
        # messages", enforced by the RL4xx lint rules) — so a step that
        # neither received nor sent leaves the network's serialization
        # valid, and a delta restore after it touches one process only
        sent: List[Message] = []
        for dst, payload in ctx.sends:
            msg = Message(
                msg_id=self._msg_counter,
                src=pid,
                dst=dst,
                link_seq=self.network.next_link_seq(pid, dst),
                payload=payload,
            )
            self._msg_counter += 1
            self.network.post(msg)
            sent.append(msg)
        event = StepEvent(
            index=len(self.trace), pid=pid, received=tuple(inbox), sent=tuple(sent)
        )
        self.trace.append(event)
        self.log.append(StepCmd(pid))
        return event

    def deliver(
        self, src: ProcessId, dst: ProcessId, link_seq: Optional[int] = None
    ) -> Message:
        """Apply a delivery event; default: oldest in-transit on the link."""
        if link_seq is None:
            q = self.network.in_transit.get((src, dst))
            if not q:
                raise ReplayError(f"no in-transit message on link {src}->{dst}")
            link_seq = q[0].link_seq
        try:
            msg = self.network.deliver(src, dst, link_seq)
        except KeyError as exc:
            raise ReplayError(str(exc)) from exc
        self.event_count += 1
        self.trace.append(DeliverEvent(index=len(self.trace), message=msg))
        self.log.append(DeliverCmd(src, dst, link_seq))
        return msg

    def deliver_msg(self, msg: Message) -> Message:
        return self.deliver(msg.src, msg.dst, msg.link_seq)

    def invoke(self, pid: ProcessId, txn: Any) -> None:
        """Hand a transaction invocation to client ``pid``."""
        proc = self.processes[pid]
        on_invoke = getattr(proc, "on_invoke", None)
        if on_invoke is None:
            raise TypeError(f"{pid} does not accept invocations")
        on_invoke(txn)
        proc.mark_dirty()
        self.trace.append(InvokeEvent(index=len(self.trace), pid=pid, txn=txn))
        self.log.append(InvokeCmd(pid, txn))

    # -- replay ---------------------------------------------------------------

    def apply(self, cmd: Command) -> None:
        if isinstance(cmd, StepCmd):
            self.step(cmd.pid)
        elif isinstance(cmd, DeliverCmd):
            self.deliver(cmd.src, cmd.dst, cmd.link_seq)
        elif isinstance(cmd, InvokeCmd):
            self.invoke(cmd.pid, cmd.txn)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown command {cmd!r}")

    def replay(self, commands: Iterable[Command], strict: bool = True) -> List[Command]:
        """Apply a recorded (possibly filtered) command list.

        With ``strict`` (the default) a delivery of a message that does not
        exist raises :class:`ReplayError`.  With ``strict=False`` such
        deliveries are skipped and the list of skipped commands returned —
        used by diagnostics, never by the proof engine.
        """
        skipped: List[Command] = []
        for cmd in commands:
            try:
                self.apply(cmd)
            except ReplayError:
                if strict:
                    raise
                skipped.append(cmd)
        return skipped

    # -- queries ---------------------------------------------------------------

    def pids(self) -> Tuple[ProcessId, ...]:
        return tuple(self.processes)

    def quiescent(self, pids: Optional[Iterable[ProcessId]] = None) -> bool:
        """No in-transit or undelivered messages; no (selected) process busy."""
        if not self.network.idle():
            return False
        group = self.processes.values() if pids is None else (
            self.processes[p] for p in pids
        )
        return not any(p.wants_step() for p in group)

    def log_mark(self) -> int:
        return len(self.log)

    def log_since(self, mark: int) -> List[Command]:
        return self.log[mark:]
