"""The execution engine: configurations, steps, deliveries, snapshots.

A :class:`Simulation` owns the processes and the network and applies
events to them.  Its mutable state — process states, in-transit and income
buffers, counters — *is* the configuration in the sense of the paper; the
:meth:`Simulation.snapshot` / :meth:`Simulation.restore` pair implements
``RC(C, α)`` exploration: snapshot a configuration ``C``, run any legal
fragment ``α``, observe, restore, run a different fragment.

Every applied event is appended both to the observational
:class:`~repro.sim.trace.Trace` and to a replayable command log, so that
any fragment can be re-executed (possibly filtered) from a snapshot — the
mechanism behind the paper's indistinguishability splices.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.messages import Message, Payload, ProcessId
from repro.sim.network import Network
from repro.sim.process import Process, StepContext
from repro.sim.replay import Command, DeliverCmd, InvokeCmd, ReplayError, StepCmd
from repro.sim.trace import DeliverEvent, InvokeEvent, StepEvent, Trace


@dataclass
class Configuration:
    """An opaque snapshot of a simulation's state (a configuration).

    Holds deep copies; restoring never aliases live state.
    """

    processes: Dict[ProcessId, Process]
    network: Network
    msg_counter: int
    event_count: int

    def fork(self) -> "Configuration":
        return Configuration(
            processes=copy.deepcopy(self.processes),
            network=copy.deepcopy(self.network),
            msg_counter=self.msg_counter,
            event_count=self.event_count,
        )


class Simulation:
    """A running instance of the system."""

    def __init__(self, processes: Sequence[Process]):
        self.processes: Dict[ProcessId, Process] = {}
        for p in processes:
            if p.pid in self.processes:
                raise ValueError(f"duplicate pid {p.pid}")
            self.processes[p.pid] = p
        self.network = Network(self.processes.keys())
        self.trace = Trace()
        self.log: List[Command] = []
        self._msg_counter = 0
        self.event_count = 0

    # -- configuration management -----------------------------------------

    def snapshot(self) -> Configuration:
        """Capture the current configuration (deep copy)."""
        return Configuration(
            processes=copy.deepcopy(self.processes),
            network=copy.deepcopy(self.network),
            msg_counter=self._msg_counter,
            event_count=self.event_count,
        )

    def restore(self, config: Configuration) -> None:
        """Return to a previously captured configuration.

        The trace and the command log are observational and are *not*
        rewound; use their ``mark``/cursor mechanisms to slice branches.
        """
        forked = config.fork()
        self.processes = forked.processes
        self.network = forked.network
        self._msg_counter = forked.msg_counter
        self.event_count = forked.event_count

    # -- events -------------------------------------------------------------

    def step(self, pid: ProcessId) -> StepEvent:
        """Apply a computation step of ``pid``."""
        proc = self.processes[pid]
        inbox = self.network.drain_income(pid)
        neighbors = [q for q in self.processes if q != pid]
        self.event_count += 1
        ctx = StepContext(pid, neighbors, self.event_count)
        proc.on_step(ctx, inbox)
        sent: List[Message] = []
        for dst, payload in ctx.sends:
            msg = Message(
                msg_id=self._msg_counter,
                src=pid,
                dst=dst,
                link_seq=self.network.next_link_seq(pid, dst),
                payload=payload,
            )
            self._msg_counter += 1
            self.network.post(msg)
            sent.append(msg)
        event = StepEvent(
            index=len(self.trace), pid=pid, received=tuple(inbox), sent=tuple(sent)
        )
        self.trace.append(event)
        self.log.append(StepCmd(pid))
        return event

    def deliver(
        self, src: ProcessId, dst: ProcessId, link_seq: Optional[int] = None
    ) -> Message:
        """Apply a delivery event; default: oldest in-transit on the link."""
        if link_seq is None:
            q = self.network.in_transit.get((src, dst))
            if not q:
                raise ReplayError(f"no in-transit message on link {src}->{dst}")
            link_seq = q[0].link_seq
        try:
            msg = self.network.deliver(src, dst, link_seq)
        except KeyError as exc:
            raise ReplayError(str(exc)) from exc
        self.event_count += 1
        self.trace.append(DeliverEvent(index=len(self.trace), message=msg))
        self.log.append(DeliverCmd(src, dst, link_seq))
        return msg

    def deliver_msg(self, msg: Message) -> Message:
        return self.deliver(msg.src, msg.dst, msg.link_seq)

    def invoke(self, pid: ProcessId, txn: Any) -> None:
        """Hand a transaction invocation to client ``pid``."""
        proc = self.processes[pid]
        on_invoke = getattr(proc, "on_invoke", None)
        if on_invoke is None:
            raise TypeError(f"{pid} does not accept invocations")
        on_invoke(txn)
        self.trace.append(InvokeEvent(index=len(self.trace), pid=pid, txn=txn))
        self.log.append(InvokeCmd(pid, txn))

    # -- replay ---------------------------------------------------------------

    def apply(self, cmd: Command) -> None:
        if isinstance(cmd, StepCmd):
            self.step(cmd.pid)
        elif isinstance(cmd, DeliverCmd):
            self.deliver(cmd.src, cmd.dst, cmd.link_seq)
        elif isinstance(cmd, InvokeCmd):
            self.invoke(cmd.pid, cmd.txn)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown command {cmd!r}")

    def replay(self, commands: Iterable[Command], strict: bool = True) -> List[Command]:
        """Apply a recorded (possibly filtered) command list.

        With ``strict`` (the default) a delivery of a message that does not
        exist raises :class:`ReplayError`.  With ``strict=False`` such
        deliveries are skipped and the list of skipped commands returned —
        used by diagnostics, never by the proof engine.
        """
        skipped: List[Command] = []
        for cmd in commands:
            try:
                self.apply(cmd)
            except ReplayError:
                if strict:
                    raise
                skipped.append(cmd)
        return skipped

    # -- queries ---------------------------------------------------------------

    def pids(self) -> Tuple[ProcessId, ...]:
        return tuple(self.processes)

    def quiescent(self, pids: Optional[Iterable[ProcessId]] = None) -> bool:
        """No in-transit or undelivered messages; no (selected) process busy."""
        if not self.network.idle():
            return False
        group = self.processes.values() if pids is None else (
            self.processes[p] for p in pids
        )
        return not any(p.wants_step() for p in group)

    def log_mark(self) -> int:
        return len(self.log)

    def log_since(self, mark: int) -> List[Command]:
        return self.log[mark:]
