"""Messages exchanged over links.

A message is immutable once sent (links "do not modify messages").  Every
message carries two identifiers:

``msg_id``
    A globally unique, execution-wide sequence number.  It is *not* stable
    under splicing (removing steps renumbers later messages), so the proof
    machinery never uses it for addressing.

``link_seq``
    The per-link sequence number: the n-th message ever sent on the
    directed link ``(src, dst)`` has ``link_seq == n``.  Because each link
    has a single sender, filtering the steps of some *other* process out of
    an execution never perturbs the ``link_seq`` numbering of the remaining
    sends, which makes ``(src, dst, link_seq)`` a structurally stable
    address for replay (see :mod:`repro.sim.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

ProcessId = str


class Payload:
    """Base class for typed message payloads.

    Protocols subclass this; the property monitors in
    :mod:`repro.core.properties` introspect payload types (for instance,
    read replies must expose the written values they carry) so that the
    one-value property is judged honestly rather than declared.
    """

    #: names of attributes that carry *written values* (checked by the
    #: one-value monitor).  Metadata such as timestamps is exempt, per the
    #: paper's footnote 3.
    value_fields: Tuple[str, ...] = ()

    def carried_values(self):
        """Return the list of (object, value) pairs this payload carries."""
        out = []
        for name in self.value_fields:
            item = getattr(self, name)
            if item is None:
                continue
            if isinstance(item, (list, tuple)):
                out.extend(item)
            else:
                out.append(item)
        return out


@dataclass(frozen=True)
class Message:
    """A message in transit or delivered on a directed link."""

    msg_id: int
    src: ProcessId
    dst: ProcessId
    link_seq: int
    payload: Any = field(compare=False)

    def __repr__(self) -> str:  # compact, used in witness rendering
        return (
            f"m{self.msg_id}[{self.src}->{self.dst}#{self.link_seq} "
            f"{type(self.payload).__name__}]"
        )
