"""Replayable scheduler commands.

An execution fragment is fully determined by the configuration it starts
from and the sequence of commands applied to it:

* :class:`StepCmd` — let one process take a computation step;
* :class:`DeliverCmd` — deliver one in-transit message, addressed
  structurally by ``(src, dst, link_seq)``;
* :class:`InvokeCmd` — hand a transaction invocation to a client.

The proof machinery (:mod:`repro.core.splicing`) records the command log
of an execution fragment, filters it (removing all steps of one server,
keeping only the steps of another, ...), and replays the filtered list
from a snapshot.  The paper's legality arguments guarantee that, for a
protocol satisfying the premises, every surviving ``DeliverCmd`` still
addresses a message that exists; if not, :class:`ReplayError` is raised
and identifies the broken premise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.sim.messages import ProcessId


class ReplayError(RuntimeError):
    """A replayed command could not be applied to the current configuration."""


@dataclass(frozen=True)
class Command:
    pass


@dataclass(frozen=True)
class StepCmd(Command):
    pid: ProcessId

    def __repr__(self) -> str:
        return f"step({self.pid})"


@dataclass(frozen=True)
class DeliverCmd(Command):
    src: ProcessId
    dst: ProcessId
    link_seq: int

    def __repr__(self) -> str:
        return f"deliver({self.src}->{self.dst}#{self.link_seq})"


@dataclass(frozen=True)
class InvokeCmd(Command):
    pid: ProcessId
    txn: Any

    def __repr__(self) -> str:
        return f"invoke({self.pid}, {self.txn})"


def steps_of(commands: Sequence[Command], pid: ProcessId) -> List[StepCmd]:
    return [c for c in commands if isinstance(c, StepCmd) and c.pid == pid]


def without_steps_of(commands: Sequence[Command], pid: ProcessId) -> List[Command]:
    """Drop every command executed *by* ``pid`` (steps), keeping deliveries.

    Deliveries addressed to ``pid`` are kept — in the model a delivery
    event is performed by the network/adversary, not by the process, and
    the paper's subsequences (β_p, ρ_p) remove only the *steps* taken by
    the excluded server.  Deliveries of messages that the excluded process
    never sent in the filtered run will fail at replay time, which is
    exactly the legality check.
    """
    return [c for c in commands if not (isinstance(c, StepCmd) and c.pid == pid)]


def only_steps_of(commands: Sequence[Command], pid: ProcessId) -> List[Command]:
    """Keep only the steps of ``pid`` plus deliveries addressed to ``pid``."""
    out: List[Command] = []
    for c in commands:
        if isinstance(c, StepCmd) and c.pid == pid:
            out.append(c)
        elif isinstance(c, DeliverCmd) and c.dst == pid:
            out.append(c)
    return out
