"""Execution traces.

The trace records every event of an execution — computation steps (with
the messages received and sent), delivery events, and transaction
invocations — in order.  The metrics in :mod:`repro.analysis.metrics` and
the property monitors in :mod:`repro.core.properties` are pure functions
of the trace, and the figure renderers in :mod:`repro.analysis.figures`
pretty-print slices of it.

Traces are *observational*: they are not part of the configuration, so
snapshotting and restoring a :class:`~repro.sim.executor.Simulation` does
not rewind the trace (the events really happened, on some branch).  Use
:meth:`Trace.mark` / :meth:`Trace.since` to slice out the events of one
branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.sim.messages import Message, ProcessId


@dataclass(frozen=True)
class TraceEvent:
    index: int


@dataclass(frozen=True)
class StepEvent(TraceEvent):
    """A computation step: ``pid`` consumed ``received`` and sent ``sent``."""

    pid: ProcessId
    received: Tuple[Message, ...]
    sent: Tuple[Message, ...]

    def __repr__(self) -> str:
        rx = ",".join(f"m{m.msg_id}" for m in self.received) or "-"
        tx = ",".join(f"m{m.msg_id}" for m in self.sent) or "-"
        return f"[{self.index}] step {self.pid} rx:{rx} tx:{tx}"


@dataclass(frozen=True)
class DeliverEvent(TraceEvent):
    """A delivery event moved ``message`` into the destination's buffer."""

    message: Message

    def __repr__(self) -> str:
        m = self.message
        return f"[{self.index}] deliver m{m.msg_id} {m.src}->{m.dst}"


@dataclass(frozen=True)
class InvokeEvent(TraceEvent):
    """The application handed a transaction to a client process."""

    pid: ProcessId
    txn: Any

    def __repr__(self) -> str:
        return f"[{self.index}] invoke {self.pid} {self.txn}"


class Trace:
    """Append-only event log for one simulation object."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def mark(self) -> int:
        """Return a cursor for :meth:`since`."""
        return len(self.events)

    def since(self, mark: int) -> List[TraceEvent]:
        return self.events[mark:]

    # -- queries used by monitors and the proof engine --------------------

    def steps_of(self, pid: ProcessId, start: int = 0) -> List[StepEvent]:
        return [
            e for e in self.events[start:] if isinstance(e, StepEvent) and e.pid == pid
        ]

    def messages_sent(
        self,
        src: Optional[ProcessId] = None,
        dst: Optional[ProcessId] = None,
        start: int = 0,
    ) -> List[Message]:
        out: List[Message] = []
        for e in self.events[start:]:
            if isinstance(e, StepEvent) and (src is None or e.pid == src):
                for m in e.sent:
                    if dst is None or m.dst == dst:
                        out.append(m)
        return out

    def receive_step(self, msg: Message, start: int = 0) -> Optional[StepEvent]:
        """The step event in which ``msg`` was consumed, if any."""
        for e in self.events[start:]:
            if isinstance(e, StepEvent) and any(
                m.msg_id == msg.msg_id for m in e.received
            ):
                return e
        return None

    def render(self, start: int = 0, end: Optional[int] = None) -> str:
        return "\n".join(repr(e) for e in self.events[start:end])
