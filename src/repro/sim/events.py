"""The event model: typed adversary choices and their independence relation.

An *adversary event* is one atomic choice the scheduler can make in a
configuration: deliver one in-transit message, or let one process take a
computation step.  Historically each consumer of the simulator re-derived
these choices from the network buffers by hand (`core/explore.py` had a
private ``_enabled_events``, the chaos adversaries used the scheduler's
``_deliverable``/``_steppable`` helpers) and passed them around as ad-hoc
``("d", src, dst, seq)`` / ``("s", pid)`` tuples.  This module is the one
sanctioned enumeration: it owns the typed :class:`Event` objects, the
:func:`enabled_events` enumerator, and the :func:`independent` relation
that drives the exploration engine's partial-order reduction.

Independence
------------

Two events are *independent* when they commute — applying them in either
order yields the same configuration *up to the trace-canonical quotient*
(``Simulation.fingerprint(canonical=True)``: blind to global ``msg_id``
numbering and to intra-batch income order), and neither enables or
disables the other:

* ``Deliver(a→p) ⟂ Deliver(b→q)`` always (for distinct messages): the
  two moves remove from different positions of in-transit queues and
  append to income buffers.  Even two deliveries to the *same* process
  commute, because a step reads its inbox as a **set** —
  ``Network.drain_income`` presents every batch in canonical
  ``(src, link_seq)`` order, so the order the adversary filled the
  buffer in is unobservable.
* ``Step(p) ⟂ Deliver(a→q)`` iff ``p != q``: the step drains
  ``income[p]`` and mutates ``p``'s state; the delivery moves a message
  into ``income[q]``.  Even when ``a == p`` (the step's sends append to
  the tail of an in-transit queue the delivery removes from) the two
  operations commute element-wise and neither disables the other.  When
  ``p == q`` they are dependent: delivering before the step changes what
  the step's inbox contains.
* ``Step(p) ⟂ Step(q)`` iff ``p != q``: the two steps read and write
  disjoint process states and drain disjoint income buffers.  Their send
  sets land on disjoint links (a link is an ordered pair keyed by its
  source), and although the two orders mint different global ``msg_id``s
  for those sends, the canonical fingerprint is ``msg_id``-blind — the
  per-link ``link_seq`` each message gets is order-invariant.

The engine's partial-order reduction relies on exactly these guarantees:
``por=True`` keys its seen-set on the canonical fingerprint (so the two
sides of every commuting diamond merge) and prunes redundant sibling
orders with sleep sets.  The strict (``msg_id``-covering) fingerprint
used when ``por=False`` distinguishes states this relation declares
equal, which is why POR must pair the sleep sets with the canonical
quotient.  See ``docs/model.md`` ("Exploration engine") for the
soundness argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, TYPE_CHECKING

from repro.sim.messages import Message, ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.executor import Simulation


@dataclass(frozen=True)
class Event:
    """One atomic adversary choice.  Frozen, hashable, picklable."""

    def apply(self, sim: "Simulation") -> None:
        raise NotImplementedError

    @property
    def label(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Deliver(Event):
    """Deliver the in-transit message ``(src, dst, link_seq)``."""

    src: ProcessId
    dst: ProcessId
    link_seq: int

    def apply(self, sim: "Simulation") -> None:
        sim.deliver(self.src, self.dst, self.link_seq)

    @property
    def label(self) -> str:
        return f"deliver {self.src}->{self.dst}#{self.link_seq}"


@dataclass(frozen=True)
class Step(Event):
    """Let process ``pid`` take one computation step."""

    pid: ProcessId

    def apply(self, sim: "Simulation") -> None:
        sim.step(self.pid)

    @property
    def label(self) -> str:
        return f"step {self.pid}"


def independent(a: Event, b: Event) -> bool:
    """Whether ``a`` and ``b`` commute (see the module docstring)."""
    if a == b:
        return False
    if isinstance(a, Deliver) and isinstance(b, Deliver):
        return True  # distinct messages; inbox batches are sets
    if isinstance(a, Deliver) and isinstance(b, Step):
        return a.dst != b.pid
    if isinstance(a, Step) and isinstance(b, Deliver):
        return a.pid != b.dst
    return a.pid != b.pid  # two steps commute up to msg_id numbering


def deliverable_messages(
    sim: "Simulation", pids: Optional[Sequence[ProcessId]] = None
) -> List[Message]:
    """In-transit messages whose destination may act, oldest (msg_id) first.

    Messages to excluded processes are withheld (arbitrarily delayed),
    which is how solo executions are realized.
    """
    allowed = set(sim.pids()) if pids is None else set(pids)
    return [m for m in sim.network.pending() if m.dst in allowed]


def steppable_pids(
    sim: "Simulation", pids: Optional[Sequence[ProcessId]] = None
) -> List[ProcessId]:
    """Processes (among ``pids``) for which a step is currently useful.

    A step is useful when the process has undrained income or its
    ``wants_step`` hook reports deferred work.
    """
    group = sim.pids() if pids is None else pids
    income = sim.network.income
    return [
        pid
        for pid in group
        if income[pid] or sim.processes[pid].wants_step()
    ]


def enabled_events(
    sim: "Simulation", pids: Optional[Sequence[ProcessId]] = None
) -> List[Event]:
    """Every enabled adversary event, in a deterministic order.

    Deliveries come first (ordered by ``msg_id``, i.e. send order), then
    steps in the order of ``pids``.  The order is part of the exploration
    baselines — the DFS visits children in exactly this order.
    """
    events: List[Event] = [
        Deliver(m.src, m.dst, m.link_seq) for m in deliverable_messages(sim, pids)
    ]
    events.extend(Step(pid) for pid in steppable_pids(sim, pids))
    return events
