"""Schema-aware state codecs for the snapshot/fingerprint stack.

The delta snapshots of :mod:`repro.sim.executor` made snapshot *traffic*
proportional to the number of dirty components, but each dirty component
still paid O(process): one full ``pickle.dumps`` for the restorable
sub-blob plus two full ``_canonize`` walks for the strict and canonical
fingerprint dumps.  This module replaces all three with **one**
schema-driven walk that scales with the *delta inside* the component:

* Every :class:`~repro.sim.process.Process` subclass declares a
  ``codec_schema`` — a tuple of :class:`CodecField` entries naming its
  state fields and their kinds (``const`` / ``value`` / ``map`` /
  ``seq``).  Schemas are collected over the MRO, so a subclass declares
  only the fields it adds.
* :class:`ComponentLedger` keeps, per live component, the last encoded
  **cell** (canonical bytes) per field — and for ``map``/``seq``
  fields, per key/element.  Change detection is encode-and-compare:
  each capture re-encodes the dirty component's fields and
  byte-compares against the cached cells (byte equality of canonical
  encodings *is* value equality, so stale reuse is impossible by
  construction); only differing cells are published as fresh bytes,
  everything else keeps its identity and is shared by reference.
* Cell bytes double as fingerprint leaves: the component digest is a
  Merkle-style combine (:func:`cells_digest`) over the field cells, so
  the fingerprint after one event re-hashes only the touched subtrees.
  The canonical (trace-blind) variant swaps in transformed cells for
  the fields that declare a ``canon`` mask and reuses the strict cells
  for every other field.

The wire format (:class:`_Encoder` / :class:`_Decoder`) is a canonical,
injective, identity-blind tagged binary encoding: type-tagged atoms
(ints as zigzag LEB128 varints, floats by their IEEE bit pattern, bools
distinct from ints), insertion-ordered dicts, sets serialized in sorted
encoded-bytes order, and arbitrary objects as ``(module, qualname,
state-dict)``.  Two values encode to the same bytes **iff** they are
equal under exactly the relation the executor's ``_canonize`` +
fast-mode pickle partition has always used — which is what keeps the
engine-level state counts bit-identical across snapshot modes.  Strings
intern against a deterministic static table (the repo's stable
vocabulary plus each schema's declared/const-derived strings) and
non-static strings are emitted raw, so every fragment of a cell is a
pure function of (value, statics) — safe to compare, cache, share, and
ship to workers byte-for-byte — while hot strings cost two bytes.
Deeply-immutable :class:`~repro.txn.types.Transaction` objects encode as
length-framed fragments memoized by identity on the encode side and by
fragment bytes on the decode side, so the transactions threaded through
every client field cost one dict probe per capture/restore.

A component whose class declares no schema, whose schema does not cover
its ``__getstate__`` keys, or whose state contains a value the codec
cannot round-trip raises :class:`CodecError`; the executor then falls
back to the pickled-blob path for that component (counted in
``SimCounters.codec_fallbacks``) — correctness never depends on a
schema being present, only the O(delta) costs do.  Lint rule RL504
flags the missing/incomplete declarations statically.
"""

from __future__ import annotations

import importlib
import struct
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.txn.types import BOTTOM, Transaction

__all__ = [
    "CodecError",
    "CodecField",
    "ComponentLedger",
    "const",
    "value",
    "mapf",
    "seq",
    "collect_schema",
    "collect_statics",
    "encode_cell",
    "decode_cell",
    "ledger_from_cells",
    "cells_digest",
    "codec_equal",
]


class CodecError(Exception):
    """The codec cannot faithfully encode this component — fall back."""


# -- schema declarations -----------------------------------------------------

#: field kinds.  ``const`` fields never change after ``__init__`` (encoded
#: once, shared by reference forever, their strings seed the intern
#: table); ``value`` fields re-encode as a whole when changed; ``map``
#: fields are dicts with per-key sub-cells; ``seq`` fields are lists
#: with per-element sub-cells (append-mostly lists re-encode the tail,
#: not the history).
CONST, VALUE, MAP, SEQ = "const", "value", "map", "seq"


@dataclass(frozen=True)
class CodecField:
    """One declared state field of a dirty-tracked component."""

    name: str
    kind: str
    #: optional value mask for the *canonical* fingerprint variant —
    #: the codec analogue of overriding ``fp_state()``.  For ``value``
    #: fields it receives the field value; for ``seq`` fields, each
    #: element.  It must be pure and deterministic.
    canon: Optional[Callable[[Any], Any]] = None


def const(name: str) -> CodecField:
    return CodecField(name, CONST)


def value(name: str, canon: Optional[Callable[[Any], Any]] = None) -> CodecField:
    return CodecField(name, VALUE, canon)


def mapf(name: str) -> CodecField:
    return CodecField(name, MAP)


def seq(name: str, canon: Optional[Callable[[Any], Any]] = None) -> CodecField:
    return CodecField(name, SEQ, canon)


def collect_schema(cls: type) -> Optional[Tuple[CodecField, ...]]:
    """The full schema of ``cls``: MRO-collected ``codec_schema`` entries.

    Base-class declarations come first; a subclass redeclaring a field
    name overrides the base entry (e.g. to change its kind or mask).
    Returns ``None`` when no class in the MRO declares a schema.
    """
    fields: List[CodecField] = []
    found = False
    for klass in reversed(cls.__mro__):
        entries = klass.__dict__.get("codec_schema")
        if entries is None:
            continue
        found = True
        for f in entries:
            fields = [g for g in fields if g.name != f.name]
            fields.append(f)
    return tuple(fields) if found else None


def collect_statics(cls: type) -> Tuple[str, ...]:
    """MRO-collected ``codec_statics`` strings, order-deterministic."""
    out: List[str] = []
    seen = set()
    for klass in reversed(cls.__mro__):
        for s in klass.__dict__.get("codec_statics", ()):
            if s not in seen:
                seen.add(s)
                out.append(s)
    return tuple(out)


#: the repo's stable state vocabulary, baked in so every encoder and
#: decoder — including a forked or spawned worker — derives the same
#: intern table with no registration order to skew.  Entries are module
#: names, class qualnames, and dataclass field names that occur in
#: protocol state.  Extending it is a compatible change (cells are
#: always decoded by the same build that encoded them; snapshots never
#: persist across program versions).
COMMON_STATICS: Tuple[str, ...] = (
    # modules whose classes appear nested in process state
    "repro.protocols.base",
    "repro.protocols.calvin",
    "repro.protocols.cops_geo",
    "repro.protocols.cops_snow",
    "repro.protocols.occult",
    "repro.protocols.snapshot",
    "repro.protocols.spanner",
    "repro.sim.clock",
    "repro.sim.messages",
    "repro.txn.client",
    "repro.txn.types",
    # class qualnames
    "Version",
    "ValueEntry",
    "ReadRequest",
    "ReadReply",
    "WriteRequest",
    "WriteReply",
    "ServerMsg",
    "Message",
    "Transaction",
    "TxnRecord",
    "ActiveTxn",
    "Operation",
    "LamportClock",
    "VectorClock",
    "HybridLogicalClock",
    "HLCTimestamp",
    "TTInterval",
    "TrueTimeOracle",
    "PendingReplica",
    "PendingWrite",
    # dataclass / state field names
    "obj",
    "value",
    "ts",
    "txid",
    "deps",
    "meta",
    "visible",
    "invisible_to",
    "kind",
    "reads",
    "writes",
    "txn",
    "name",
    "ops",
    "round",
    "awaiting",
    "state",
    "invoked_at",
    "completed_at",
    "status",
    "msg_id",
    "src",
    "dst",
    "link_seq",
    "payload",
    "owner",
    "clock",
    "time",
    "node",
    "physical",
    "logical",
    "earliest",
    "latest",
    "epsilon",
    "version",
    "waiting",
    "client",
    "old_readers",
)


# -- the wire format ---------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05      # inline utf-8, assigns the next intern id
_T_SREF = 0x06     # back-reference into the intern table
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_SET = 0x0B
_T_FSET = 0x0C
_T_DEQUE = 0x0D
_T_OBJ = 0x0E      # (module, qualname, state dict)
_T_BOTTOM = 0x0F   # the ⊥ singleton (repro.txn.types.BOTTOM)
_T_OBJL = 0x10     # length-framed _T_OBJ fragment (memoizable object)

_pack_float = struct.Struct(">d").pack
_unpack_float = struct.Struct(">d").unpack_from


def _varint(n: int) -> bytes:
    out = bytearray()
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _read_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Read one varint at ``pos``; returns ``(value, next_pos)``."""
    b = buf[pos]
    if b < 0x80:
        return b, pos + 1
    out = b & 0x7F
    shift = 7
    pos += 1
    while True:
        b = buf[pos]
        pos += 1
        out |= (b & 0x7F) << shift
        if not b & 0x80:
            return out, pos
        shift += 7


_MISSING = object()


#: single-byte varints for small length prefixes (the overwhelmingly
#: common case: container sizes and intern ids < 128)
_LEN1 = tuple(bytes([i]) for i in range(128))

#: pre-built ``tag + varint(zigzag(n))`` int cells for the small-int band
#: that dominates simulation state (timestamps, counters, slot numbers)
_INT_CELLS = {n: b"\x03" + _varint(_zigzag(n)) for n in range(-32, 1024)}

#: per-intern-table cache of pre-built SREF byte strings, so encoding a
#: static string is one dict probe + one list append.  Keyed by table
#: identity; the guard tuple keeps the table alive and detects id reuse.
#: Bounded: the guard pins every table ever seen, and tables are built
#: per ledger — over many Simulations the process would otherwise pin
#: them all forever.  Overflow clears the cache (a pure cache: live
#: tables re-derive their entry on the next encode).
_SENC_CACHE: Dict[int, Tuple[Dict[str, int], Dict[str, bytes]]] = {}
_SENC_CACHE_CAP = 64


def _senc_for(statics: Dict[str, int]) -> Dict[str, bytes]:
    key = id(statics)
    hit = _SENC_CACHE.get(key)
    if hit is not None and hit[0] is statics:
        return hit[1]
    if len(_SENC_CACHE) >= _SENC_CACHE_CAP:
        _SENC_CACHE.clear()
    senc = {s: b"\x06" + _varint(i) for s, i in statics.items()}
    _SENC_CACHE[key] = (statics, senc)
    return senc


_OBJECT_GETSTATE = getattr(object, "__getstate__", None)

#: per-class cache for the generic-object path: (module, qualname,
#: has-custom-__getstate__).  Builtin subclasses are never cached (they
#: raise before insertion), so a cache hit is always encodable.
_OBJ_HEAD: Dict[type, Tuple[str, str, bool]] = {}


class _Encoder:
    """One cell's canonical byte emission.

    Strings intern only against the shared immutable ``statics`` map, so
    every encoding is a pure, context-free function of (value, statics):
    any fragment of a cell can be compared, cached, or spliced into
    another cell byte-for-byte.  That context-freeness is what makes the
    set-element sort, the per-entry map/seq sub-cells, and the frozen
    :class:`~repro.txn.types.Transaction` fragment memo all sound.
    """

    __slots__ = ("statics", "senc", "parts", "ememo", "fmemo")

    def __init__(self, statics: Dict[str, int]):
        self.statics = statics
        self.senc = _senc_for(statics)
        self.parts: List[bytes] = []
        #: set-element encoding memo, persistent across cells on the
        #: per-ledger encoder.  Only values on which Python equality IS
        #: the codec relation (:func:`_eq_is_exact`) are inserted, so a
        #: hash-equal key of another codec type (``1`` vs ``True``)
        #: can never serve the wrong bytes.
        self.ememo: Dict[Any, bytes] = {}
        #: id-keyed fragment memo for deeply-immutable ``Transaction``
        #: objects (frozen dataclass whose fields are str/tuple-of-str/
        #: tuple-of-pairs — in-place mutation is impossible, so identity
        #: implies unchanged bytes).  The guard value keeps the object
        #: alive so an id can never be reused while its entry is live.
        self.fmemo: Dict[int, Tuple[Any, bytes]] = {}

    def encode(self, v: Any) -> None:
        parts = self.parts
        t = v.__class__
        if t is str:
            e = self.senc.get(v)
            if e is not None:
                parts.append(e)
            else:
                self._encode_str(v)
            return
        if t is int:
            cell = _INT_CELLS.get(v)
            if cell is not None:
                parts.append(cell)
            else:
                parts.append(b"\x03")
                parts.append(_varint(_zigzag(v)))
            return
        if v is None:
            parts.append(b"\x00")
            return
        if t is bool:
            parts.append(b"\x01" if v else b"\x02")
        elif t is float:
            parts.append(b"\x04")
            parts.append(_pack_float(v))
        elif t is bytes:
            parts.append(b"\x07")
            parts.append(_varint(len(v)))
            parts.append(v)
        elif t is tuple:
            n = len(v)
            parts.append(b"\x08")
            parts.append(_LEN1[n] if n < 128 else _varint(n))
            for x in v:
                self.encode(x)
        elif t is list:
            n = len(v)
            parts.append(b"\x09")
            parts.append(_LEN1[n] if n < 128 else _varint(n))
            for x in v:
                self.encode(x)
        elif t is dict:
            n = len(v)
            parts.append(b"\x0a")
            parts.append(_LEN1[n] if n < 128 else _varint(n))
            for k, val in v.items():
                self.encode(k)
                self.encode(val)
        elif t is set or t is frozenset:
            n = len(v)
            parts.append(b"\x0b" if t is set else b"\x0c")
            parts.append(_LEN1[n] if n < 128 else _varint(n))
            ememo = self.ememo
            pieces = []
            for x in v:
                # only exact values may consult (or populate) the memo:
                # ``ememo.get(True)`` must not hit an entry for ``1``
                if _eq_is_exact(x):
                    e = ememo.get(x)
                    if e is None:
                        e = self._encode_detached(x)
                        ememo[x] = e
                else:
                    e = self._encode_detached(x)
                pieces.append(e)
            pieces.sort()
            parts.extend(pieces)
        elif t is deque:
            n = len(v)
            parts.append(b"\x0d")
            parts.append(_LEN1[n] if n < 128 else _varint(n))
            for x in v:
                self.encode(x)
        elif t is Transaction:
            fmemo = self.fmemo
            key = id(v)
            hit = fmemo.get(key)
            if hit is not None and hit[0] is v:
                parts.append(hit[1])
            else:
                save = self.parts
                self.parts = []
                self._encode_obj(v, t)
                body = b"".join(self.parts)
                self.parts = parts = save
                n = len(body)
                frag = b"\x10" + (_LEN1[n] if n < 128 else _varint(n)) + body
                fmemo[key] = (v, frag)
                parts.append(frag)
        elif v is BOTTOM:
            # ⊥ is a stateless singleton whose identity must survive the
            # round trip (pickle preserves it via __reduce__; the generic
            # object path cannot, and object.__getstate__ returns None
            # for it on 3.11+)
            parts.append(b"\x0f")
        else:
            self._encode_obj(v, t)

    def _encode_str(self, v: str) -> None:
        # slow path: ``v`` is not in the static table (checked by the
        # caller via the pre-built SREF cache) — emit raw utf-8
        parts = self.parts
        raw = v.encode("utf-8")
        n = len(raw)
        parts.append(b"\x05")
        parts.append(_LEN1[n] if n < 128 else _varint(n))
        parts.append(raw)

    def _encode_detached(self, v: Any) -> bytes:
        """Encode ``v`` into its own byte string (sharing the memos)."""
        save = self.parts
        self.parts = []
        self.encode(v)
        e = self.parts[0] if len(self.parts) == 1 else b"".join(self.parts)
        self.parts = save
        return e

    def _encode_obj(self, v: Any, t: type) -> None:
        head = _OBJ_HEAD.get(t)
        if head is None:
            if isinstance(
                v, (dict, list, tuple, set, frozenset, str, bytes, int, float)
            ):
                # a builtin-container subclass (defaultdict, namedtuple, …)
                # would lose its extra behaviour through the generic object
                # path — refuse rather than decode to the wrong type
                raise CodecError(
                    f"builtin subclass {t.__qualname__} not codec-encodable"
                )
            custom = (
                getattr(t, "__getstate__", None) is not _OBJECT_GETSTATE
                and _OBJECT_GETSTATE is not None
            ) or _OBJECT_GETSTATE is None
            head = (t.__module__, t.__qualname__, custom)
            _OBJ_HEAD[t] = head
        module, qualname, custom = head
        if custom:
            getstate = getattr(v, "__getstate__", None)
            if getstate is not None:
                state = getstate()
            else:  # pragma: no cover - pre-3.11 fallback
                state = getattr(v, "__dict__", None)
            if not isinstance(state, dict):
                raise CodecError(f"{t.__qualname__} state is not a plain dict")
        else:
            # plain object: object.__getstate__ would hand back (a copy
            # of) __dict__ anyway — read it directly and skip the call
            state = v.__dict__
        parts = self.parts
        senc = self.senc
        parts.append(b"\x0e")
        e = senc.get(module)
        if e is not None:
            parts.append(e)
        else:
            self._encode_str(module)
        e = senc.get(qualname)
        if e is not None:
            parts.append(e)
        else:
            self._encode_str(qualname)
        n = len(state)
        parts.append(_LEN1[n] if n < 128 else _varint(n))
        for k, val in state.items():
            e = senc.get(k)
            if e is not None:
                parts.append(e)
            else:
                self._encode_str(k)
            self.encode(val)


    def cell(self, v: Any) -> bytes:
        """Encode ``v`` as a fresh self-contained cell, reusing this
        encoder instance (the statics/senc tables and memos carry
        over — encodings are context-free, so reuse cannot change the
        bytes)."""
        self.parts = parts = []
        self.encode(v)
        if len(parts) == 1:
            return parts[0]
        return b"".join(parts)


def _encode_isolated(v: Any, statics: Dict[str, int]) -> bytes:
    return _Encoder(statics).cell(v)


def encode_cell(v: Any, statics: Dict[str, int]) -> bytes:
    """Encode one value as a self-contained canonical cell."""
    return _Encoder(statics).cell(v)


class _Decoder:
    __slots__ = ("buf", "pos", "statics", "dmemo")

    def __init__(self, buf: bytes, statics: Sequence[str]):
        self.buf = buf
        self.pos = 0
        self.statics = statics
        #: optional fragment → decoded-object memo for length-framed
        #: ``_T_OBJL`` fragments (frozen ``Transaction``s).  Shared by
        #: the owning ledger across restores: handing back the same
        #: immutable object is exactly what ``deepcopy`` does for
        #: atoms, and saves re-materializing the transaction on every
        #: restore that touches it.
        self.dmemo: Optional[Dict[bytes, Any]] = None

    def _varint(self) -> int:
        buf, pos, shift, out = self.buf, self.pos, 0, 0
        while True:
            b = buf[pos]
            pos += 1
            out |= (b & 0x7F) << shift
            if not b & 0x80:
                self.pos = pos
                return out
            shift += 7

    def decode(self) -> Any:
        buf = self.buf
        pos = self.pos
        tag = buf[pos]
        pos += 1
        # hot tags first, with the single-byte varint read inlined
        if tag == _T_SREF:
            idx = buf[pos]
            if idx < 0x80:
                self.pos = pos + 1
            else:
                self.pos = pos
                idx = self._varint()
            return self.statics[idx]
        if tag == _T_INT:
            z = buf[pos]
            if z < 0x80:
                self.pos = pos + 1
            else:
                self.pos = pos
                z = self._varint()
            return (z >> 1) if not z & 1 else -((z + 1) >> 1)
        self.pos = pos
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_STR:
            n = self._varint()
            s = buf[self.pos : self.pos + n].decode("utf-8")
            self.pos += n
            return s
        if tag == _T_FLOAT:
            v = _unpack_float(buf, self.pos)[0]
            self.pos += 8
            return v
        if tag == _T_BYTES:
            n = self._varint()
            v = buf[self.pos : self.pos + n]
            self.pos += n
            return v
        if tag == _T_TUPLE:
            return tuple(self.decode() for _ in range(self._varint()))
        if tag == _T_LIST:
            return [self.decode() for _ in range(self._varint())]
        if tag == _T_DICT:
            n = self._varint()
            out: Dict[Any, Any] = {}
            for _ in range(n):
                k = self.decode()
                out[k] = self.decode()
            return out
        if tag == _T_SET or tag == _T_FSET:
            n = self._varint()
            elems = [self.decode() for _ in range(n)]
            return frozenset(elems) if tag == _T_FSET else set(elems)
        if tag == _T_DEQUE:
            return deque(self.decode() for _ in range(self._varint()))
        if tag == _T_BOTTOM:
            return BOTTOM
        if tag == _T_OBJ:
            module = self.decode()
            qualname = self.decode()
            n = self._varint()
            state: Dict[str, Any] = {}
            for _ in range(n):
                k = self.decode()
                state[k] = self.decode()
            cls = _resolve_class(module, qualname)
            obj = object.__new__(cls)
            setstate = getattr(cls, "__setstate__", None)
            if setstate is not None and setstate is not getattr(
                object, "__setstate__", None
            ):
                obj.__setstate__(state)
            else:
                obj.__dict__.update(state)
            return obj
        if tag == _T_OBJL:
            n = self._varint()
            pos = self.pos
            end = pos + n
            self.pos = end
            frag = buf[pos:end]
            dmemo = self.dmemo
            if dmemo is not None:
                v = dmemo.get(frag)
                if v is not None:
                    return v
            sub = _Decoder(frag, self.statics)
            v = sub.decode()
            if dmemo is not None:
                dmemo[frag] = v
            return v
        raise CodecError(f"bad tag {tag:#x} at {self.pos - 1}")


_CLASS_CACHE: Dict[Tuple[str, str], type] = {}


def _resolve_class(module: str, qualname: str) -> type:
    key = (module, qualname)
    cls = _CLASS_CACHE.get(key)
    if cls is None:
        obj: Any = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        cls = _CLASS_CACHE[key] = obj
    return cls


def decode_cell(cell: bytes, statics: Sequence[str]) -> Any:
    dec = _Decoder(cell, statics)
    v = dec.decode()
    if dec.pos != len(cell):
        raise CodecError("trailing bytes in cell")
    return v


# -- value equality (the codec's partition, without byte emission) -----------

def _eq_is_exact(v: Any) -> bool:
    """Whether Python ``==`` coincides with the codec relation for ``v``.

    True only for exact ``str``/``int``/``bytes`` (``bool`` is excluded —
    ``True == 1`` but the codec distinguishes them; ``float`` is excluded
    for ``0.0 == -0.0`` and nan) and containers thereof.  Checked per
    side: a ``1`` on one side and a ``True`` on the other makes the
    ``bool`` side inexact, which forces the exact fallback.
    """
    t = v.__class__
    if t is str or t is int or t is bytes:
        return True
    if t is tuple or t is frozenset:
        return all(_eq_is_exact(x) for x in v)
    return False


def _eq_is_exact_all(vs: Any) -> bool:
    return all(_eq_is_exact(x) for x in vs)


def codec_equal(a: Any, b: Any) -> bool:
    """Exact equality under the codec's (and ``_canonize``'s) relation.

    The ledger's change detection compares encoded bytes instead (one
    walk), so this predicate is not on the capture hot path; it remains
    the reference definition of the codec's equality kernel, used by
    the round-trip tests as an oracle.  The contract is asymmetric in
    cost direction: ``True`` must be *exact* (the relation may never
    identify values whose canonical encodings differ), ``False`` for an
    actually-equal pair (nan elements) is tolerated.  User-defined
    ``__eq__`` is never consulted for objects (e.g. ``Message.__eq__``
    ignores the payload field); states compare structurally instead.
    """
    if a is b:
        return True
    ta = a.__class__
    if ta is not b.__class__:
        return False
    if ta is int or ta is str or ta is bytes:
        return a == b
    if ta is bool or a is None:
        return a == b
    if ta is float:
        return _pack_float(a) == _pack_float(b)
    if ta is tuple or ta is list:
        if len(a) != len(b):
            return False
        return all(codec_equal(x, y) for x, y in zip(a, b))
    if ta is dict:
        if len(a) != len(b):
            return False
        for (ka, va), (kb, vb) in zip(a.items(), b.items()):
            if not codec_equal(ka, kb) or not codec_equal(va, vb):
                return False
        return True
    if ta is set or ta is frozenset:
        if len(a) != len(b):
            return False
        if a != b:
            # Python equality is coarser than the codec relation, so a
            # Python-level mismatch is exact; the only lie in this
            # direction (nan elements comparing unequal to themselves)
            # is a false negative, which merely re-encodes
            return False
        if _eq_is_exact_all(a) and _eq_is_exact_all(b):
            # both sides hold only types on which Python equality IS the
            # codec relation (no bool/int, int/float, ±0.0 collapses),
            # so the == above already decided it
            return True
        # exact under the codec relation: compare sorted isolated
        # encodings (sets are small protocol state — awaiting/deps sets)
        try:
            ea = sorted(_encode_isolated(x, _EMPTY_STATICS) for x in a)
            eb = sorted(_encode_isolated(x, _EMPTY_STATICS) for x in b)
        except CodecError:
            return False
        return ea == eb
    if ta is deque:
        if len(a) != len(b):
            return False
        return all(codec_equal(x, y) for x, y in zip(a, b))
    getstate = getattr(a, "__getstate__", None)
    if getstate is None:  # pragma: no cover - pre-3.11 fallback
        sa = getattr(a, "__dict__", None)
        sb = getattr(b, "__dict__", None)
    else:
        sa = getstate()
        sb = b.__getstate__()
    if not isinstance(sa, dict) or not isinstance(sb, dict):
        return False
    return codec_equal(sa, sb)


_EMPTY_STATICS: Dict[str, int] = {}


# -- per-component ledgers ---------------------------------------------------

def _derive_statics(
    class_statics: Tuple[str, ...], const_values: Sequence[Any], pid: str
) -> Tuple[str, ...]:
    """The full static table: class vocabulary + const-derived strings.

    Both ends derive it the same way — the decoder decodes const cells
    against the class statics first, then derives the same extension.
    """
    out = list(COMMON_STATICS)
    seen = set(out)
    for s in class_statics + (pid,):
        if s not in seen:
            seen.add(s)
            out.append(s)
    stack = list(const_values)
    while stack:
        v = stack.pop()
        t = v.__class__
        if t is str:
            if v not in seen:
                seen.add(v)
                out.append(v)
        elif t is tuple or t is list or t is set or t is frozenset:
            stack.extend(sorted(v, key=repr) if t in (set, frozenset) else v)
        elif t is dict:
            stack.extend(v.keys())
            stack.extend(v.values())
    return tuple(out)


_BASE_STATICS_MAP: Dict[str, int] = {s: i for i, s in enumerate(COMMON_STATICS)}


def _class_statics_map(class_statics: Tuple[str, ...], pid: str) -> Dict[str, int]:
    out = dict(_BASE_STATICS_MAP)
    for s in class_statics + (pid,):
        if s not in out:
            out[s] = len(out)
    return out


class ComponentLedger:
    """One live component's codec state, persistent across versions.

    Holds the schema, the derived intern tables, the last encoded cell
    per field, and for map/seq fields the per-key/per-element
    sub-cells.  The executor keeps one ledger per pid; unlike the
    ``_CompRow`` cache rows (which are replaced on every version bump),
    a ledger survives mutations — that persistence is exactly what
    keeps fresh bytes O(changed fields) per event.
    """

    __slots__ = (
        "cls",
        "clsref",
        "schema",
        "statics_map",
        "statics_seq",
        "cells",
        "canon_cells",
        "consts",
        "subcells",
        "kindex",
        "dmemo",
        "_enc",
        "_dec",
    )

    def __init__(self, proc: Any):
        cls = type(proc)
        schema = collect_schema(cls)
        if schema is None:
            raise CodecError(f"{cls.__qualname__} declares no codec_schema")
        state = proc.__getstate__()
        names = [f.name for f in schema]
        if len(set(names)) != len(names) or set(names) != set(state):
            missing = set(state) - set(names)
            extra = set(names) - set(state)
            raise CodecError(
                f"{cls.__qualname__} schema does not match state "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        pid = getattr(proc, "pid", "")
        const_vals = [state[f.name] for f in schema if f.kind == CONST]
        self._init_core(cls, schema, pid, const_vals)
        base_map = _class_statics_map(collect_statics(cls), pid)
        for i, f in enumerate(schema):
            if f.kind == CONST:
                # const cells are encoded in isolated mode against the
                # *class-level* table only: they seed the full table, so
                # they must be decodable before it exists, and their
                # bytes must stay valid under any prefix-compatible
                # superset table (no local back-references)
                self.cells[i] = _encode_isolated(state[f.name], base_map)
                self.canon_cells[i] = self.cells[i]
                self.consts[i] = state[f.name]

    def _init_core(
        self,
        cls: type,
        schema: Tuple[CodecField, ...],
        pid: str,
        const_vals: Sequence[Any],
    ) -> None:
        self.cls = cls
        self.clsref = f"{cls.__module__}:{cls.__qualname__}"
        self.schema = schema
        class_statics = collect_statics(cls)
        self.statics_seq = _derive_statics(class_statics, const_vals, pid)
        self.statics_map = {s: i for i, s in enumerate(self.statics_seq)}
        nfields = len(schema)
        self.cells: List[Optional[bytes]] = [None] * nfields
        self.canon_cells: List[Optional[bytes]] = [None] * nfields
        #: const fields hold their value by reference (sharing the
        #: construction-time configuration is the const contract)
        self.consts: List[Any] = [None] * nfields
        #: map/seq fields: field index -> {key: (kcell, vcell)} or
        #: [cell, ...] — the per-entry byte cache entries are compared
        #: against fresh encodings, never decoded
        self.subcells: Dict[int, Any] = {}
        #: map fields only: field index -> {kcell bytes: key} — the
        #: reverse index that lets the delta restore recognize an
        #:  unchanged entry without decoding its key
        self.kindex: Dict[int, Dict[bytes, Any]] = {}
        #: length-framed-fragment → decoded ``Transaction`` memo,
        #: shared by every decode this ledger performs
        self.dmemo: Dict[bytes, Any] = {}
        #: persistent encoder/decoder (statics tables set up once;
        #: encodings are context-free so reuse is sound)
        self._enc = _Encoder(self.statics_map)
        self._dec = _Decoder(b"", self.statics_seq)
        self._dec.dmemo = self.dmemo

    # -- encoding ----------------------------------------------------------

    def capture(self, proc: Any, counters: Any) -> Tuple[bytes, ...]:
        """Encode the component's current state as a cell tuple.

        Change detection is *encode-and-compare*: every non-const field
        is re-encoded (one walk — the canonical bytes double as the
        change detector, since byte equality of canonical encodings IS
        value equality under the codec relation) and byte-compared
        against the cached cell.  Only differing cells (and inside
        map/seq fields, only differing keys/elements) are published as
        fresh bytes; unchanged cells keep their identity so snapshots
        share them by reference.  ``counters`` is the executor's
        :class:`SimCounters` ledger.
        """
        schema = self.schema
        cells = self.cells
        enc = self._enc
        for i, f in enumerate(schema):
            kind = f.kind
            if kind == CONST:
                counters.cells_reused += 1
                counters.bytes_reused += len(cells[i])  # type: ignore[arg-type]
                continue
            live = getattr(proc, f.name)
            if kind == VALUE:
                cell = enc.cell(live)
                have = cells[i]
                if have is not None and have == cell:
                    counters.cells_reused += 1
                    counters.bytes_reused += len(have)
                    continue
                counters.cells_encoded += 1
                counters.bytes_serialized += len(cell)
                cells[i] = cell
                self.canon_cells[i] = None
            elif kind == MAP:
                self._capture_map(i, live, counters)
            else:  # SEQ
                self._capture_seq(i, live, counters)
        return tuple(cells)  # type: ignore[arg-type]

    def _capture_map(self, i: int, live: Any, counters: Any) -> None:
        # composite-cell wire format: varint(n), then per entry
        # varint(len(kcell)) kcell varint(len(vcell)) vcell — the length
        # prefixes are what let the delta restore slice entries without
        # decoding them
        if live.__class__ is not dict:
            raise CodecError(f"map field {self.schema[i].name} is not a dict")
        sub = self.subcells.get(i) or {}
        new_kindex: Dict[bytes, Any] = {}
        enc = self._enc
        n = len(live)
        parts: List[bytes] = [_LEN1[n] if n < 128 else _varint(n)]
        new_sub: Dict[Any, Tuple[bytes, bytes]] = {}
        for k, v in live.items():
            kcell = enc.cell(k)
            vcell = enc.cell(v)
            old = sub.get(k)
            # entries compare by encoded bytes, so a hash-equal key of a
            # different codec type (1 vs True) cannot serve a stale cell
            if old is not None and old[0] == kcell and old[1] == vcell:
                kcell, vcell = old
                counters.cells_reused += 1
                counters.bytes_reused += len(kcell) + len(vcell)
            else:
                counters.cells_encoded += 1
                counters.bytes_serialized += len(kcell) + len(vcell)
            new_sub[k] = (kcell, vcell)
            new_kindex[kcell] = k
            nk = len(kcell)
            nv = len(vcell)
            parts.append(_LEN1[nk] if nk < 128 else _varint(nk))
            parts.append(kcell)
            parts.append(_LEN1[nv] if nv < 128 else _varint(nv))
            parts.append(vcell)
        self.subcells[i] = new_sub
        self.kindex[i] = new_kindex
        joined = b"".join(parts)
        have = self.cells[i]
        if have is not None and have == joined:
            counters.cells_reused += 1
        else:
            self.cells[i] = joined
            self.canon_cells[i] = None

    def _capture_seq(self, i: int, live: Any, counters: Any) -> None:
        # composite-cell wire format: varint(n), then per element
        # varint(len(cell)) cell (see _capture_map)
        if live.__class__ is not list:
            raise CodecError(f"seq field {self.schema[i].name} is not a list")
        sub = self.subcells.get(i) or []
        enc = self._enc
        nsub = len(sub)
        new_sub: List[bytes] = []
        n = len(live)
        parts: List[bytes] = [_LEN1[n] if n < 128 else _varint(n)]
        for j, v in enumerate(live):
            cell = enc.cell(v)
            if j < nsub and sub[j] == cell:
                cell = sub[j]
                counters.cells_reused += 1
                counters.bytes_reused += len(cell)
            else:
                counters.cells_encoded += 1
                counters.bytes_serialized += len(cell)
            new_sub.append(cell)
            nc = len(cell)
            parts.append(_LEN1[nc] if nc < 128 else _varint(nc))
            parts.append(cell)
        self.subcells[i] = new_sub
        joined = b"".join(parts)
        have = self.cells[i]
        if have is not None and have == joined:
            counters.cells_reused += 1
        else:
            self.cells[i] = joined
            self.canon_cells[i] = None

    def canon_capture(
        self, proc: Any, cells: Tuple[bytes, ...], counters: Any
    ) -> Tuple[bytes, ...]:
        """The canonical-variant cells for a strict capture of ``proc``.

        Fields without a ``canon`` mask share the strict cell by
        reference; masked fields encode the transformed value, cached
        until the strict cell changes (``capture`` clears the slot).
        """
        out = list(cells)
        for i, f in enumerate(self.schema):
            if f.canon is None:
                continue
            cached = self.canon_cells[i]
            if cached is not None:
                counters.cells_reused += 1
                counters.bytes_reused += len(cached)
                out[i] = cached
                continue
            live = getattr(proc, f.name)
            if f.kind == SEQ:
                masked: Any = [f.canon(x) for x in live]
            else:
                masked = f.canon(live)
            # canon cells are fingerprint leaves only (hashed, never
            # decoded), so a plain whole-value encoding suffices
            cell = self._enc.cell(masked)
            counters.cells_encoded += 1
            counters.bytes_serialized += len(cell)
            self.canon_cells[i] = cell
            out[i] = cell
        return tuple(out)

    # -- decoding ----------------------------------------------------------

    def decode_field(self, i: int, cell: bytes) -> Any:
        """Decode one non-const field cell, refreshing the cached cell.

        The decoded value goes onto the live process and may be mutated
        there — that is fine, because change detection re-encodes and
        compares bytes instead of aliasing the decoded object.
        """
        f = self.schema[i]
        if f.kind == MAP:
            return self._decode_map(i, cell, None)
        if f.kind == SEQ:
            return self._decode_seq(i, cell, None)
        dec = self._dec
        dec.buf = cell
        dec.pos = 0
        v = dec.decode()
        self.cells[i] = cell
        self.canon_cells[i] = None
        return v

    def decode_field_delta(
        self, i: int, cell: bytes, live_val: Any, counters: Any
    ) -> Any:
        """Decode one field cell as a delta against the live value.

        Only valid when the ledger's caches mirror the live component
        (the executor's tier-2 restore guard): map/seq entries whose
        cached bytes equal the snapshot's slice reuse the *live* value
        object instead of decoding — sound because equal canonical
        bytes imply codec-equal values, and the replaced container
        drops the live reference.  ``bytes_restored`` is charged only
        for the slices actually decoded, making the restore ledger
        O(delta) too.
        """
        f = self.schema[i]
        if f.kind == MAP:
            if live_val.__class__ is dict:
                return self._decode_map(i, cell, live_val, counters)
            return self._decode_map(i, cell, None, counters)
        if f.kind == SEQ:
            if live_val.__class__ is list:
                return self._decode_seq(i, cell, live_val, counters)
            return self._decode_seq(i, cell, None, counters)
        counters.bytes_restored += len(cell)
        dec = self._dec
        dec.buf = cell
        dec.pos = 0
        v = dec.decode()
        self.cells[i] = cell
        self.canon_cells[i] = None
        return v

    def _decode_map(
        self, i: int, cell: bytes, live: Optional[Dict], counters: Any = None
    ) -> Any:
        sub = self.subcells.get(i) if live is not None else None
        kindex = self.kindex.get(i) if live is not None else None
        dec = self._dec
        n, pos = _read_varint(cell, 0)
        out: Dict[Any, Any] = {}
        new_sub: Dict[Any, Tuple[bytes, bytes]] = {}
        new_kindex: Dict[bytes, Any] = {}
        restored = 0
        for _ in range(n):
            ln, pos = _read_varint(cell, pos)
            end = pos + ln
            kcell = cell[pos:end]
            pos = end
            ln, pos = _read_varint(cell, pos)
            end = pos + ln
            vcell = cell[pos:end]
            pos = end
            k = _MISSING if kindex is None else kindex.get(kcell, _MISSING)
            if k is not _MISSING:
                old = sub.get(k)  # type: ignore[union-attr]
                lv = live.get(k, _MISSING)  # type: ignore[union-attr]
                if old is not None and lv is not _MISSING and old[1] == vcell:
                    # unchanged entry: reuse the live value object and
                    # the cached byte objects
                    out[k] = lv
                    kcell, vcell = old
                    new_sub[k] = old
                    new_kindex[kcell] = k
                    continue
            else:
                dec.buf = kcell
                dec.pos = 0
                k = dec.decode()
                restored += len(kcell)
            dec.buf = vcell
            dec.pos = 0
            out[k] = dec.decode()
            restored += len(vcell)
            new_sub[k] = (kcell, vcell)
            new_kindex[kcell] = k
        if counters is not None:
            counters.bytes_restored += restored
        self.subcells[i] = new_sub
        self.kindex[i] = new_kindex
        self.cells[i] = cell
        self.canon_cells[i] = None
        return out

    def _decode_seq(
        self, i: int, cell: bytes, live: Optional[List], counters: Any = None
    ) -> Any:
        sub = self.subcells.get(i) if live is not None else None
        nlive = len(live) if live is not None else 0
        if sub is not None and len(sub) != nlive:
            sub = None
        dec = self._dec
        n, pos = _read_varint(cell, 0)
        out: List[Any] = []
        new_sub: List[bytes] = []
        restored = 0
        for j in range(n):
            ln, pos = _read_varint(cell, pos)
            end = pos + ln
            vcell = cell[pos:end]
            pos = end
            if sub is not None and j < nlive and sub[j] == vcell:
                out.append(live[j])  # type: ignore[index]
                new_sub.append(sub[j])
                continue
            dec.buf = vcell
            dec.pos = 0
            out.append(dec.decode())
            restored += len(vcell)
            new_sub.append(vcell)
        if counters is not None:
            counters.bytes_restored += restored
        self.subcells[i] = new_sub
        self.cells[i] = cell
        self.canon_cells[i] = None
        return out

    def decode_component(self, cells: Sequence[bytes]) -> Any:
        """Materialize a fresh process from a full cell tuple.

        Const values are shared from the ledger (the sharing is the
        const contract); every other field decodes fresh.
        """
        state: Dict[str, Any] = {}
        for i, f in enumerate(self.schema):
            if f.kind == CONST:
                state[f.name] = self.consts[i]
            else:
                state[f.name] = self.decode_field(i, cells[i])
        proc = object.__new__(self.cls)
        proc.__setstate__(state)
        return proc


def ledger_from_cells(clsref: str, pid: str, cells: Sequence[bytes]) -> ComponentLedger:
    """Rebuild a ledger for a shipped component (cross-process restore).

    The const cells inside the shipped tuple are decoded against the
    class-level table first (they were encoded in isolated mode against
    exactly that table); the full table then derives the same way it
    did on the encoding side.
    """
    module, qualname = clsref.split(":", 1)
    cls = _resolve_class(module, qualname)
    schema = collect_schema(cls)
    if schema is None:
        raise CodecError(f"{cls.__qualname__} declares no codec_schema")
    class_statics = collect_statics(cls)
    base_map = _class_statics_map(class_statics, pid)
    base_seq: List[str] = [""] * len(base_map)
    for s, i in base_map.items():
        base_seq[i] = s
    const_vals = []
    const_cells = []
    for i, f in enumerate(schema):
        if f.kind == CONST:
            const_vals.append(decode_cell(cells[i], base_seq))
            const_cells.append(cells[i])
    ledger = object.__new__(ComponentLedger)
    ledger._init_core(cls, schema, pid, const_vals)
    ci = 0
    for i, f in enumerate(schema):
        if f.kind == CONST:
            ledger.cells[i] = const_cells[ci]
            ledger.canon_cells[i] = const_cells[ci]
            ledger.consts[i] = const_vals[ci]
            ci += 1
    return ledger


def cells_digest(cells: Sequence[bytes], hasher_factory) -> bytes:
    """Merkle-style combine of a component's field cells.

    Length-framed so cell boundaries stay unambiguous; the per-field
    leaves are the cells themselves (already canonical bytes), so the
    combine is one C-speed hash over reused buffers.
    """
    h = hasher_factory()
    for cell in cells:
        h.update(len(cell).to_bytes(8, "little"))
        h.update(cell)
    return h.digest()
