"""Command-line interface.

::

    python -m repro list                         # the protocol zoo
    python -m repro theorem fastclaim            # run Theorem 1
    python -m repro theorem fastclaim --general --servers 3 --objects 4
    python -m repro table1                       # regenerate Table 1
    python -m repro figure 3                     # regenerate a figure
    python -m repro workload wren --txns 100     # run + characterize
    python -m repro check cops_snow              # consistency spot-check
    python -m repro explore fastclaim --por      # schedule-space search

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _objects(n: int) -> tuple:
    return tuple(f"X{i}" for i in range(n))


def cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.protocols import REGISTRY

    rows = []
    for name in sorted(REGISTRY):
        info = REGISTRY[name]
        paper = info.paper_row
        rows.append(
            [
                name,
                info.title,
                f"{paper.rounds}/{paper.values}/{paper.nonblocking}",
                "yes" if info.supports_wtx else "no",
                info.consistency,
            ]
        )
    print(
        format_table(
            ["name", "system", "R/V/N (paper)", "WTX", "consistency"], rows
        )
    )
    return 0


def cmd_theorem(args: argparse.Namespace) -> int:
    if args.general:
        from repro.core import check_impossibility_general

        verdict = check_impossibility_general(
            args.protocol,
            objects=_objects(args.objects),
            n_servers=args.servers,
            replication=args.replication,
            max_k=args.max_k,
            **_proto_params(args),
        )
    else:
        from repro.core import check_impossibility

        verdict = check_impossibility(
            args.protocol, max_k=args.max_k, **_proto_params(args)
        )
    print(verdict.describe())
    if verdict.fast_report is not None:
        print(verdict.fast_report.describe())
    return 0 if verdict.consistent_with_theorem else 1


def _proto_params(args: argparse.Namespace) -> dict:
    params = {}
    if getattr(args, "sync_hops", None) is not None:
        params["sync_hops"] = args.sync_hops
    if getattr(args, "epsilon", None) is not None:
        params["epsilon"] = args.epsilon
    if getattr(args, "sync_every", None) is not None:
        params["sync_every"] = args.sync_every
    return params


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import characterize, render_table1
    from repro.protocols import build_system, protocol_names
    from repro.workloads import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        n_txns=args.txns,
        read_ratio=args.read_ratio,
        read_size=(2, 3),
        seed=args.seed,
    )
    chars = []
    for name in sorted(protocol_names()):
        system = build_system(
            name, objects=_objects(args.objects), n_servers=args.servers
        )
        hist = run_workload(system, spec)
        chars.append(characterize(system, hist))
        print(f"  measured {name} ({len(hist.records)} txns)", file=sys.stderr)
    print(render_table1(chars, include_unimplemented=args.all_rows))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis import figure1, figure2, figure3

    fig = {1: figure1, 2: figure2, 3: figure3}[args.number]
    kwargs = {}
    if args.number == 3:
        kwargs["max_k"] = args.max_k
    print(fig(args.protocol, **kwargs))
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.analysis import characterize
    from repro.analysis.tables import format_table
    from repro.consistency import check_history
    from repro.protocols import build_system
    from repro.workloads import WorkloadSpec, run_workload

    system = build_system(
        args.protocol,
        objects=_objects(args.objects),
        n_servers=args.servers,
        **_proto_params(args),
    )
    spec = WorkloadSpec(
        n_txns=args.txns,
        read_ratio=args.read_ratio,
        read_size=(2, 3),
        seed=args.seed,
    )
    hist = run_workload(system, spec)
    ch = characterize(system, hist)
    row = ch.row()
    print(
        format_table(
            list(row.keys()),
            [list(row.values())],
            title=f"{args.protocol}: {len(hist.records)} transactions",
        )
    )
    print(
        f"avg ROT latency: {ch.avg_rot_latency:.1f} events; "
        f"value/meta bytes per ROT: {ch.avg_value_bytes:.0f}/"
        f"{ch.avg_metadata_bytes:.0f}"
    )
    report = check_history(hist, level=system.info.consistency)
    print(report.describe())
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import Store
    from repro.analysis import render_spacetime

    store = Store(
        protocol=args.protocol,
        objects=_objects(args.objects),
        n_servers=args.servers,
        clients=("w", "r"),
        seed=args.seed,
        **_proto_params(args),
    )
    mark = store.system.sim.trace.mark()
    writes = {f"X{i}": f"v{i}@w" for i in range(min(args.objects, 2))}
    try:
        store.write("w", writes)
    except Exception:
        for obj, val in writes.items():
            store.write("w", {obj: val})
    store.settle()
    store.read("r", list(_objects(args.objects))[:2])
    print(
        render_spacetime(
            store.system.sim.trace,
            pids=("w", "r") + tuple(store.system.service_pids),
            start=mark,
        )
    )
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.core.explore import explore_write_read_race

    result = explore_write_read_race(
        args.protocol,
        max_depth=args.max_depth,
        max_states=args.max_states,
        checker=args.checker,
        strategy=args.strategy,
        por=args.por,
        workers=args.workers,
        incremental=False if args.batch_checker else None,
        checker_oracle=args.checker_oracle,
        per_worker_budget=args.per_worker_budget,
        **_proto_params(args),
    )
    print(result.describe())
    return 1 if result.violation_found else 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro import Store

    store = Store(
        protocol=args.protocol,
        objects=_objects(args.objects),
        n_servers=args.servers,
        seed=args.seed,
        **_proto_params(args),
    )
    store.write("c0", {"X0": "v1@c0"})
    store.read("c1", ["X0", "X1"])
    store.write("c1", {"X1": "v2@c1"})
    store.read("c2", ["X0", "X1"])
    report = store.check_consistency(exact=True)
    print(report.describe())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of 'Distributed Transactional Systems "
            "Cannot Be Fast' (SPAA 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the protocol zoo").set_defaults(fn=cmd_list)

    t = sub.add_parser("theorem", help="run the impossibility check")
    t.add_argument("protocol")
    t.add_argument("--max-k", type=int, default=6)
    t.add_argument("--general", action="store_true", help="Theorem 2 engine")
    t.add_argument("--servers", type=int, default=3)
    t.add_argument("--objects", type=int, default=3)
    t.add_argument("--replication", type=int, default=1)
    t.add_argument("--sync-hops", type=int, default=None)
    t.add_argument("--epsilon", type=int, default=None)
    t.add_argument("--sync-every", type=int, default=None)
    t.set_defaults(fn=cmd_theorem)

    tb = sub.add_parser("table1", help="regenerate Table 1")
    tb.add_argument("--txns", type=int, default=120)
    tb.add_argument("--read-ratio", type=float, default=0.7)
    tb.add_argument("--seed", type=int, default=11)
    tb.add_argument("--servers", type=int, default=2)
    tb.add_argument("--objects", type=int, default=4)
    tb.add_argument("--all-rows", action="store_true",
                    help="include the paper's unimplemented rows")
    tb.set_defaults(fn=cmd_table1)

    f = sub.add_parser("figure", help="regenerate a figure (1, 2 or 3)")
    f.add_argument("number", type=int, choices=(1, 2, 3))
    f.add_argument("--protocol", default=None)
    f.add_argument("--max-k", type=int, default=6)
    f.set_defaults(fn=cmd_figure)

    w = sub.add_parser("workload", help="run a workload and characterize")
    w.add_argument("protocol")
    w.add_argument("--txns", type=int, default=100)
    w.add_argument("--read-ratio", type=float, default=0.7)
    w.add_argument("--seed", type=int, default=0)
    w.add_argument("--servers", type=int, default=2)
    w.add_argument("--objects", type=int, default=4)
    w.add_argument("--sync-hops", type=int, default=None)
    w.add_argument("--epsilon", type=int, default=None)
    w.add_argument("--sync-every", type=int, default=None)
    w.set_defaults(fn=cmd_workload)

    tr = sub.add_parser("trace", help="space-time diagram of a small scenario")
    tr.add_argument("protocol")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--servers", type=int, default=2)
    tr.add_argument("--objects", type=int, default=2)
    tr.add_argument("--sync-hops", type=int, default=None)
    tr.add_argument("--epsilon", type=int, default=None)
    tr.add_argument("--sync-every", type=int, default=None)
    tr.set_defaults(fn=cmd_trace)

    e = sub.add_parser(
        "explore",
        help="exhaustively explore the write/read-race schedule space",
    )
    e.add_argument("protocol")
    e.add_argument("--strategy", choices=("dfs", "bfs", "random"), default="dfs")
    e.add_argument("--por", dest="por", action="store_true", default=False,
                   help="partial-order reduction (POR-safe protocols only)")
    e.add_argument("--no-por", dest="por", action="store_false")
    e.add_argument("--workers", type=int, default=1,
                   help="parallel frontier worker processes (work-stealing)")
    e.add_argument("--per-worker-budget", action="store_true",
                   help="give each worker the full --max-states budget "
                        "(pre-stealing behaviour) instead of one global cap")
    e.add_argument("--checker", choices=("causal", "read-atomic", "sessions"),
                   default="causal")
    e.add_argument("--batch-checker", action="store_true",
                   help="force the whole-history batch scan at every leaf "
                        "instead of the incremental delta checkers")
    e.add_argument("--checker-oracle", action="store_true",
                   help="cross-check every incremental verdict against the "
                        "batch scan (slow; debugging aid)")
    e.add_argument("--max-depth", type=int, default=40)
    e.add_argument("--max-states", type=int, default=50_000)
    e.add_argument("--sync-hops", type=int, default=None)
    e.add_argument("--epsilon", type=int, default=None)
    e.add_argument("--sync-every", type=int, default=None)
    e.set_defaults(fn=cmd_explore)

    c = sub.add_parser("check", help="quick consistency spot-check")
    c.add_argument("protocol")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--servers", type=int, default=2)
    c.add_argument("--objects", type=int, default=2)
    c.add_argument("--sync-hops", type=int, default=None)
    c.add_argument("--epsilon", type=int, default=None)
    c.add_argument("--sync-every", type=int, default=None)
    c.set_defaults(fn=cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "figure" and args.protocol is None:
        args.protocol = "cops_snow" if args.number == 1 else "fastclaim"
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
