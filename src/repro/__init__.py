"""repro — an executable reproduction of

    Didona, Fatourou, Guerraoui, Wang, Zwaenepoel.
    "Distributed Transactional Systems Cannot Be Fast." SPAA 2019.

The package provides:

* :mod:`repro.sim` — the paper's asynchronous message-passing system
  model as a deterministic, snapshot-able simulator;
* :mod:`repro.txn` — transactions, histories, and the :class:`Store`
  facade;
* :mod:`repro.protocols` — seventeen protocol implementations covering
  Table 1 (COPS, COPS-SNOW, Eiger, Orbe, GentleRain, Contrarian, Wren,
  Cure, RAMP, RAMP-Small, Occult, Spanner-style, Calvin-style,
  SwiftCloud-style, the paper's N+R+W sketch, and the impossible
  "FastClaim"/"Handshake-K" strawmen), plus a geo-replicated COPS
  deployment;
* :mod:`repro.consistency` — causal-consistency, serializability and
  read-atomicity checkers;
* :mod:`repro.core` — the impossibility proof machinery made executable:
  fast-ROT property monitors, visibility probes, the paper's execution
  constructions and splices, and the Lemma 3 induction that produces
  concrete counterexample witnesses;
* :mod:`repro.workloads` and :mod:`repro.analysis` — workload generators,
  metrics, and the Table/Figure renderers behind ``benchmarks/``.
"""

from repro.txn.api import Store
from repro.txn.types import (
    BOTTOM,
    Transaction,
    TxnRecord,
    read_only_txn,
    rw_txn,
    write_only_txn,
)
from repro.protocols import build_system, protocol_names

__version__ = "1.0.0"

__all__ = [
    "Store",
    "BOTTOM",
    "Transaction",
    "TxnRecord",
    "read_only_txn",
    "rw_txn",
    "write_only_txn",
    "build_system",
    "protocol_names",
    "__version__",
]
