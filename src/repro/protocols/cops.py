"""COPS — causal consistency with dependency tracking (Lloyd et al., SOSP'11).

Table 1 row: R ≤ 2, V ≤ 2, non-blocking, **no multi-object write
transactions**, causal consistency.

Writes are single-object ``put_after`` operations carrying the client's
nearest dependencies; servers store every version with its dependency
list.  Read-only transactions use the COPS-GT two-round protocol: a
first optimistic round fetches the newest version of each object, the
client checks the returned versions against each other's dependency
lists, and — if some returned version is older than a dependency of
another — a second round fetches the precise missing versions.  Both
rounds are answered immediately (non-blocking), and each object may be
communicated at most twice (V ≤ 2).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.codec import const, mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


class CopsServer(ServerBase):
    """Versioned store; assigns ``(lamport, pid)`` timestamps to puts."""

    codec_schema = (value("lamport"),)

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.lamport = 0

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        assert req.kind == "write" and len(req.items) == 1
        item = req.items[0]
        deps: Tuple[Tuple[ObjectId, Timestamp], ...] = tuple(
            req.meta.get("deps", ())
        )
        # advance past every dependency so timestamp order refines causality
        dep_ticks = [ts[0] for _, ts in deps if ts != INITIAL_TS]
        self.lamport = max([self.lamport] + dep_ticks) + 1
        ts = (self.lamport, self.pid)
        self.install(
            Version(obj=item.obj, value=item.value, ts=ts, txid=req.txid, deps=deps)
        )
        self.queue_send(ctx, msg.src, WriteReply(txid=req.txid, kind="ack", meta={"ts": ts}))

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        wanted: Mapping[ObjectId, Timestamp] = req.meta.get("versions", {})
        entries: List[ValueEntry] = []
        for obj in req.keys:
            if obj in wanted:
                version = self.find_version(obj, wanted[obj])
                if version is None:  # pragma: no cover - dependency always local
                    version = self.latest(obj)
            else:
                version = self.latest(obj)
            entries.append(version.entry(deps=version.deps))
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=tuple(entries)))


class CopsClient(ClientBase):
    """Nearest-dependency tracking plus the two-round get_trans."""

    codec_schema = (mapf("deps"),)

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        #: nearest dependencies: newest known version per object
        self.deps: Dict[ObjectId, Timestamp] = {}

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if len(txn.writes) > 1:
            raise UnsupportedTransaction(
                "COPS supports only single-object writes (no multi-object "
                "write transactions)"
            )
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                "COPS transactions are read-only or single writes"
            )

    # -- write path ---------------------------------------------------------

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        if txn.writes:
            obj, val = txn.writes[0]
            active.state["phase"] = "write"
            active.awaiting = {self.primary(obj)}
            ctx.send(
                self.primary(obj),
                WriteRequest(
                    txid=txn.txid,
                    kind="write",
                    items=(ValueEntry(obj, val),),
                    meta={"deps": tuple(self.deps.items())},
                ),
            )
        else:
            self._round1(ctx, active)

    # -- read path -----------------------------------------------------------

    def _round1(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "round1"
        active.state["entries"] = {}
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(server, ReadRequest(txid=active.txn.txid, keys=keys))

    def _check_and_maybe_round2(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        # causal-cut check: the version returned for each object must be at
        # least as new as any dependency on that object declared by the
        # other returned versions.
        needed: Dict[ObjectId, Timestamp] = {}
        for entry in entries.values():
            for dep_obj, dep_ts in entry.meta.get("deps", ()):
                if dep_obj in entries and dep_ts > entries[dep_obj].ts:
                    if dep_obj not in needed or dep_ts > needed[dep_obj]:
                        needed[dep_obj] = dep_ts
        if not needed:
            self._complete_read(ctx, active)
            return
        groups: Dict[ProcessId, List[ObjectId]] = {}
        for obj in needed:
            groups.setdefault(self.primary(obj), []).append(obj)
        active.state["phase"] = "round2"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(
                    txid=active.txn.txid,
                    keys=tuple(keys),
                    meta={"versions": {k: needed[k] for k in keys}},
                ),
            )

    def _complete_read(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        for obj, entry in entries.items():
            active.reads[obj] = entry.value
            if entry.ts != INITIAL_TS:
                if obj not in self.deps or entry.ts > self.deps[obj]:
                    self.deps[obj] = entry.ts
        self.finish(ctx)

    # -- replies ----------------------------------------------------------------

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            # COPS-GT needs the *full* dependency set on every stored
            # version (one-level dep checks at read time are only sound if
            # dependency lists are transitively complete), so the client
            # accumulates rather than replaces.
            obj = active.txn.writes[0][0]
            self.deps[obj] = p.meta["ts"]
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
        elif isinstance(p, ReadReply):
            entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
            for entry in p.values:
                entries[entry.obj] = entry
            active.awaiting.discard(msg.src)
            if active.awaiting:
                return
            if active.state["phase"] == "round1":
                self._check_and_maybe_round2(ctx, active)
            else:
                self._complete_read(ctx, active)
