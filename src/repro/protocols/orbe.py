"""Orbe — blocking causal ROTs with vector (dependency-matrix) metadata.

Table 1 row: R = 2, V = 1, **blocking**, no WTX, causal consistency.

Per-server vector timestamps stand in for Orbe's dependency matrices.
As in GentleRain, the client pushes its dependency vector into the
snapshot; a data server defers the read until its stable vector
dominates the snapshot.  The payload cost of the vectors (O(m) per
message vs GentleRain's O(1)) is measured by the metadata benchmark.
"""

from __future__ import annotations

from repro.protocols.snapshot import (
    SimplePutClientMixin,
    SimplePutMixin,
    VectorSnapshotClient,
    VectorSnapshotServer,
)


class OrbeServer(SimplePutMixin, VectorSnapshotServer):
    pass  # vector snapshot_view / can_serve from VectorSnapshotServer


class OrbeClient(SimplePutClientMixin, VectorSnapshotClient):
    push_dependencies = True
    use_write_cache = False
