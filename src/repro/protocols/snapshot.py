"""Shared machinery for the snapshot-based protocols.

Contrarian, Wren, GentleRain, Orbe and Cure all execute read-only
transactions in two rounds:

1. the client asks a coordinator server for a snapshot timestamp;
2. the client reads every object at that snapshot.

They split into two families:

* **pre-stabilized snapshots** (Contrarian, Wren): the coordinator
  returns the *global stable frontier*, so data servers can always answer
  immediately — non-blocking — at the price of reading slightly stale
  data; the client's own fresher writes are patched in from a local
  cache (read-your-writes);
* **fresh snapshots** (GentleRain, Orbe, Cure): the snapshot includes the
  client's dependency time, which may run ahead of the stable frontier;
  a data server must then *wait* until its frontier catches up —
  blocking, the "N = no" of Table 1.

Scalar (GentleRain, Contrarian, Wren) and vector (Orbe, Cure) timestamp
variants are both provided, as is client-coordinated 2PC for the
protocols with multi-object write transactions (Wren, Cure).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.codec import const, mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.protocols.stability import StabilizingServer
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction

# ---------------------------------------------------------------------------
# servers
# ---------------------------------------------------------------------------


class SnapshotServer(StabilizingServer):
    """Server answering snapshot requests and snapshot reads.

    Subclasses choose scalar/vector snapshots and blocking/non-blocking
    service by overriding :meth:`snapshot_view`, :meth:`can_serve` and
    :meth:`version_in_snapshot`.
    """

    codec_schema = (value("deferred_reads"),)

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        #: deferred snapshot reads: list of (client, ReadRequest)
        self.deferred_reads: List[Tuple[ProcessId, ReadRequest]] = []

    # -- hooks ----------------------------------------------------------------

    def snapshot_view(self) -> Any:
        """The snapshot the coordinator hands out."""
        raise NotImplementedError

    def can_serve(self, snap: Any) -> bool:
        """Whether a read at ``snap`` may be answered now."""
        raise NotImplementedError

    def version_in_snapshot(self, obj: ObjectId, snap: Any) -> Version:
        """Newest committed version inside the snapshot."""
        raise NotImplementedError

    # -- request handling ---------------------------------------------------------

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        if req.meta.get("phase") == "snapshot":
            self.queue_send(ctx, 
                msg.src,
                ReadReply(txid=req.txid, values=(), meta={"snap": self.snapshot_view()}),
            )
            return
        snap = req.meta["at"]
        if self.can_serve(snap):
            self._serve(ctx, msg.src, req)
        else:
            self.deferred_reads.append((msg.src, req))

    def _serve(self, ctx: StepContext, client: ProcessId, req: ReadRequest) -> None:
        snap = req.meta["at"]
        entries = []
        for obj in req.keys:
            version = self.version_in_snapshot(obj, snap)
            # ship the dependency vector as metadata so readers track
            # causality transitively (identifiers only — not values)
            entries.append(version.entry(dep_vec=version.deps))
        self.queue_send(ctx, client, ReadReply(txid=req.txid, values=tuple(entries)))

    def has_deferred_work(self) -> bool:
        return bool(self.deferred_reads)

    def retry_deferred(self, ctx: StepContext) -> None:
        still: List[Tuple[ProcessId, ReadRequest]] = []
        for client, req in self.deferred_reads:
            if self.can_serve(req.meta["at"]) and not ctx.sent_to(client):
                self._serve(ctx, client, req)
            else:
                still.append((client, req))
        self.deferred_reads = still


class ScalarSnapshotServer(SnapshotServer):
    """Scalar timestamps ``(t, server)``; snapshot is an int."""

    def version_in_snapshot(self, obj: ObjectId, snap: int) -> Version:
        return self.latest(obj, pred=lambda v: v.ts == INITIAL_TS or v.ts[0] <= snap)


class VectorSnapshotServer(SnapshotServer):
    """Vector snapshots: ``{server: t}``; version origin is ``ts[1]``.

    A version is inside a vector snapshot only if its own timestamp *and
    its dependency vector* are dominated — per-component frontiers are
    not totally ordered cuts, so without the dependency check a snapshot
    could include a version while excluding its causal past (the hazard
    Orbe's dependency matrices exist to rule out; caught by our
    consistency checkers when this predicate was timestamp-only).
    """

    def version_in_snapshot(self, obj: ObjectId, snap: Mapping[str, int]) -> Version:
        def pred(v: Version) -> bool:
            if v.ts == INITIAL_TS:
                return True
            if v.ts[0] > snap.get(v.ts[1], 0):
                return False
            return all(snap.get(s, 0) >= t for s, t in v.deps)

        return self.latest(obj, pred=pred)

    def snapshot_view(self) -> Dict[str, int]:
        return self.stable_vector()

    def can_serve(self, snap: Mapping[str, int]) -> bool:
        vec = self.stable_vector()
        return all(vec.get(s, 0) >= t for s, t in snap.items())


class SimplePutMixin:
    """Single-object, immediately visible writes (no write transactions)."""

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        assert req.kind == "write" and len(req.items) == 1
        item = req.items[0]
        self.observe_clock(int(req.meta.get("client_ts", 0)))
        ts = (self.clock, self.pid)
        self.install(
            Version(
                obj=item.obj,
                value=item.value,
                ts=ts,
                txid=req.txid,
                deps=tuple(req.meta.get("dep_vec", ())),
            )
        )
        self._dirty = True
        self.queue_send(ctx, msg.src, WriteReply(txid=req.txid, kind="ack", meta={"ts": ts}))


class TwoPCMixin:
    """Client-coordinated two-phase commit for write-only transactions.

    Prepared-but-uncommitted transactions hold the local stable frontier
    down (``local_stable``), which is what makes handed-out snapshots safe.
    """

    codec_schema = (mapf("prepared"), mapf("_dep_vecs"), mapf("_siblings"))

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: txid -> (items, prepare_ts)
        self.prepared: Dict[str, Tuple[Tuple[ValueEntry, ...], int]] = {}
        #: txid -> dependency vector staged at prepare time
        self._dep_vecs: Dict[str, Tuple] = {}
        #: txid -> sibling shards of the transaction, staged at prepare
        self._siblings: Dict[str, Tuple] = {}

    def local_stable(self) -> int:
        base = self.clock
        if self.prepared:
            base = min(base, min(t for _, t in self.prepared.values()) - 1)
        return base

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        if req.kind == "prepare":
            self.observe_clock(int(req.meta.get("client_ts", 0)))
            prepare_ts = self.clock
            self.prepared[req.txid] = (req.items, prepare_ts)
            self._dep_vecs[req.txid] = tuple(req.meta.get("dep_vec", ()))
            self._siblings[req.txid] = tuple(req.meta.get("siblings", ()))
            self._dirty = True
            self.queue_send(ctx, 
                msg.src,
                WriteReply(txid=req.txid, kind="prepared", meta={"ts": prepare_ts}),
            )
        elif req.kind == "commit":
            commit_ts = int(req.meta["commit_ts"])
            items, _ = self.prepared.pop(req.txid)
            deps = list(self._dep_vecs.pop(req.txid, ()))
            # atomic visibility under vector snapshots: a snapshot that
            # includes this shard of the transaction must include every
            # sibling shard — encode the whole commit vector as deps
            for sib in self._siblings.pop(req.txid, ()):
                if sib != self.pid:
                    deps.append((sib, commit_ts))
            deps = tuple(deps)
            self.observe_clock(commit_ts)
            for item in items:
                self.install(
                    Version(
                        obj=item.obj,
                        value=item.value,
                        ts=(commit_ts, self.pid),
                        txid=req.txid,
                        deps=deps,
                    )
                )
            self._dirty = True
            self.queue_send(ctx, 
                msg.src,
                WriteReply(
                    txid=req.txid, kind="committed", meta={"ts": (commit_ts, self.pid)}
                ),
            )
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: write kind {req.kind}")


# ---------------------------------------------------------------------------
# clients
# ---------------------------------------------------------------------------


class SnapshotClient(ClientBase):
    """Two-round snapshot ROTs with protocol hooks.

    Subclasses set :attr:`push_dependencies` (whether the client folds its
    own dependency time into the snapshot — the blocking family) and
    :attr:`use_write_cache` (read-your-writes patching — the
    pre-stabilized family), and implement the write path.
    """

    push_dependencies = False
    use_write_cache = False

    codec_schema = (value("dep_ts"), value("last_snap"), mapf("write_cache"))

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.dep_ts: int = 0
        self.last_snap: int = 0
        #: own writes, for read-your-writes patching
        self.write_cache: Dict[ObjectId, ValueEntry] = {}

    # -- timestamp bookkeeping (overridden by the vector variant) ---------------

    def note_ts(self, ts: Timestamp) -> None:
        self.dep_ts = max(self.dep_ts, ts[0])

    def note_deps(self, entry: ValueEntry) -> None:
        """Absorb an entry's dependency metadata (vector variant only)."""
        return None

    def client_ts_meta(self) -> int:
        return self.dep_ts

    def dep_meta(self) -> Tuple:
        """Dependency vector attached to writes (vector variant only)."""
        return ()

    # -- read path -------------------------------------------------------------

    def begin_read(self, ctx: StepContext, active: ActiveTxn) -> None:
        coordinator = self.primary(active.txn.read_set[0])
        active.state["phase"] = "snapshot"
        active.awaiting = {coordinator}
        active.round += 1
        ctx.send(
            coordinator,
            ReadRequest(txid=active.txn.txid, keys=(), meta={"phase": "snapshot"}),
        )

    def _choose_snapshot(self, server_snap: Any) -> Any:
        snap = max(int(server_snap), self.last_snap)
        if self.push_dependencies:
            snap = max(snap, self.dep_ts)
        self.last_snap = snap
        return snap

    def _start_round2(self, ctx: StepContext, active: ActiveTxn, snap: Any) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "read"
        active.state["snap"] = snap
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server, ReadRequest(txid=active.txn.txid, keys=keys, meta={"at": snap})
            )

    def _absorb_entry(self, active: ActiveTxn, entry: ValueEntry) -> None:
        chosen = entry
        if self.use_write_cache:
            cached = self.write_cache.get(entry.obj)
            if cached is not None and cached.ts > entry.ts:
                chosen = cached
        active.reads[entry.obj] = chosen.value
        if chosen.ts != INITIAL_TS:
            self.note_ts(chosen.ts)
            self.note_deps(chosen)

    # -- message dispatch ------------------------------------------------------

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, ReadReply):
            phase = active.state.get("phase")
            if phase == "snapshot":
                active.awaiting.discard(msg.src)
                if not active.awaiting:
                    self._start_round2(ctx, active, self._choose_snapshot(p.meta["snap"]))
            elif phase == "read":
                for entry in p.values:
                    self._absorb_entry(active, entry)
                active.awaiting.discard(msg.src)
                if not active.awaiting:
                    self.finish(ctx)
        elif isinstance(p, WriteReply):
            self.handle_write_reply(ctx, active, msg, p)

    # -- write path hooks -----------------------------------------------------------

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        if active.txn.is_read_only:
            self.begin_read(ctx, active)
        else:
            self.begin_write(ctx, active)

    def begin_write(self, ctx: StepContext, active: ActiveTxn) -> None:
        raise NotImplementedError

    def handle_write_reply(
        self, ctx: StepContext, active: ActiveTxn, msg: Message, reply: WriteReply
    ) -> None:
        raise NotImplementedError


class VectorSnapshotClient(SnapshotClient):
    """Snapshot client variant with vector timestamps (Orbe, Cure)."""

    codec_schema = (mapf("dep_vec"), mapf("last_snap_vec"))

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.dep_vec: Dict[str, int] = {}
        self.last_snap_vec: Dict[str, int] = {}

    def note_ts(self, ts: Timestamp) -> None:
        t, origin = ts[0], ts[1]
        if t > self.dep_vec.get(origin, 0):
            self.dep_vec[origin] = t

    def note_deps(self, entry: ValueEntry) -> None:
        # transitive dependency tracking: a value's causal past becomes
        # part of the reader's causal past
        for s, t in entry.meta.get("dep_vec", ()):
            if t > self.dep_vec.get(s, 0):
                self.dep_vec[s] = t

    def client_ts_meta(self) -> int:
        return max(self.dep_vec.values(), default=0)

    def dep_meta(self) -> Tuple:
        return tuple(sorted(self.dep_vec.items()))

    def _choose_snapshot(self, server_snap: Mapping[str, int]) -> Dict[str, int]:
        snap = dict(self.last_snap_vec)
        for s, t in server_snap.items():
            snap[s] = max(snap.get(s, 0), t)
        if self.push_dependencies:
            for s, t in self.dep_vec.items():
                snap[s] = max(snap.get(s, 0), t)
        self.last_snap_vec = dict(snap)
        return snap


class SimplePutClientMixin:
    """Single-object write path for the no-WTX protocols."""

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if len(txn.writes) > 1:
            raise UnsupportedTransaction(
                f"{type(self).__name__[:-6]} supports only single-object writes"
            )
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction("transactions are read-only or single writes")

    def begin_write(self, ctx: StepContext, active: ActiveTxn) -> None:
        obj, val = active.txn.writes[0]
        active.awaiting = {self.primary(obj)}
        ctx.send(
            self.primary(obj),
            WriteRequest(
                txid=active.txn.txid,
                kind="write",
                items=(ValueEntry(obj, val),),
                meta={
                    "client_ts": self.client_ts_meta(),
                    "dep_vec": self.dep_meta(),
                },
            ),
        )

    def handle_write_reply(self, ctx, active, msg, reply) -> None:
        ts = reply.meta["ts"]
        obj, val = active.txn.writes[0]
        self.note_ts(ts)
        if self.use_write_cache:
            self.write_cache[obj] = ValueEntry(obj, val, ts=ts, txid=active.txn.txid)
        active.awaiting.discard(msg.src)
        if not active.awaiting:
            self.finish(ctx)


class TwoPCClientMixin:
    """Client-coordinated 2PC write path (write-only transactions)."""

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                f"{type(self).__name__[:-6]} supports read-only and write-only "
                "transactions"
            )

    def begin_write(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups: Dict[ProcessId, List[ValueEntry]] = {}
        for obj, val in active.txn.writes:
            groups.setdefault(self.primary(obj), []).append(ValueEntry(obj, val))
        active.state["phase"] = "prepare"
        active.state["groups"] = {s: tuple(items) for s, items in groups.items()}
        active.state["prepare_ts"] = []
        active.awaiting = set(groups)
        participants = tuple(sorted(groups))
        for server, items in groups.items():
            ctx.send(
                server,
                WriteRequest(
                    txid=active.txn.txid,
                    kind="prepare",
                    items=tuple(items),
                    meta={
                        "client_ts": self.client_ts_meta(),
                        "dep_vec": self.dep_meta(),
                        "siblings": participants,
                    },
                ),
            )

    def handle_write_reply(self, ctx, active, msg, reply) -> None:
        if reply.kind == "prepared":
            active.state["prepare_ts"].append(int(reply.meta["ts"]))
            active.awaiting.discard(msg.src)
            if not active.awaiting and active.state["phase"] == "prepare":
                commit_ts = max(active.state["prepare_ts"])
                active.state["phase"] = "commit"
                active.awaiting = set(active.state["groups"])
                for server in active.state["groups"]:
                    ctx.send(
                        server,
                        WriteRequest(
                            txid=active.txn.txid,
                            kind="commit",
                            meta={"commit_ts": commit_ts},
                        ),
                    )
        elif reply.kind == "committed":
            ts = reply.meta["ts"]
            self.note_ts(ts)
            if self.use_write_cache:
                for item in active.state["groups"][msg.src]:
                    self.write_cache[item.obj] = ValueEntry(
                        item.obj, item.value, ts=(ts[0], msg.src), txid=active.txn.txid
                    )
            active.awaiting.discard(msg.src)
            if not active.awaiting and active.state["phase"] == "commit":
                self.finish(ctx)
