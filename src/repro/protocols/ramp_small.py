"""RAMP-Small — the constant-metadata member of the RAMP family.

RAMP-Fast (see :mod:`repro.protocols.ramp`) reads in one round in the
common case by shipping sibling metadata with every value.  RAMP-Small
makes the opposite trade: **always two rounds, constant metadata**:

1. round 1 reads the latest committed version of each object (value +
   transaction timestamp, no sibling lists);
2. the client forms the set of observed transaction timestamps and sends
   it to every server; each server answers, per object, with the newest
   version written by a transaction *in the set* — installing it from
   the prepared state on demand if the commit message is still in flight
   (the RAMP trick that keeps reads non-blocking).

Every transaction observed at one shard in round 1 is therefore fetched
whole in round 2 (sibling shards share the transaction timestamp), which
yields read atomicity with at most two values per object on the wire and
a timestamp set as the only metadata.  The write path is RAMP-Fast's.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    Timestamp,
    ValueEntry,
)
from repro.protocols.ramp import RampClient, RampServer
from repro.txn.client import ActiveTxn


class RampSmallServer(RampServer):
    """RAMP-Fast's server plus the RAMP-Small second-round resolution."""

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        if req.meta.get("small_phase") != "fetch":
            # round 1: latest committed value, timestamp only (the parent
            # would attach sibling metadata; RAMP-Small ships none)
            entries = tuple(self.latest(obj).entry() for obj in req.keys)
            self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=entries))
            return
        # round 2: resolve against the observed-transaction set
        tx_set: Dict[str, int] = dict(req.meta.get("tx_set", ()))
        entries: List[ValueEntry] = []
        for obj in req.keys:
            entries.append(self._resolve_small(obj, tx_set).entry())
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=tuple(entries)))

    def _resolve_small(self, obj: str, tx_set: Dict[str, int]):
        # install any set member still prepared here that wrote this
        # object: a timestamp in the set proves its commit
        for txid, commit_t in list(tx_set.items()):
            if txid in self.prepared and any(
                item.obj == obj for item in self.prepared[txid][0]
            ):
                self._install_txn(txid, commit_t)
        for v in reversed(self.store[obj]):
            if v.txid in tx_set:
                return v
        # no set member wrote this object: answer with the initial
        # version (NOT the latest committed — a transaction that slipped
        # in between the rounds is outside the snapshot and returning it
        # here could fracture its sibling reads)
        return self.store[obj][0]


class RampSmallClient(RampClient):
    """Two fixed rounds: optimistic read, then set-resolved fetch."""

    def _round1(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "small1"
        active.state["entries"] = {}
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(
                    txid=active.txn.txid, keys=keys, meta={"small_phase": "first"}
                ),
            )

    def _start_fetch(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[str, ValueEntry] = active.state["entries"]
        tx_set: Tuple[Tuple[str, int], ...] = tuple(
            sorted(
                {
                    (e.ts[2], e.ts[0])
                    for e in entries.values()
                    if e.ts != INITIAL_TS
                }
            )
        )
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "small2"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(
                    txid=active.txn.txid,
                    keys=keys,
                    meta={"small_phase": "fetch", "tx_set": tx_set},
                ),
            )

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if (
            active is not None
            and isinstance(p, ReadReply)
            and getattr(p, "txid", None) == active.txn.txid
            and active.state.get("phase") in ("small1", "small2")
        ):
            if active.state["phase"] == "small1":
                for entry in p.values:
                    active.state["entries"][entry.obj] = entry
                active.awaiting.discard(msg.src)
                if not active.awaiting:
                    self._start_fetch(ctx, active)
                return
            for entry in p.values:
                active.reads[entry.obj] = entry.value
                if entry.ts != INITIAL_TS:
                    self.lamport = max(self.lamport, entry.ts[0])
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
            return
        super().handle_message(ctx, msg)
