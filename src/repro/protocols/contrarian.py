"""Contrarian — non-blocking two-round causal ROTs, no write transactions.

Table 1 row: R = 2, V = 1, non-blocking, no WTX, causal consistency.

The coordinator hands out the *global stable frontier* as the snapshot,
so data servers can always answer immediately; freshness is what is
traded away.  Read-your-writes is preserved by patching the client's own
newer writes into the result from a local cache (client-side state only
— nothing extra on the wire).
"""

from __future__ import annotations

from repro.protocols.snapshot import (
    ScalarSnapshotServer,
    SimplePutClientMixin,
    SimplePutMixin,
    SnapshotClient,
)


class ContrarianServer(SimplePutMixin, ScalarSnapshotServer):
    def snapshot_view(self) -> int:
        return self.gst()

    def can_serve(self, snap: int) -> bool:
        # handed-out snapshots are pre-stabilized: always serveable
        return True


class ContrarianClient(SimplePutClientMixin, SnapshotClient):
    push_dependencies = False
    use_write_cache = True
