"""The protocol zoo.

One module per system of Table 1 that we implement, plus shared plumbing:

* :mod:`repro.protocols.base` — typed payloads, versioned server storage,
  the server base class, and the :class:`~repro.protocols.base.System`
  builder;
* :mod:`repro.protocols.registry` — name → protocol factory table with
  the paper's Table-1 row for each system.

Import :func:`repro.protocols.build_system` to construct a runnable
system for any registered protocol.
"""

from repro.protocols.base import (
    ReadRequest,
    ReadReply,
    WriteRequest,
    WriteReply,
    ServerMsg,
    ValueEntry,
    Version,
    ServerBase,
    System,
    SystemConfig,
    default_placement,
    build_system,
)
from repro.protocols.registry import REGISTRY, ProtocolInfo, get_protocol, protocol_names

__all__ = [
    "ReadRequest",
    "ReadReply",
    "WriteRequest",
    "WriteReply",
    "ServerMsg",
    "ValueEntry",
    "Version",
    "ServerBase",
    "System",
    "SystemConfig",
    "default_placement",
    "build_system",
    "REGISTRY",
    "ProtocolInfo",
    "get_protocol",
    "protocol_names",
]
