"""Stabilization (GST) machinery shared by the snapshot-based protocols.

GentleRain, Orbe, Cure, Contrarian and Wren all rest on the same idea:
servers gossip clock information and compute a *stable frontier* — a
timestamp (scalar or vector) below which no new version can ever appear.
They differ in what the frontier is made of and in whether reads are
served *at* a pre-stabilized snapshot (nonblocking: Contrarian, Wren) or
*wait* for the frontier to catch up with a client-chosen snapshot
(blocking: GentleRain, Orbe, Cure).

The gossip here is honest about the published algorithms: a server's view
of its peers' clocks lags reality, so the frontier is conservative, and
the blocking protocols really do defer replies — the source of the
"N = no" rows of Table 1.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.codec import mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import ServerBase, ServerMsg
from repro.txn.types import ObjectId


class StabilizingServer(ServerBase):
    """Server with a Lamport clock per peer view and GST gossip.

    Gossip is demand-driven: a server broadcasts its clock when its state
    changed since the last broadcast or when it has deferred work, so the
    network quiesces once nothing is blocked.
    """

    codec_schema = (
        value("clock"),
        mapf("known_clocks"),
        value("_dirty"),
        value("_respond"),
        value("_last_broadcast"),
    )

    def __init__(
        self,
        pid: ProcessId,
        objects: Sequence[ObjectId],
        peers: Sequence[ProcessId],
        placement: Mapping[ObjectId, Tuple[ProcessId, ...]],
    ):
        super().__init__(pid, objects, peers, placement)
        self.clock: int = 0
        #: latest clock value heard from each server (self included, live)
        self.known_clocks: Dict[ProcessId, int] = {p: 0 for p in self.peers}
        self._dirty = True
        self._respond = False
        self._last_broadcast = -1

    # -- clocks ---------------------------------------------------------------

    def tick(self) -> int:
        # public mutator with no in-tree caller inside a step: anyone
        # driving the clock from outside the executor (a test, a
        # scenario helper) must still invalidate the snapshot cache
        self.clock += 1
        self.mark_dirty()
        return self.clock

    def observe_clock(self, t: int) -> int:
        self.clock = max(self.clock, t) + 1
        return self.clock

    def gst(self) -> int:
        """Global stable frontier: min over the cluster of gossiped values.

        Servers gossip :meth:`local_stable`, so this is the *global stable
        time* — no version anywhere will ever appear with a timestamp at
        or below it.
        """
        if not self.known_clocks:
            return self.local_stable()
        return min(self.local_stable(), min(self.known_clocks.values()))

    def stable_vector(self) -> Dict[ProcessId, int]:
        vec = dict(self.known_clocks)
        vec[self.pid] = self.local_stable()
        return vec

    def local_stable(self) -> int:
        """The highest timestamp this server guarantees is final locally.

        Subclasses with prepared-but-uncommitted transactions override
        this to hold the frontier below pending commit timestamps.
        """
        return self.clock

    # -- gossip -----------------------------------------------------------------

    def has_deferred_work(self) -> bool:
        return False

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        if sm.kind == "clock":
            t = sm.data["clock"]
            prev = self.known_clocks.get(msg.src, 0)
            if t > prev:
                self.known_clocks[msg.src] = t
            self.observe_clock(t)
            if sm.data.get("solicit"):
                # a peer announced fresh state (or is blocked) and wants
                # the cluster's frontier view to advance: broadcast our
                # own stable once, as a *non-soliciting* message, so the
                # exchange terminates (damping).
                self._respond = True
        else:
            raise NotImplementedError(f"{self.pid}: server message {sm.kind}")

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        # the clock tracks simulated physical time (the global event
        # counter), as GentleRain-style stabilization assumes
        self.clock = max(self.clock, ctx.step_index)
        super().on_step(ctx, inbox)

    def wants_step(self) -> bool:
        return (
            super().wants_step()  # pending outbox
            or self.has_deferred_work()
            or (self._dirty and self._last_broadcast < self.local_stable())
            or self._respond
        )

    def on_tick(self, ctx: StepContext) -> None:
        self.retry_deferred(ctx)
        stable = self.local_stable()
        if self.has_deferred_work() or (self._dirty and stable > self._last_broadcast):
            # fresh local data, or blocked work chasing the frontier:
            # solicit one response round from every peer
            sent_all = True
            for peer in self.peers:
                if not ctx.sent_to(peer):
                    ctx.send(
                        peer,
                        ServerMsg(
                            kind="clock", data={"clock": stable, "solicit": True}
                        ),
                    )
                else:
                    sent_all = False
            if sent_all:
                self._last_broadcast = stable
                self._dirty = False
                self._respond = False
        elif self._respond and stable > self._last_broadcast:
            for peer in self.peers:
                if not ctx.sent_to(peer):
                    ctx.send(peer, ServerMsg(kind="clock", data={"clock": stable}))
            self._last_broadcast = stable
            self._respond = False
        else:
            self._respond = False

    def retry_deferred(self, ctx: StepContext) -> None:
        """Re-examine deferred replies; overridden by blocking protocols."""
        return None
