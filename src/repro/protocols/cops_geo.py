"""COPS-Geo — COPS as actually deployed: geo-replicated datacenters.

The flat zoo models a single cluster (one authoritative server per
object), which makes some of COPS's machinery look vestigial: within one
cluster a put is visible the moment its server applies it.  The real
COPS is **geo-replicated**: every datacenter holds a full copy of the
key space (partitioned across its local servers); clients talk only to
their *local* datacenter; writes commit locally and replicate
asynchronously; and the famous *dependency check* runs at the remote
datacenter — a replicated version becomes visible only after all its
causal dependencies are visible there.

This module implements that architecture faithfully:

* servers are named ``s{dc}p{partition}``; object X's replica set is
  one partition per datacenter (the system builder's placement);
* clients carry a home datacenter (derived from their pid hash, or the
  ``home_dcs`` param) and address only its partitions;
* a put commits at the local partition (timestamp ``(lamport, dc)``),
  acks immediately, and fans out one replication message per remote
  replica;
* a remote replica holds the version *pending* and sends ``dep_check``
  messages to the local partitions of each dependency, releasing the
  version only once every dependency is visible locally — the mechanism
  that preserves causality across datacenters, and the reason
  replicated writes have visibility *lag* (measured in the geo bench);
* read-only transactions are COPS-GT's two-round protocol against the
  home datacenter only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.codec import const, mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    ServerMsg,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


def server_pid(dc: int, partition: int) -> ProcessId:
    return f"s{dc}p{partition}"


def pid_dc(pid: ProcessId) -> int:
    """Datacenter index encoded in a server pid."""
    return int(pid[1 : pid.index("p")])


class PendingReplica:
    """A replicated version awaiting its dependency checks."""

    def __init__(self, version: Version, waiting: Set[ProcessId]):
        self.version = version
        self.waiting = waiting


class CopsGeoServer(ServerBase):
    codec_schema = (
        const("dc"),
        value("lamport"),
        mapf("pending"),
        mapf("blocked_checks"),
        value("blocked_reads"),
    )

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.dc = pid_dc(pid)
        self.lamport = 0
        #: dep-check state: txid -> PendingReplica
        self.pending: Dict[str, PendingReplica] = {}
        #: dep checks we could not yet answer affirmatively:
        #: (obj, ts) -> list of (requester, txid)
        self.blocked_checks: Dict[Tuple[ObjectId, Timestamp], List[Tuple[ProcessId, str]]] = {}
        #: exact-timestamp reads waiting for replication: (client, req)
        self.blocked_reads: List[Tuple[ProcessId, Any]] = []

    # -- placement helpers --------------------------------------------------

    def local_replica(self, obj: ObjectId) -> ProcessId:
        """The partition of *this* datacenter holding ``obj``."""
        for replica in self.placement[obj]:
            if pid_dc(replica) == self.dc:
                return replica
        raise KeyError(f"{obj} has no replica in dc{self.dc}")

    def remote_replicas(self, obj: ObjectId) -> List[ProcessId]:
        return [r for r in self.placement[obj] if pid_dc(r) != self.dc]

    # -- local write path ----------------------------------------------------

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        assert req.kind == "write" and len(req.items) == 1
        item = req.items[0]
        deps: Tuple[Tuple[ObjectId, Timestamp], ...] = tuple(req.meta.get("deps", ()))
        dep_ticks = [ts[0] for _, ts in deps if ts != INITIAL_TS]
        self.lamport = max([self.lamport] + dep_ticks) + 1
        ts = (self.lamport, f"dc{self.dc}")
        version = Version(
            obj=item.obj, value=item.value, ts=ts, txid=req.txid, deps=deps
        )
        self.install(version)
        self._release_blocked_checks(ctx, item.obj, ts)
        self.queue_send(
            ctx, msg.src, WriteReply(txid=req.txid, kind="ack", meta={"ts": ts})
        )
        for replica in self.remote_replicas(item.obj):
            self.queue_send(
                ctx,
                replica,
                ServerMsg(
                    kind="geo_replicate",
                    data={"txid": req.txid, "ts": ts, "deps": deps},
                    values=(ValueEntry(item.obj, item.value, ts=ts, txid=req.txid),),
                ),
            )

    # -- replication + dependency checks --------------------------------------

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        if sm.kind == "geo_replicate":
            entry = sm.values[0]
            deps = tuple(sm.data["deps"])
            version = Version(
                obj=entry.obj,
                value=entry.value,
                ts=tuple(sm.data["ts"]),
                txid=sm.data["txid"],
                deps=deps,
                visible=False,
            )
            self.install(version)
            self.lamport = max(self.lamport, version.ts[0])
            waiting: Set[ProcessId] = set()
            for dep_obj, dep_ts in deps:
                target = self.local_replica(dep_obj)
                if target == self.pid:
                    if not self._dep_visible(dep_obj, dep_ts):
                        # wait for our own copy of the dependency
                        waiting.add(self.pid)
                        self.blocked_checks.setdefault(
                            (dep_obj, tuple(dep_ts)), []
                        ).append((self.pid, version.txid))
                else:
                    waiting.add(target)
                    self.queue_send(
                        ctx,
                        target,
                        ServerMsg(
                            kind="geo_dep_check",
                            data={
                                "txid": version.txid,
                                "obj": dep_obj,
                                "ts": tuple(dep_ts),
                            },
                        ),
                    )
            if waiting:
                self.pending[version.txid] = PendingReplica(version, waiting)
            else:
                version.visible = True
                self._release_blocked_checks(ctx, version.obj, version.ts)
        elif sm.kind == "geo_dep_check":
            obj, ts = sm.data["obj"], tuple(sm.data["ts"])
            if self._dep_visible(obj, ts):
                self.queue_send(
                    ctx,
                    msg.src,
                    ServerMsg(kind="geo_dep_ok", data={"txid": sm.data["txid"]}),
                )
            else:
                self.blocked_checks.setdefault((obj, ts), []).append(
                    (msg.src, sm.data["txid"])
                )
        elif sm.kind == "geo_dep_ok":
            self._dep_satisfied(ctx, sm.data["txid"], msg.src)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: server message {sm.kind}")

    def _dep_visible(self, obj: ObjectId, ts: Timestamp) -> bool:
        if obj not in self.store:
            return False
        return any(
            v.visible and tuple(v.ts) == tuple(ts) for v in self.store[obj]
        )

    def _dep_satisfied(self, ctx: StepContext, txid: str, source: ProcessId) -> None:
        pending = self.pending.get(txid)
        if pending is None:
            return
        pending.waiting.discard(source)
        if not pending.waiting:
            del self.pending[txid]
            pending.version.visible = True
            self._release_blocked_checks(
                ctx, pending.version.obj, pending.version.ts
            )

    def _release_blocked_checks(
        self, ctx: StepContext, obj: ObjectId, ts: Timestamp
    ) -> None:
        """A version became visible: answer checks that waited on it."""
        key = (obj, tuple(ts))
        for requester, txid in self.blocked_checks.pop(key, []):
            if requester == self.pid:
                self._dep_satisfied(ctx, txid, self.pid)
            else:
                self.queue_send(
                    ctx,
                    requester,
                    ServerMsg(kind="geo_dep_ok", data={"txid": txid}),
                )

    # -- reads (COPS-GT, home datacenter only) -----------------------------------

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        wanted: Mapping[ObjectId, Timestamp] = req.meta.get("versions", {})
        entries: List[ValueEntry] = []
        for obj in req.keys:
            if obj in wanted:
                version = self.find_version(obj, tuple(wanted[obj]))
                if version is None or not version.visible:
                    # the precise dependency has not replicated here yet;
                    # COPS-GT blocks this (rare) fetch until it lands
                    self._defer_exact_fetch(ctx, msg.src, req, obj, wanted[obj])
                    return
            else:
                version = self.latest(obj)
            entries.append(version.entry(deps=version.deps))
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=tuple(entries)))

    def _defer_exact_fetch(self, ctx, client, req, obj, ts) -> None:
        self.blocked_reads.append((client, req))

    def wants_step(self) -> bool:
        return super().wants_step() or bool(self.blocked_reads)

    def on_tick(self, ctx: StepContext) -> None:
        blocked = self.blocked_reads
        if not blocked:
            return
        still = []
        for client, req in blocked:
            wanted = req.meta.get("versions", {})
            ready = all(
                self._dep_visible(obj, tuple(ts)) for obj, ts in wanted.items()
            )
            if ready and not ctx.sent_to(client):
                entries = []
                for obj in req.keys:
                    if obj in wanted:
                        version = self.find_version(obj, tuple(wanted[obj]))
                    else:
                        version = self.latest(obj)
                    entries.append(version.entry(deps=version.deps))
                self.queue_send(
                    ctx, client, ReadReply(txid=req.txid, values=tuple(entries))
                )
            else:
                still.append((client, req))
        self.blocked_reads = still


class CopsGeoClient(ClientBase):
    """COPS-GT client pinned to its home datacenter."""

    codec_schema = (const("home_dc"), mapf("deps"))

    def __init__(self, pid, servers, placement, n_dcs: int = 2, home_dc: Optional[int] = None):
        super().__init__(pid, servers, placement)
        if home_dc is None:
            # deterministic spread of clients across datacenters
            home_dc = sum(ord(c) for c in pid) % n_dcs
        self.home_dc = home_dc
        self.deps: Dict[ObjectId, Timestamp] = {}

    # home-datacenter addressing -------------------------------------------------

    def primary(self, obj: ObjectId) -> ProcessId:
        for replica in self.replicas(obj):
            if pid_dc(replica) == self.home_dc:
                return replica
        raise KeyError(f"{obj} has no replica in dc{self.home_dc}")

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if len(txn.writes) > 1:
            raise UnsupportedTransaction("COPS supports only single-object writes")
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction("COPS transactions are read-only or writes")

    # write path -------------------------------------------------------------------

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        if txn.writes:
            obj, val = txn.writes[0]
            active.awaiting = {self.primary(obj)}
            ctx.send(
                self.primary(obj),
                WriteRequest(
                    txid=txn.txid,
                    kind="write",
                    items=(ValueEntry(obj, val),),
                    meta={"deps": tuple(self.deps.items())},
                ),
            )
        else:
            self._round1(ctx, active)

    # read path (two-round COPS-GT) ---------------------------------------------

    def _round1(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "round1"
        active.state["entries"] = {}
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(server, ReadRequest(txid=active.txn.txid, keys=keys))

    def _check(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        needed: Dict[ObjectId, Timestamp] = {}
        for entry in entries.values():
            for dep_obj, dep_ts in entry.meta.get("deps", ()):
                if dep_obj in entries and tuple(dep_ts) > tuple(entries[dep_obj].ts):
                    if dep_obj not in needed or tuple(dep_ts) > tuple(needed[dep_obj]):
                        needed[dep_obj] = tuple(dep_ts)
        if not needed:
            self._complete(ctx, active)
            return
        groups: Dict[ProcessId, List[ObjectId]] = {}
        for obj in needed:
            groups.setdefault(self.primary(obj), []).append(obj)
        active.state["phase"] = "round2"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(
                    txid=active.txn.txid,
                    keys=tuple(keys),
                    meta={"versions": {k: needed[k] for k in keys}},
                ),
            )

    def _complete(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        for obj, entry in entries.items():
            active.reads[obj] = entry.value
            if entry.ts != INITIAL_TS:
                if obj not in self.deps or tuple(entry.ts) > tuple(self.deps[obj]):
                    self.deps[obj] = tuple(entry.ts)
        self.finish(ctx)

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            obj = active.txn.writes[0][0]
            self.deps[obj] = tuple(p.meta["ts"])
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
        elif isinstance(p, ReadReply):
            entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
            for entry in p.values:
                entries[entry.obj] = entry
            active.awaiting.discard(msg.src)
            if active.awaiting:
                return
            if active.state["phase"] == "round1":
                self._check(ctx, active)
            else:
                self._complete(ctx, active)


def geo_placement(
    objects: Sequence[ObjectId], n_dcs: int, partitions_per_dc: int
) -> Dict[ObjectId, Tuple[ProcessId, ...]]:
    """One replica per datacenter, objects round-robined over partitions."""
    placement: Dict[ObjectId, Tuple[ProcessId, ...]] = {}
    for i, obj in enumerate(objects):
        part = i % partitions_per_dc
        placement[obj] = tuple(server_pid(dc, part) for dc in range(n_dcs))
    return placement


def build_geo_system(
    objects: Sequence[ObjectId] = ("X0", "X1"),
    n_dcs: int = 2,
    partitions_per_dc: int = 2,
    clients: Sequence[ProcessId] = ("c0", "c1", "c2", "c3"),
    home_dcs: Optional[Mapping[ProcessId, int]] = None,
):
    """Construct a geo-replicated COPS deployment.

    Server pids are ``s{dc}p{partition}``; each datacenter holds one
    replica of every object.  ``home_dcs`` pins clients to datacenters
    (default: deterministic spread).  Returns a
    :class:`repro.protocols.base.System` whose ``info`` is the flat
    ``cops`` entry (same consistency level and capability flags).
    """
    from repro.protocols.base import System, SystemConfig
    from repro.protocols.registry import get_protocol
    from repro.sim.executor import Simulation

    objects = tuple(objects)
    placement = geo_placement(objects, n_dcs, partitions_per_dc)
    server_pids = tuple(
        server_pid(dc, part)
        for dc in range(n_dcs)
        for part in range(partitions_per_dc)
    )
    procs = []
    for spid in server_pids:
        owned = tuple(o for o in objects if spid in placement[o])
        procs.append(CopsGeoServer(spid, owned, server_pids, placement))
    for cpid in clients:
        home = None if home_dcs is None else home_dcs.get(cpid)
        procs.append(
            CopsGeoClient(cpid, server_pids, placement, n_dcs=n_dcs, home_dc=home)
        )
    sim = Simulation(procs)
    config = SystemConfig(
        protocol="cops_geo",
        objects=objects,
        servers=server_pids,
        clients=tuple(clients),
        placement=placement,
        params={"n_dcs": n_dcs, "partitions_per_dc": partitions_per_dc},
    )
    return System(config, sim, get_protocol("cops"))
