"""RAMP-Fast — read atomicity with non-blocking reads and write transactions.

Table 1 row: R ≤ 2, V ≤ 2, non-blocking, WTX, **read atomicity** (weaker
than causal consistency: no cross-transaction causality, only no
fractured reads).

Write transactions are two-phase: PREPARE ships each server its items
plus the transaction's sibling list; COMMIT installs them at the
transaction timestamp.  A read-only transaction optimistically reads the
latest committed version of each object; the attached sibling metadata
lets the client detect a fractured read (it saw transaction T's write to
X but an older version of sibling Y) and repair it with a second round
that fetches Y's version by exact timestamp — served from the prepared
set if the commit message has not arrived yet (RAMP's signature trick,
which keeps reads non-blocking).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.sim.codec import mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


class RampServer(ServerBase):
    codec_schema = (value("lamport"), mapf("prepared"))

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.lamport = 0
        #: txid -> (items, siblings)
        self.prepared: Dict[str, Tuple[Tuple[ValueEntry, ...], tuple]] = {}

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        if req.kind == "prepare":
            self.lamport = max(self.lamport, int(req.meta.get("client_ts", 0))) + 1
            self.prepared[req.txid] = (req.items, tuple(req.meta.get("siblings", ())))
            self.queue_send(ctx, 
                msg.src,
                WriteReply(txid=req.txid, kind="prepared", meta={"ts": self.lamport}),
            )
        elif req.kind == "commit":
            commit_t = int(req.meta["commit_ts"])
            self._install_txn(req.txid, commit_t)
            self.queue_send(ctx, 
                msg.src,
                WriteReply(
                    txid=req.txid, kind="committed", meta={"commit_ts": commit_t}
                ),
            )
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: write kind {req.kind}")

    def _install_txn(self, txid: str, commit_t: int) -> None:
        if txid not in self.prepared:
            return
        items, siblings = self.prepared.pop(txid)
        self.lamport = max(self.lamport, commit_t)
        for item in items:
            self.install(
                Version(
                    obj=item.obj,
                    value=item.value,
                    ts=(commit_t, self.pid, txid),
                    txid=txid,
                    meta={"siblings": siblings},
                )
            )

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        wanted: Mapping[ObjectId, Timestamp] = req.meta.get("versions", {})
        entries: List[ValueEntry] = []
        for obj in req.keys:
            if obj in wanted:
                ts = wanted[obj]
                version = self.find_version(obj, ts)
                if version is None:
                    # serve straight from the prepared set: the request's
                    # timestamp proves the transaction committed at ts[0]
                    self._install_txn(ts[2], ts[0])
                    version = self.find_version(obj, ts)
                if version is None:  # pragma: no cover - protocol invariant
                    version = self.latest(obj)
            else:
                version = self.latest(obj)
            entries.append(
                version.entry(siblings=version.meta.get("siblings", ()))
            )
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=tuple(entries)))


class RampClient(ClientBase):
    codec_schema = (value("lamport"),)

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.lamport = 0

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                "RAMP transactions are read-only or write-only"
            )

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        if active.txn.is_read_only:
            self._round1(ctx, active)
            return
        txn = active.txn
        groups: Dict[ProcessId, List[ValueEntry]] = {}
        for obj, val in txn.writes:
            groups.setdefault(self.primary(obj), []).append(ValueEntry(obj, val))
        siblings = tuple((obj, self.primary(obj)) for obj in txn.write_set)
        active.state["phase"] = "prepare"
        active.state["groups"] = {s: tuple(i) for s, i in groups.items()}
        active.state["prepare_ts"] = []
        active.awaiting = set(groups)
        for server, items in groups.items():
            ctx.send(
                server,
                WriteRequest(
                    txid=txn.txid,
                    kind="prepare",
                    items=tuple(items),
                    meta={"client_ts": self.lamport, "siblings": siblings},
                ),
            )

    def _round1(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "round1"
        active.state["entries"] = {}
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(server, ReadRequest(txid=active.txn.txid, keys=keys))

    def _repair(self, ctx: StepContext, active: ActiveTxn) -> None:
        """Detect fractured reads; fetch the missing sibling versions."""
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        needed: Dict[ObjectId, Timestamp] = {}
        for entry in entries.values():
            if entry.ts == INITIAL_TS:
                continue
            for sib_obj, sib_server in entry.meta.get("siblings", ()):
                if sib_obj not in entries or sib_obj == entry.obj:
                    continue
                sib_ts = (entry.ts[0], sib_server, entry.ts[2])
                if entries[sib_obj].ts < sib_ts:
                    if sib_obj not in needed or sib_ts > needed[sib_obj]:
                        needed[sib_obj] = sib_ts
        if not needed:
            self._complete(ctx, active)
            return
        groups: Dict[ProcessId, List[ObjectId]] = {}
        for obj in needed:
            groups.setdefault(self.primary(obj), []).append(obj)
        active.state["phase"] = "round2"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(
                    txid=active.txn.txid,
                    keys=tuple(keys),
                    meta={"versions": {k: needed[k] for k in keys}},
                ),
            )

    def _complete(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        for obj, entry in entries.items():
            active.reads[obj] = entry.value
            if entry.ts != INITIAL_TS:
                self.lamport = max(self.lamport, entry.ts[0])
        self.finish(ctx)

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            if p.kind == "prepared":
                active.state["prepare_ts"].append(int(p.meta["ts"]))
                active.awaiting.discard(msg.src)
                if not active.awaiting and active.state["phase"] == "prepare":
                    commit_t = max(active.state["prepare_ts"])
                    active.state["phase"] = "commit"
                    active.awaiting = set(active.state["groups"])
                    for server in active.state["groups"]:
                        ctx.send(
                            server,
                            WriteRequest(
                                txid=active.txn.txid,
                                kind="commit",
                                meta={"commit_ts": commit_t},
                            ),
                        )
            elif p.kind == "committed":
                self.lamport = max(self.lamport, int(p.meta["commit_ts"]))
                active.awaiting.discard(msg.src)
                if not active.awaiting and active.state["phase"] == "commit":
                    self.finish(ctx)
        elif isinstance(p, ReadReply):
            entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
            for entry in p.values:
                entries[entry.obj] = entry
            active.awaiting.discard(msg.src)
            if active.awaiting:
                return
            if active.state["phase"] == "round1":
                self._repair(ctx, active)
            else:
                self._complete(ctx, active)
