"""Calvin-style — deterministic transaction sequencing.

Table 1 row: R = 2, V = 1, **blocking**, WTX, strict serializability.

A dedicated sequencer process batches incoming transactions, assigns
them a global order, and forwards each transaction to the servers that
hold its objects, together with a dense per-server slot number.  Every
server executes its transactions strictly in slot order — buffering and
*deferring* any batch that arrives ahead of a gap (the blocking Table 1
records) — and sends its part of the result (read values / write acks)
directly to the client.  Because every server applies the same global
order, the execution is strictly serializable by construction.

Round counting caveat: the client performs a single send phase (to the
sequencer), but the critical path is three message hops
(client → sequencer → server → client), which is why Table 1 counts two
rounds.  The metrics module reports both the send-phase count and the
hop count; EXPERIMENTS.md reconciles them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.sim.codec import const, mapf, value
from repro.sim.messages import Message, Payload, ProcessId
from repro.sim.process import Process, StepContext
from repro.protocols.base import (
    ReadReply,
    ReadRequest,
    ServerBase,
    ServerMsg,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase
from repro.txn.types import ObjectId, Transaction


@dataclass(frozen=True)
class CalvinSubmit(Payload):
    """Client → sequencer: a whole transaction."""

    txid: str
    reads: Tuple[ObjectId, ...]
    writes: Tuple[Tuple[ObjectId, object], ...]
    client: ProcessId

    value_fields = ()  # client→server; not subject to the one-value rule


class CalvinSequencer(Process):
    """Orders all transactions; one batch message per server per step."""

    #: topology is const; the backlog churns as a whole (drained each
    #: dispatch), so it stays a plain value field
    codec_schema = (
        const("servers"),
        const("placement"),
        value("global_seq"),
        mapf("slot_counters"),
        value("backlog"),
    )

    def __init__(self, pid: ProcessId, servers: Sequence[ProcessId], placement):
        super().__init__(pid)
        self.servers = tuple(servers)
        self.placement = dict(placement)
        self.global_seq = 0
        self.slot_counters: Dict[ProcessId, int] = {s: 0 for s in self.servers}
        self.backlog: List[CalvinSubmit] = []

    def wants_step(self) -> bool:
        return bool(self.backlog)

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        for msg in inbox:
            if isinstance(msg.payload, CalvinSubmit):
                self.backlog.append(msg.payload)
            else:  # pragma: no cover - defensive
                raise TypeError(f"sequencer got {type(msg.payload).__name__}")
        if not self.backlog:
            return
        per_server: Dict[ProcessId, List[dict]] = {}
        for sub in self.backlog:
            self.global_seq += 1
            involved = sorted(
                {self.placement[o][0] for o in sub.reads}
                | {self.placement[o][0] for o, _ in sub.writes}
            )
            for server in involved:
                slot = self.slot_counters[server]
                self.slot_counters[server] = slot + 1
                per_server.setdefault(server, []).append(
                    {
                        "seq": self.global_seq,
                        "slot": slot,
                        "txid": sub.txid,
                        "reads": tuple(
                            o for o in sub.reads if self.placement[o][0] == server
                        ),
                        "writes": tuple(
                            (o, v)
                            for o, v in sub.writes
                            if self.placement[o][0] == server
                        ),
                        "client": sub.client,
                        "n_parts": len(involved),
                    }
                )
        self.backlog = []
        for server, entries in per_server.items():
            ctx.send(server, ServerMsg(kind="calvin_batch", data={"entries": entries}))


class CalvinServer(ServerBase):
    """Executes its slice of the global log strictly in slot order."""

    codec_schema = (value("next_slot"), mapf("buffered"))

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.next_slot = 0
        self.buffered: Dict[int, dict] = {}

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        assert sm.kind == "calvin_batch"
        for entry in sm.data["entries"]:
            self.buffered[entry["slot"]] = entry
        self._drain(ctx)

    def _drain(self, ctx: StepContext) -> None:
        while self.next_slot in self.buffered:
            entry = self.buffered.pop(self.next_slot)
            self.next_slot += 1
            self._execute(ctx, entry)

    def _execute(self, ctx: StepContext, entry: dict) -> None:
        txid, client, seq = entry["txid"], entry["client"], entry["seq"]
        read_entries = tuple(self.latest(obj).entry() for obj in entry["reads"])
        for obj, val in entry["writes"]:
            self.install(
                Version(obj=obj, value=val, ts=(seq, self.pid), txid=txid)
            )
        if read_entries:
            self.queue_send(
                ctx,
                client,
                ReadReply(txid=txid, values=read_entries, meta={"seq": seq}),
            )
        else:
            self.queue_send(
                ctx, client, WriteReply(txid=txid, kind="committed", meta={"seq": seq})
            )

    def handle_read(self, ctx, msg, req):  # pragma: no cover - not used
        raise TypeError("Calvin reads go through the sequencer")

    def handle_write(self, ctx, msg, req):  # pragma: no cover - not used
        raise TypeError("Calvin writes go through the sequencer")


class CalvinClient(ClientBase):
    codec_schema = (const("sequencer"),)

    def __init__(self, pid, servers, placement, sequencer: ProcessId):
        super().__init__(pid, servers, placement)
        self.sequencer = sequencer

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        involved = {self.primary(o) for o in txn.objects}
        active.awaiting = set(involved)
        active.round += 1
        ctx.send(
            self.sequencer,
            CalvinSubmit(
                txid=txn.txid,
                reads=txn.read_set,
                writes=txn.writes,
                client=self.pid,
            ),
        )

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, ReadReply):
            for entry in p.values:
                active.reads[entry.obj] = entry.value
        active.awaiting.discard(msg.src)
        if not active.awaiting:
            self.finish(ctx)
