"""Eiger-style — causal consistency with write-only transactions and
non-blocking multi-round reads.

Table 1 row (Eiger): R ≤ 3, V ≤ 2, non-blocking, WTX, causal consistency.

Write-only transactions use two-phase commit with *commit-time sibling
dependencies*: at commit, each server stores its items with a dependency
list that names both the writing client's causal past and the sibling
items of the same transaction (whose commit timestamps are computable
from the commit message).  Read-only transactions then run the COPS-GT
style check: an optimistic first round, a dependency cut check at the
client, and a second round that fetches exact missing versions.  Because
the sibling items are dependencies, the check also repairs fractured
reads of a write transaction, which is how atomic visibility is kept
without blocking.

A second-round fetch may name a version that is still *prepared* at the
target server (its commit message is in flight); the request itself
proves the commit timestamp, so the server installs the pending items
immediately and answers — non-blocking.  Our variant completes in ≤ 2
rounds (the published Eiger needs up to 3 because of its pending-
transaction indirection); the property class — more than one round,
non-blocking — is the same, and EXPERIMENTS.md records the difference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.sim.codec import mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


class EigerServer(ServerBase):
    codec_schema = (value("lamport"), mapf("pending"))

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.lamport = 0
        #: txid -> (items, deps, sibling placement) awaiting commit
        self.pending: Dict[str, Tuple[Tuple[ValueEntry, ...], tuple, tuple]] = {}

    # -- write path (2PC with commit-time sibling deps) ----------------------

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        if req.kind == "prepare":
            self.lamport = max(self.lamport, int(req.meta.get("client_ts", 0))) + 1
            self.pending[req.txid] = (
                req.items,
                tuple(req.meta.get("deps", ())),
                tuple(req.meta.get("siblings", ())),
            )
            self.queue_send(ctx, 
                msg.src,
                WriteReply(txid=req.txid, kind="prepared", meta={"ts": self.lamport}),
            )
        elif req.kind == "commit":
            commit_t = int(req.meta["commit_ts"])
            self._apply_commit(req.txid, commit_t)
            self.queue_send(ctx, 
                msg.src,
                WriteReply(txid=req.txid, kind="committed", meta={"commit_ts": commit_t}),
            )
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: write kind {req.kind}")

    def _apply_commit(self, txid: str, commit_t: int) -> None:
        if txid not in self.pending:
            return  # already installed (e.g. via a read-triggered install)
        items, client_deps, siblings = self.pending.pop(txid)
        self.lamport = max(self.lamport, commit_t)
        local_objs = {item.obj for item in items}
        for item in items:
            deps: List[Tuple[ObjectId, Timestamp]] = list(client_deps)
            for sib_obj, sib_server in siblings:
                if sib_obj not in local_objs:
                    deps.append((sib_obj, (commit_t, sib_server, txid)))
            self.install(
                Version(
                    obj=item.obj,
                    value=item.value,
                    ts=(commit_t, self.pid, txid),
                    txid=txid,
                    deps=tuple(deps),
                )
            )

    # -- read path ------------------------------------------------------------

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        wanted: Mapping[ObjectId, Timestamp] = req.meta.get("versions", {})
        entries: List[ValueEntry] = []
        for obj in req.keys:
            if obj in wanted:
                ts = wanted[obj]
                version = self.find_version(obj, ts)
                if version is None:
                    # the requested version is still prepared here: the
                    # request proves its commit timestamp, install now.
                    self._apply_commit(ts[2], ts[0])
                    version = self.find_version(obj, ts)
                if version is None:  # pragma: no cover - protocol invariant
                    version = self.latest(obj)
            else:
                version = self.latest(obj)
            entries.append(version.entry(deps=version.deps))
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=tuple(entries)))


class EigerClient(ClientBase):
    codec_schema = (mapf("deps"), value("lamport"))

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.deps: Dict[ObjectId, Timestamp] = {}
        self.lamport = 0

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                "Eiger transactions are read-only or write-only"
            )

    # -- write path -----------------------------------------------------------

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        if active.txn.is_read_only:
            self._round1(ctx, active)
            return
        txn = active.txn
        groups: Dict[ProcessId, List[ValueEntry]] = {}
        for obj, val in txn.writes:
            groups.setdefault(self.primary(obj), []).append(ValueEntry(obj, val))
        siblings = tuple((obj, self.primary(obj)) for obj in txn.write_set)
        active.state["phase"] = "prepare"
        active.state["groups"] = {s: tuple(i) for s, i in groups.items()}
        active.state["prepare_ts"] = []
        active.awaiting = set(groups)
        for server, items in groups.items():
            ctx.send(
                server,
                WriteRequest(
                    txid=txn.txid,
                    kind="prepare",
                    items=tuple(items),
                    meta={
                        "client_ts": self.lamport,
                        "deps": tuple(self.deps.items()),
                        "siblings": siblings,
                    },
                ),
            )

    # -- read rounds -------------------------------------------------------------

    def _round1(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "round1"
        active.state["entries"] = {}
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(server, ReadRequest(txid=active.txn.txid, keys=keys))

    def _check(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        needed: Dict[ObjectId, Timestamp] = {}
        for entry in entries.values():
            for dep_obj, dep_ts in entry.meta.get("deps", ()):
                if dep_obj in entries and dep_ts > entries[dep_obj].ts:
                    if dep_obj not in needed or dep_ts > needed[dep_obj]:
                        needed[dep_obj] = dep_ts
        if not needed:
            self._complete(ctx, active)
            return
        groups: Dict[ProcessId, List[ObjectId]] = {}
        for obj in needed:
            groups.setdefault(self.primary(obj), []).append(obj)
        active.state["phase"] = "round2"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(
                    txid=active.txn.txid,
                    keys=tuple(keys),
                    meta={"versions": {k: needed[k] for k in keys}},
                ),
            )

    def _complete(self, ctx: StepContext, active: ActiveTxn) -> None:
        entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
        for obj, entry in entries.items():
            active.reads[obj] = entry.value
            if entry.ts != INITIAL_TS:
                self.lamport = max(self.lamport, entry.ts[0])
                if obj not in self.deps or entry.ts > self.deps[obj]:
                    self.deps[obj] = entry.ts
        self.finish(ctx)

    # -- replies ------------------------------------------------------------------

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            if p.kind == "prepared":
                active.state["prepare_ts"].append(int(p.meta["ts"]))
                active.awaiting.discard(msg.src)
                if not active.awaiting and active.state["phase"] == "prepare":
                    commit_t = max(active.state["prepare_ts"])
                    active.state["phase"] = "commit"
                    active.state["commit_ts"] = commit_t
                    active.awaiting = set(active.state["groups"])
                    for server in active.state["groups"]:
                        ctx.send(
                            server,
                            WriteRequest(
                                txid=active.txn.txid,
                                kind="commit",
                                meta={"commit_ts": commit_t},
                            ),
                        )
            elif p.kind == "committed":
                commit_t = int(p.meta["commit_ts"])
                self.lamport = max(self.lamport, commit_t)
                active.awaiting.discard(msg.src)
                if not active.awaiting and active.state["phase"] == "commit":
                    # accumulate (full dependency set — see CopsClient)
                    for obj in active.txn.write_set:
                        self.deps[obj] = (commit_t, self.primary(obj), active.txn.txid)
                    self.finish(ctx)
        elif isinstance(p, ReadReply):
            entries: Dict[ObjectId, ValueEntry] = active.state["entries"]
            for entry in p.values:
                entries[entry.obj] = entry
            active.awaiting.discard(msg.src)
            if active.awaiting:
                return
            if active.state["phase"] == "round1":
                self._check(ctx, active)
            else:
                self._complete(ctx, active)
