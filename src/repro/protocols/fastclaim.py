"""FastClaim — the strawman that "achieves" all four properties.

FastClaim supports multi-object write transactions **and** serves
read-only transactions that are one-round, non-blocking and one-value.
By Theorem 1 no such protocol can be causally consistent, and indeed
FastClaim is not: it applies each write at each server independently,
the instant the write message arrives, with no cross-server coordination
of visibility.  A read-only transaction racing a multi-object write can
observe the write at one server and miss it (or, worse, miss one of its
causal dependencies) at another.

This is the protocol the impossibility engine (:mod:`repro.core`) is
pointed at to *materialize* the paper's contradiction: the spliced
execution γ makes a fast read return a mix of old and new values,
violating Lemma 1.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.sim.codec import value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    ReadReply,
    ReadRequest,
    ServerBase,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase
from repro.txn.types import ObjectId


class FastClaimServer(ServerBase):
    """Applies writes immediately and answers reads immediately."""

    codec_schema = (value("lamport"),)

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.lamport = 0

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        entries = tuple(self.latest(obj).entry() for obj in req.keys)
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=entries))

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        self.lamport = max(self.lamport, int(req.meta.get("ts", 0))) + 1
        for item in req.items:
            self.install(
                Version(
                    obj=item.obj,
                    value=item.value,
                    ts=(self.lamport, self.pid),
                    txid=req.txid,
                )
            )
        self.queue_send(ctx, 
            msg.src,
            WriteReply(txid=req.txid, kind="ack", meta={"ts": self.lamport}),
        )


class FastClaimClient(ClientBase):
    """One round for reads; one independent write message per server."""

    codec_schema = (value("lamport"),)

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.lamport = 0

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        if active.txn.read_set:
            self._send_reads(ctx, active)
        else:
            self._send_writes(ctx, active)

    def _send_reads(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "read"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(server, ReadRequest(txid=active.txn.txid, keys=keys))

    def _send_writes(self, ctx: StepContext, active: ActiveTxn) -> None:
        # write to every replica of each object (partial replication:
        # Theorem 2's model); reads go to the primary only, per the
        # general one-value property (Definition 5).
        groups: Dict[ProcessId, list] = {}
        for obj, val in active.txn.writes:
            for server in self.replicas(obj):
                groups.setdefault(server, []).append(ValueEntry(obj, val))
        active.state["phase"] = "write"
        active.awaiting = set(groups)
        for server, items in groups.items():
            ctx.send(
                server,
                WriteRequest(
                    txid=active.txn.txid,
                    kind="write",
                    items=tuple(items),
                    meta={"ts": self.lamport},
                ),
            )

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return  # stale reply from an abandoned round
        if isinstance(p, ReadReply):
            for entry in p.values:
                active.reads[entry.obj] = entry.value
            active.awaiting.discard(msg.src)
            if not active.awaiting and active.state["phase"] == "read":
                if active.txn.writes:
                    self._send_writes(ctx, active)
                else:
                    self.finish(ctx)
        elif isinstance(p, WriteReply):
            self.lamport = max(self.lamport, int(p.meta.get("ts", 0)))
            active.awaiting.discard(msg.src)
            if not active.awaiting and active.state["phase"] == "write":
                self.finish(ctx)
