"""The protocol registry: name → factories + paper metadata.

Each entry records the Table 1 row the paper claims for the system, so
the Table-1 benchmark can print paper-claimed and measured
characterizations side by side, plus the flags the impossibility engine
needs (does the protocol claim fast ROTs? does it support multi-object
write transactions?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.process import Process
from repro.txn.client import ClientBase


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 1, as printed in the paper."""

    rounds: str
    values: str
    nonblocking: str
    wtx: str
    consistency: str


@dataclass(frozen=True)
class ProtocolInfo:
    name: str
    title: str
    server_factory: Callable[..., Process]
    client_factory: Callable[..., ClientBase]
    supports_wtx: bool
    claims_fast_rot: bool
    consistency: str  # strongest level the implementation targets
    paper_row: PaperRow
    description: str = ""
    #: safe for the engine's partial-order reduction.  The independence
    #: relation (repro.sim.events) assumes a step reads nothing but the
    #: process's own state and drained inbox — the asynchronous model,
    #: enforced for messages/buffers by the RL4xx purity lints.  Protocols
    #: whose visibility decisions read ``ctx.step_index`` (the TrueTime /
    #: GST-stability families: a synchronized-clock assumption grafted
    #: onto the asynchronous simulator) fall outside that argument —
    #: permuting independent events shifts the clock values their
    #: branches compare — so they set this to False and the explorer
    #: refuses ``por=True``.
    por_safe: bool = True
    extras_factory: Optional[Callable[..., List[Process]]] = None
    server_param_names: Tuple[str, ...] = ()
    client_param_names: Tuple[str, ...] = ()
    #: whether clients need the extra processes' pids (e.g. a sequencer)
    client_needs_extras: bool = False

    def make_extras(self, servers, placement, params) -> List[Process]:
        if self.extras_factory is None:
            return []
        return self.extras_factory(servers, placement, params)

    def make_server(self, pid, objects, peers, placement, params, extra_pids):
        kwargs = {k: params[k] for k in self.server_param_names if k in params}
        return self.server_factory(pid, objects, peers, placement, **kwargs)

    def make_client(self, pid, servers, placement, params, extra_pids):
        kwargs = {k: params[k] for k in self.client_param_names if k in params}
        if self.client_needs_extras:
            return self.client_factory(pid, servers, placement, extra_pids[0], **kwargs)
        return self.client_factory(pid, servers, placement, **kwargs)


REGISTRY: Dict[str, ProtocolInfo] = {}


def _register(info: ProtocolInfo) -> None:
    if info.name in REGISTRY:
        raise ValueError(f"duplicate protocol {info.name}")
    REGISTRY[info.name] = info


def get_protocol(name: str) -> ProtocolInfo:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(sorted(REGISTRY))}"
        ) from None


def protocol_names() -> Tuple[str, ...]:
    return tuple(sorted(REGISTRY))


def _build_registry() -> None:
    from repro.protocols.calvin import CalvinClient, CalvinSequencer, CalvinServer
    from repro.protocols.contrarian import ContrarianClient, ContrarianServer
    from repro.protocols.cops import CopsClient, CopsServer
    from repro.protocols.cops_rw import CopsRwClient, CopsRwServer
    from repro.protocols.cops_snow import CopsSnowClient, CopsSnowServer
    from repro.protocols.cure import CureClient, CureServer
    from repro.protocols.eiger import EigerClient, EigerServer
    from repro.protocols.fastclaim import FastClaimClient, FastClaimServer
    from repro.protocols.gentlerain import GentleRainClient, GentleRainServer
    from repro.protocols.orbe import OrbeClient, OrbeServer
    from repro.protocols.ramp import RampClient, RampServer
    from repro.protocols.spanner import SpannerClient, SpannerServer
    from repro.protocols.wren import WrenClient, WrenServer

    _register(
        ProtocolInfo(
            name="cops",
            title="COPS",
            server_factory=CopsServer,
            client_factory=CopsClient,
            supports_wtx=False,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("<=2", "<=2", "yes", "no", "Causal Consistency"),
            description="dependency-tracked puts; two-round get_trans",
        )
    )
    _register(
        ProtocolInfo(
            name="cops_snow",
            title="COPS-SNOW",
            server_factory=CopsSnowServer,
            client_factory=CopsSnowClient,
            supports_wtx=False,
            claims_fast_rot=True,
            consistency="causal",
            paper_row=PaperRow("1", "1", "yes", "no", "Causal Consistency"),
            description="fast ROTs via readers checks (the N+R+V corner)",
        )
    )
    _register(
        ProtocolInfo(
            name="eiger",
            title="Eiger",
            server_factory=EigerServer,
            client_factory=EigerClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("<=3", "<=2", "yes", "yes", "Causal Consistency"),
            description="2PC-CI write txns; multi-round non-blocking reads",
        )
    )
    _register(
        ProtocolInfo(
            name="orbe",
            title="Orbe",
            server_factory=OrbeServer,
            client_factory=OrbeClient,
            supports_wtx=False,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("2", "1", "no", "no", "Causal Consistency"),
            description="vector snapshots; blocking reads",
            # visibility branches on the global step counter (the
            # synchronized-clock model) — outside the asynchronous
            # commutation argument behind the POR independence relation
            por_safe=False,
        )
    )
    _register(
        ProtocolInfo(
            name="gentlerain",
            title="GentleRain",
            server_factory=GentleRainServer,
            client_factory=GentleRainClient,
            supports_wtx=False,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("2", "1", "no", "no", "Causal Consistency"),
            description="scalar GST snapshots; blocking reads, O(1) metadata",
            # visibility branches on the global step counter (the
            # synchronized-clock model) — outside the asynchronous
            # commutation argument behind the POR independence relation
            por_safe=False,
        )
    )
    _register(
        ProtocolInfo(
            name="contrarian",
            title="Contrarian",
            server_factory=ContrarianServer,
            client_factory=ContrarianClient,
            supports_wtx=False,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("2", "1", "yes", "no", "Causal Consistency"),
            description="pre-stabilized snapshots; non-blocking two-round reads",
            # visibility branches on the global step counter (the
            # synchronized-clock model) — outside the asynchronous
            # commutation argument behind the POR independence relation
            por_safe=False,
        )
    )
    _register(
        ProtocolInfo(
            name="wren",
            title="Wren",
            server_factory=WrenServer,
            client_factory=WrenClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("2", "1", "yes", "yes", "Causal Consistency"),
            description="the N+V+W corner: stable snapshots + 2PC write txns",
            # visibility branches on the global step counter (the
            # synchronized-clock model) — outside the asynchronous
            # commutation argument behind the POR independence relation
            por_safe=False,
        )
    )
    _register(
        ProtocolInfo(
            name="cure",
            title="Cure",
            server_factory=CureServer,
            client_factory=CureClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="causal",
            paper_row=PaperRow("2", "1", "no", "yes", "Causal Consistency"),
            description="vector snapshots + 2PC write txns; blocking reads",
            # visibility branches on the global step counter (the
            # synchronized-clock model) — outside the asynchronous
            # commutation argument behind the POR independence relation
            por_safe=False,
        )
    )
    _register(
        ProtocolInfo(
            name="ramp",
            title="RAMP",
            server_factory=RampServer,
            client_factory=RampClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="read-atomic",
            paper_row=PaperRow("<=2", "<=2", "yes", "yes", "Read Atomicity"),
            description="read-atomic multi-partition transactions",
        )
    )
    from repro.protocols.occult import OccultClient, OccultServer
    from repro.protocols.ramp_small import RampSmallClient, RampSmallServer

    _register(
        ProtocolInfo(
            name="occult",
            title="Occult",
            server_factory=OccultServer,
            client_factory=OccultClient,
            supports_wtx=True,
            claims_fast_rot=False,  # rounds are variable (>= 1)
            consistency="causal",
            paper_row=PaperRow(">=1", ">=1", "yes", "yes", "Per Client Parallel SI"),
            description=(
                "master/slave shardstamps; clients repair staleness by "
                "retrying (no slowdown cascades)"
            ),
        )
    )

    _register(
        ProtocolInfo(
            name="ramp_small",
            title="RAMP-Small",
            server_factory=RampSmallServer,
            client_factory=RampSmallClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="read-atomic",
            paper_row=PaperRow("2", "<=2", "yes", "yes", "Read Atomicity"),
            description="two fixed rounds, constant metadata (the RAMP family's "
            "other trade-off)",
        )
    )
    _register(
        ProtocolInfo(
            name="spanner",
            title="Spanner",
            server_factory=SpannerServer,
            client_factory=SpannerClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="strict-serializable",
            paper_row=PaperRow("1", "1", "no", "yes", "Strict Serializability"),
            description="the R+V+W corner: TrueTime reads, locking 2PC writes",
            # TrueTime *is* a synchronized clock: commit-wait reads the
            # global step counter, so schedules do not commute
            por_safe=False,
            server_param_names=("epsilon",),
            client_param_names=("epsilon",),
        )
    )
    _register(
        ProtocolInfo(
            name="calvin",
            title="Calvin",
            server_factory=CalvinServer,
            client_factory=CalvinClient,
            supports_wtx=True,
            claims_fast_rot=False,
            consistency="strict-serializable",
            paper_row=PaperRow("2", "1", "no", "yes", "Strict Serializability"),
            description="deterministic sequencing",
            extras_factory=lambda servers, placement, params: [
                CalvinSequencer("seq0", servers, placement)
            ],
            client_needs_extras=True,
        )
    )
    _register(
        ProtocolInfo(
            name="cops_rw",
            title="COPS-RW (paper §3.4 N+R+W sketch)",
            server_factory=CopsRwServer,
            client_factory=CopsRwClient,
            supports_wtx=True,
            claims_fast_rot=False,  # one round and non-blocking, but multi-value
            consistency="causal",
            paper_row=PaperRow("1", "many", "yes", "yes", "Causal Consistency"),
            description="ships sibling and dependency values with every read",
        )
    )
    from repro.protocols.handshake import HandshakeClient, HandshakeServer
    from repro.protocols.swiftcloud import SwiftCloudClient, SwiftCloudServer

    _register(
        ProtocolInfo(
            name="swiftcloud",
            title="SwiftCloud† (different system model)",
            server_factory=SwiftCloudServer,
            client_factory=SwiftCloudClient,
            supports_wtx=True,
            claims_fast_rot=True,
            consistency="causal",
            paper_row=PaperRow("1", "1", "yes", "yes", "Causal Consistency"),
            description=(
                "fast ROTs + WTX by unbounded staleness: reads at a lazily "
                "advancing epoch — violates the minimal-progress premise "
                "(the paper's §4 loophole)"
            ),
            # epoch advancement branches on the stability clock (global
            # step counter) — same synchrony caveat as the GST family
            por_safe=False,
            client_param_names=("sync_every",),
        )
    )
    _register(
        ProtocolInfo(
            name="handshake",
            title="Handshake-K (tunable strawman)",
            server_factory=HandshakeServer,
            client_factory=HandshakeClient,
            supports_wtx=True,
            claims_fast_rot=True,
            consistency="causal",  # the *claim*; Theorem 1 refutes it
            paper_row=PaperRow("1", "1", "yes", "yes", "(impossible)"),
            description=(
                "delays visibility behind 2K server-to-server hops; the "
                "induction's depth-k specimen"
            ),
            server_param_names=("sync_hops",),
        )
    )
    _register(
        ProtocolInfo(
            name="fastclaim",
            title="FastClaim (impossible strawman)",
            server_factory=FastClaimServer,
            client_factory=FastClaimClient,
            supports_wtx=True,
            claims_fast_rot=True,
            consistency="causal",  # the *claim*; Theorem 1 refutes it
            paper_row=PaperRow("1", "1", "yes", "yes", "(impossible)"),
            description="claims all four properties; the theorem's target",
        )
    )


_build_registry()
