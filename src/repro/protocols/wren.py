"""Wren — non-blocking causal ROTs *with* multi-object write transactions.

Table 1 row: R = 2, V = 1, non-blocking, WTX, causal consistency.
This is the N+V+W corner of Section 3.4: Wren keeps write transactions
and non-blocking one-value reads by paying a second round for the
snapshot.

Writes are client-coordinated 2PC; a server's local stable frontier is
held below the prepare timestamp of any in-flight transaction, so the
global stable snapshot handed to readers can never straddle a commit.
Freshly committed writes may be above the snapshot; the client reads its
*own* recent writes from a local cache (the mechanism the paper's §3.4
describes).
"""

from __future__ import annotations

from repro.protocols.snapshot import (
    ScalarSnapshotServer,
    SnapshotClient,
    TwoPCClientMixin,
    TwoPCMixin,
)


class WrenServer(TwoPCMixin, ScalarSnapshotServer):
    def snapshot_view(self) -> int:
        return self.gst()

    def can_serve(self, snap: int) -> bool:
        return True


class WrenClient(TwoPCClientMixin, SnapshotClient):
    push_dependencies = False
    use_write_cache = True
