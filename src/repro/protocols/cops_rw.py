"""COPS-RW — the paper's N+R+W sketch (Section 3.4).

One-round, non-blocking read-only transactions **and** multi-object
write transactions, causally consistent — possible only because the
one-value property is abandoned: every stored version carries, and every
read reply ships, the values of the sibling objects written in the same
transaction plus the values of everything the transaction causally
depends on.  The client then computes, per object, the newest value
among the direct reply, the attached values, and its own causal store.

The paper: "This protocol is not efficient, as it requires to store and
communicate a prohibitively big amount of data."  The metadata benchmark
quantifies exactly that growth.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.sim.codec import mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


class CopsRwServer(ServerBase):
    codec_schema = (value("lamport"),)

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.lamport = 0

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        assert req.kind == "write"
        ts = req.meta["ts"]  # client-assigned: same timestamp at every server
        self.lamport = max(self.lamport, ts[0])
        attached = tuple(req.aux_items)
        for item in req.items:
            self.install(
                Version(
                    obj=item.obj,
                    value=item.value,
                    ts=ts,
                    txid=req.txid,
                    meta={"attached": attached},
                )
            )
        self.queue_send(ctx, msg.src, WriteReply(txid=req.txid, kind="ack", meta={"ts": ts}))

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        entries: List[ValueEntry] = []
        aux: List[ValueEntry] = []
        for obj in req.keys:
            version = self.latest(obj)
            # the attachments travel ONLY through the declared aux_values
            # field (the one-value monitor counts them there); the direct
            # entry must not smuggle them through its metadata
            entries.append(
                ValueEntry(
                    obj=version.obj,
                    value=version.value,
                    ts=version.ts,
                    txid=version.txid,
                )
            )
            aux.extend(version.meta.get("attached", ()))
        self.queue_send(ctx, 
            msg.src,
            ReadReply(txid=req.txid, values=tuple(entries), aux_values=tuple(aux)),
        )


class CopsRwClient(ClientBase):
    codec_schema = (value("lamport"), mapf("causal_store"))

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.lamport = 0
        #: the client's causal past, values included (the "prohibitive" part)
        self.causal_store: Dict[ObjectId, ValueEntry] = {}

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                "COPS-RW transactions are read-only or write-only"
            )

    def _note(self, entry: ValueEntry) -> None:
        if entry.ts == INITIAL_TS:
            return
        current = self.causal_store.get(entry.obj)
        if current is None or entry.ts > current.ts:
            self.causal_store[entry.obj] = entry
        self.lamport = max(self.lamport, entry.ts[0])

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        if txn.is_read_only:
            groups = self.partition_objects(txn.read_set)
            active.awaiting = set(groups)
            active.round += 1
            for server, keys in groups.items():
                ctx.send(server, ReadRequest(txid=txn.txid, keys=keys))
            return
        # write-only: one client-stamped write per server, carrying the
        # sibling values and the full causal store
        self.lamport += 1
        ts: Timestamp = (self.lamport, self.pid, txn.txid)
        all_items = tuple(
            ValueEntry(obj, val, ts=ts, txid=txn.txid) for obj, val in txn.writes
        )
        deps = tuple(self.causal_store.values())
        groups: Dict[ProcessId, List[ValueEntry]] = {}
        for item in all_items:
            groups.setdefault(self.primary(item.obj), []).append(item)
        active.state["ts"] = ts
        active.state["items"] = all_items
        active.awaiting = set(groups)
        for server, items in groups.items():
            siblings = tuple(i for i in all_items if i not in items)
            ctx.send(
                server,
                WriteRequest(
                    txid=txn.txid,
                    kind="write",
                    items=tuple(items),
                    aux_items=siblings + deps,
                    meta={"ts": ts},
                ),
            )

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                for item in active.state["items"]:
                    self._note(item)
                self.finish(ctx)
        elif isinstance(p, ReadReply):
            candidates = active.state.setdefault("candidates", {})
            for entry in p.values:
                candidates.setdefault(entry.obj, []).append(entry)
                self._note(entry)
            for entry in p.aux_values:
                candidates.setdefault(entry.obj, []).append(entry)
                self._note(entry)
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                for obj in active.txn.read_set:
                    pool = list(candidates.get(obj, []))
                    cached = self.causal_store.get(obj)
                    if cached is not None:
                        pool.append(cached)
                    best = max(pool, key=lambda e: e.ts)
                    active.reads[obj] = best.value
                self.finish(ctx)
