"""COPS-SNOW — fast read-only transactions, no multi-object writes.

Table 1 row: R = 1, V = 1, non-blocking, **no multi-object write
transactions**, causal consistency.  This is the N+R+V corner of
Section 3.4: the only published design that achieves fast ROTs in the
paper's system model, paying for it with single-object writes and a
write path that performs cross-server *readers checks*.

Mechanism (Lu et al., OSDI'16, adapted to the paper's model):

* every ROT has a globally unique id; when a server serves version ``v``
  of object ``X`` to ROT ``R`` it records ``R`` in ``v``'s readers set,
  and additionally in the per-object *old-readers* set if ``v`` is not
  the newest visible version;
* a write of ``x₁`` with causal dependencies ``D`` is installed
  *invisible*; the server asks each server storing a dependency for the
  ids of ROTs that read an older version of the dependency (its
  old-readers plus the readers of all versions older than the dependency);
* the union of the answers becomes ``x₁``'s ``invisible_to`` set, those
  ROT ids are added to the local old-readers set (they are now destined
  to read old versions here — the transitivity rule), and only then does
  ``x₁`` become visible and the write get acknowledged;
* a ROT ``R`` reading ``X`` receives the newest visible version whose
  ``invisible_to`` set does not contain ``R`` — always answerable
  immediately from local state: one round, one value, non-blocking.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.sim.codec import mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    ServerMsg,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


class PendingWrite:
    """A write whose readers check is in flight."""

    def __init__(self, version: Version, client: ProcessId, waiting: Set[ProcessId]):
        self.version = version
        self.client = client
        self.waiting = waiting
        self.old_readers: Set[str] = set()


class CopsSnowServer(ServerBase):
    codec_schema = (value("lamport"), mapf("old_readers"), mapf("pending"))

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        self.lamport = 0
        #: ROT ids destined to read old versions, per object
        self.old_readers: Dict[ObjectId, Set[str]] = {o: set() for o in objects}
        #: readers-check state per writing txid
        self.pending: Dict[str, PendingWrite] = {}

    # -- reads --------------------------------------------------------------------

    def _serve_version(self, obj: ObjectId, rot: str) -> Version:
        chain = self.store[obj]
        newest_visible = None
        for v in reversed(chain):
            if not v.visible:
                continue
            if newest_visible is None:
                newest_visible = v
            if rot not in v.invisible_to:
                if v is not newest_visible:
                    self.old_readers[obj].add(rot)
                v.meta.setdefault("readers", set()).add(rot)
                return v
        raise AssertionError(f"{self.pid}: no servable version of {obj}")

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        rot = req.txid
        entries = tuple(self._serve_version(obj, rot).entry() for obj in req.keys)
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=entries))

    # -- writes -------------------------------------------------------------------

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        assert req.kind == "write" and len(req.items) == 1
        item = req.items[0]
        deps: Tuple[Tuple[ObjectId, Timestamp], ...] = tuple(req.meta.get("deps", ()))
        dep_ticks = [ts[0] for _, ts in deps if ts != INITIAL_TS]
        self.lamport = max([self.lamport] + dep_ticks) + 1
        version = Version(
            obj=item.obj,
            value=item.value,
            ts=(self.lamport, self.pid),
            txid=req.txid,
            deps=deps,
            visible=False,
        )
        self.install(version)
        remote: Dict[ProcessId, List[Tuple[ObjectId, Timestamp]]] = {}
        for dep_obj, dep_ts in deps:
            owner = self.placement[dep_obj][0]
            if owner != self.pid:
                remote.setdefault(owner, []).append((dep_obj, dep_ts))
        if not remote:
            self._make_visible(ctx, version, msg.src, set())
            return
        self.pending[req.txid] = PendingWrite(version, msg.src, set(remote))
        for owner, dep_list in remote.items():
            self.queue_send(ctx, 
                owner,
                ServerMsg(
                    kind="snow_check",
                    data={"txid": req.txid, "deps": tuple(dep_list)},
                ),
            )

    def _collect_old_readers(self, deps: Sequence[Tuple[ObjectId, Timestamp]]) -> Set[str]:
        rots: Set[str] = set()
        for dep_obj, dep_ts in deps:
            if dep_obj not in self.store:
                continue
            rots |= self.old_readers[dep_obj]
            for v in self.store[dep_obj]:
                if v.ts < dep_ts:
                    rots |= v.meta.get("readers", set())
        return rots

    def _make_visible(
        self, ctx: StepContext, version: Version, client: ProcessId, rots: Set[str]
    ) -> None:
        version.invisible_to = set(rots)
        version.visible = True
        if rots:
            # transitivity: these ROTs are now destined to read old here
            self.old_readers[version.obj] |= rots
        self.queue_send(ctx, 
            client, WriteReply(txid=version.txid, kind="ack", meta={"ts": version.ts})
        )

    # -- server messages -------------------------------------------------------------

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        if sm.kind == "snow_check":
            rots = self._collect_old_readers(sm.data["deps"])
            self.queue_send(ctx, 
                msg.src,
                ServerMsg(
                    kind="snow_resp",
                    data={"txid": sm.data["txid"], "readers": tuple(sorted(rots))},
                ),
            )
        elif sm.kind == "snow_resp":
            txid = sm.data["txid"]
            pw = self.pending.get(txid)
            if pw is None:
                return
            pw.old_readers |= set(sm.data["readers"])
            pw.waiting.discard(msg.src)
            if not pw.waiting:
                del self.pending[txid]
                self._make_visible(ctx, pw.version, pw.client, pw.old_readers)
        else:
            raise NotImplementedError(f"{self.pid}: server message {sm.kind}")


class CopsSnowClient(ClientBase):
    """Single-round ROTs; single-object writes with nearest deps."""

    codec_schema = (mapf("deps"),)

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        self.deps: Dict[ObjectId, Timestamp] = {}

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if len(txn.writes) > 1:
            raise UnsupportedTransaction(
                "COPS-SNOW supports only single-object writes"
            )
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                "COPS-SNOW transactions are read-only or single writes"
            )

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        if txn.writes:
            obj, val = txn.writes[0]
            active.awaiting = {self.primary(obj)}
            ctx.send(
                self.primary(obj),
                WriteRequest(
                    txid=txn.txid,
                    kind="write",
                    items=(ValueEntry(obj, val),),
                    meta={"deps": tuple(self.deps.items())},
                ),
            )
        else:
            groups = self.partition_objects(txn.read_set)
            active.awaiting = set(groups)
            active.round += 1
            for server, keys in groups.items():
                ctx.send(server, ReadRequest(txid=txn.txid, keys=keys))

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            obj = active.txn.writes[0][0]
            self.deps = {obj: p.meta["ts"]}
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
        elif isinstance(p, ReadReply):
            for entry in p.values:
                active.reads[entry.obj] = entry.value
                if entry.ts != INITIAL_TS:
                    if entry.obj not in self.deps or entry.ts > self.deps[entry.obj]:
                        self.deps[entry.obj] = entry.ts
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
