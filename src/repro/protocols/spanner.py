"""Spanner-style — strict serializability with TrueTime; R+V+W, blocking.

Table 1 row: R = 1, V = 1, **blocking**, WTX, strict serializability.
This is the R+V+W corner of Section 3.4: one-round one-value reads and
full write transactions are kept by giving up the non-blocking property
— and by assuming tightly synchronized clocks (the
:class:`~repro.sim.clock.TrueTimeOracle`, our simulated substitution for
the GPS/atomic-clock infrastructure).

* Write and read-write transactions are coordinated server-side: the
  client submits to a coordinator which runs 2PC over the involved
  servers, acquiring exclusive locks **in sorted server order**
  (deadlock-free by resource ordering), picks
  ``commit_ts ≥ max(prepare timestamps, TT.now().latest)`` and
  *commit-waits* until ``TT.after(commit_ts)`` before installing and
  acknowledging — external consistency.
* A read-only transaction picks ``read_ts = TT.now().latest`` and sends
  a single round of reads; a server answers only once (a) its own clock
  has certainly passed ``read_ts`` and (b) no prepared-but-uncommitted
  transaction could still commit below it — otherwise the reply is
  deferred: the blocking Table 1 records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.clock import TrueTimeOracle
from repro.sim.codec import const, mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
    ServerMsg,
)
from repro.txn.client import ActiveTxn, ClientBase
from repro.txn.types import ObjectId, Transaction


@dataclass
class TwoPhaseState:
    """Coordinator-side state of one transaction."""

    txid: str
    client: ProcessId
    #: participant -> (write items, read objects) at that server
    shards: Dict[ProcessId, Tuple[Tuple[ValueEntry, ...], Tuple[ObjectId, ...]]]
    order: Tuple[ProcessId, ...]
    next_idx: int = 0
    prepare_ts: List[int] = field(default_factory=list)
    read_values: List[ValueEntry] = field(default_factory=list)
    commit_ts: Optional[int] = None
    committed_acks: Set[ProcessId] = field(default_factory=set)


@dataclass
class QueuedPrepare:
    txid: str
    objects: Tuple[ObjectId, ...]
    items: Tuple[ValueEntry, ...]
    reads: Tuple[ObjectId, ...]
    reply_to: ProcessId  # coordinator pid, or self for local acquire


class SpannerServer(ServerBase):
    #: the TrueTime oracle holds only the fixed epsilon, so it is
    #: shared by reference like the rest of the construction-time
    #: configuration
    codec_schema = (
        const("oracle"),
        mapf("locks"),
        value("lock_queue"),
        mapf("prepared_ts"),
        mapf("prepared_items"),
        mapf("coordinating"),
        value("commit_waiting"),
        value("deferred_reads"),
        value("max_ts"),
        value("_wall"),
    )

    def __init__(self, pid, objects, peers, placement, epsilon: int = 4):
        super().__init__(pid, objects, peers, placement)
        self.oracle = TrueTimeOracle(epsilon)
        self.locks: Dict[ObjectId, str] = {}
        self.lock_queue: List[QueuedPrepare] = []
        #: txid -> prepare_ts of transactions prepared (locks held) here
        self.prepared_ts: Dict[str, int] = {}
        self.prepared_items: Dict[str, Tuple[Tuple[ValueEntry, ...], Tuple[ObjectId, ...]]] = {}
        self.coordinating: Dict[str, TwoPhaseState] = {}
        self.commit_waiting: List[str] = []
        self.deferred_reads: List[Tuple[ProcessId, ReadRequest]] = []
        self.max_ts = 0
        self._wall = 0

    # -- liveness --------------------------------------------------------------

    def wants_step(self) -> bool:
        return bool(
            self.deferred_reads
            or self.commit_waiting
            or self.lock_queue
            or self.outbox
        )

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        self._wall = ctx.step_index
        super().on_step(ctx, inbox)

    def on_tick(self, ctx: StepContext) -> None:
        self._grant_locks(ctx)
        self._check_commit_waits(ctx)
        self._retry_reads(ctx)

    # -- locking ------------------------------------------------------------------

    def _try_acquire(self, qp: QueuedPrepare) -> bool:
        if any(obj in self.locks for obj in qp.objects):
            return False
        for obj in qp.objects:
            self.locks[obj] = qp.txid
        return True

    def _release(self, txid: str) -> None:
        for obj in [o for o, t in self.locks.items() if t == txid]:
            del self.locks[obj]

    def _new_prepare_ts(self) -> int:
        ts = max(self.oracle.now(self.pid, self._wall).latest, self.max_ts + 1)
        self.max_ts = ts
        return ts

    def _do_prepare(self, ctx: StepContext, qp: QueuedPrepare) -> None:
        """Locks are held; record the prepare and notify the coordinator."""
        ts = self._new_prepare_ts()
        self.prepared_ts[qp.txid] = ts
        self.prepared_items[qp.txid] = (qp.items, qp.reads)
        read_entries = tuple(self.latest(obj).entry() for obj in qp.reads)
        if qp.reply_to == self.pid:
            self._local_prepared(ctx, qp.txid, ts, read_entries)
        else:
            self.queue_send(ctx, 
                qp.reply_to,
                ServerMsg(
                    kind="sp_prepared",
                    data={"txid": qp.txid, "ts": ts},
                    values=read_entries,
                ),
            )

    def _grant_locks(self, ctx: StepContext) -> None:
        remaining: List[QueuedPrepare] = []
        for qp in self.lock_queue:
            if self._try_acquire(qp):
                self._do_prepare(ctx, qp)
            else:
                remaining.append(qp)
        self.lock_queue = remaining

    # -- coordinator role ------------------------------------------------------------

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        assert req.kind == "submit"
        shards: Dict[ProcessId, Tuple[List[ValueEntry], List[ObjectId]]] = {}
        for item in req.items:
            s = self.placement[item.obj][0]
            shards.setdefault(s, ([], []))[0].append(item)
        for obj in req.meta.get("reads", ()):
            s = self.placement[obj][0]
            shards.setdefault(s, ([], []))[1].append(obj)
        state = TwoPhaseState(
            txid=req.txid,
            client=msg.src,
            shards={
                s: (tuple(w), tuple(r)) for s, (w, r) in shards.items()
            },
            order=tuple(sorted(shards)),
        )
        self.coordinating[req.txid] = state
        self._advance_prepares(ctx, state)

    def _advance_prepares(self, ctx: StepContext, state: TwoPhaseState) -> None:
        """Send the next sequential prepare (deadlock-free lock ordering)."""
        if state.next_idx >= len(state.order):
            self._all_prepared(ctx, state)
            return
        target = state.order[state.next_idx]
        items, reads = state.shards[target]
        qp = QueuedPrepare(
            txid=state.txid,
            objects=tuple(sorted({e.obj for e in items} | set(reads))),
            items=items,
            reads=reads,
            reply_to=self.pid if target == self.pid else self.pid,
        )
        if target == self.pid:
            if self._try_acquire(qp):
                self._do_prepare(ctx, qp)
            else:
                self.lock_queue.append(qp)
        else:
            self.queue_send(ctx, 
                target,
                ServerMsg(
                    kind="sp_prepare",
                    data={
                        "txid": state.txid,
                        "objects": qp.objects,
                        "reads": reads,
                    },
                    values=items,
                ),
            )

    def _local_prepared(
        self, ctx: StepContext, txid: str, ts: int, read_entries: Tuple[ValueEntry, ...]
    ) -> None:
        state = self.coordinating[txid]
        state.prepare_ts.append(ts)
        state.read_values.extend(read_entries)
        state.next_idx += 1
        self._advance_prepares(ctx, state)

    def _all_prepared(self, ctx: StepContext, state: TwoPhaseState) -> None:
        now = self.oracle.now(self.pid, self._wall).latest
        state.commit_ts = max(state.prepare_ts + [now, self.max_ts + 1])
        self.max_ts = max(self.max_ts, state.commit_ts)
        self.commit_waiting.append(state.txid)

    def _check_commit_waits(self, ctx: StepContext) -> None:
        still: List[str] = []
        for txid in self.commit_waiting:
            state = self.coordinating[txid]
            assert state.commit_ts is not None
            if self.oracle.after(self.pid, state.commit_ts, self._wall):
                self._finalize_commit(ctx, state)
            else:
                still.append(txid)
        self.commit_waiting = still

    def _finalize_commit(self, ctx: StepContext, state: TwoPhaseState) -> None:
        for target in state.order:
            if target == self.pid:
                self._apply_commit(state.txid, state.commit_ts)
            else:
                self.queue_send(ctx, 
                    target,
                    ServerMsg(
                        kind="sp_commit",
                        data={"txid": state.txid, "ts": state.commit_ts},
                    ),
                )
        if state.read_values:
            self.queue_send(ctx, 
                state.client,
                ReadReply(
                    txid=state.txid,
                    values=tuple(state.read_values),
                    meta={"commit_ts": state.commit_ts},
                ),
            )
        else:
            self.queue_send(ctx, 
                state.client,
                WriteReply(
                    txid=state.txid,
                    kind="committed",
                    meta={"commit_ts": state.commit_ts},
                ),
            )
        del self.coordinating[state.txid]

    def _apply_commit(self, txid: str, commit_ts: int) -> None:
        items, _reads = self.prepared_items.pop(txid, ((), ()))
        del self.prepared_ts[txid]
        self.max_ts = max(self.max_ts, commit_ts)
        for item in items:
            self.install(
                Version(
                    obj=item.obj,
                    value=item.value,
                    ts=(commit_ts, self.pid, txid),
                    txid=txid,
                )
            )
        self._release(txid)

    # -- participant role ---------------------------------------------------------------

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        if sm.kind == "sp_prepare":
            qp = QueuedPrepare(
                txid=sm.data["txid"],
                objects=tuple(sm.data["objects"]),
                items=tuple(sm.values),
                reads=tuple(sm.data["reads"]),
                reply_to=msg.src,
            )
            if self._try_acquire(qp):
                self._do_prepare(ctx, qp)
            else:
                self.lock_queue.append(qp)
        elif sm.kind == "sp_prepared":
            self._local_prepared(
                ctx, sm.data["txid"], sm.data["ts"], tuple(sm.values)
            )
        elif sm.kind == "sp_commit":
            self._apply_commit(sm.data["txid"], sm.data["ts"])
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: server message {sm.kind}")

    # -- snapshot reads ------------------------------------------------------------------

    def _safe_to_read(self, read_ts: int) -> bool:
        if not self.oracle.after(self.pid, read_ts, self._wall):
            return False
        return not any(ts <= read_ts for ts in self.prepared_ts.values())

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        if self._safe_to_read(req.meta["at"]):
            self._serve_read(ctx, msg.src, req)
        else:
            self.deferred_reads.append((msg.src, req))

    def _serve_read(self, ctx: StepContext, client: ProcessId, req: ReadRequest) -> None:
        read_ts = req.meta["at"]
        entries = tuple(
            self.latest(
                obj, pred=lambda v: v.ts == INITIAL_TS or v.ts[0] <= read_ts
            ).entry()
            for obj in req.keys
        )
        self.queue_send(ctx, client, ReadReply(txid=req.txid, values=entries))

    def _retry_reads(self, ctx: StepContext) -> None:
        still: List[Tuple[ProcessId, ReadRequest]] = []
        for client, req in self.deferred_reads:
            if self._safe_to_read(req.meta["at"]) and not ctx.sent_to(client):
                self._serve_read(ctx, client, req)
            else:
                still.append((client, req))
        self.deferred_reads = still


class SpannerClient(ClientBase):
    codec_schema = (const("oracle"),)

    def __init__(self, pid, servers, placement, epsilon: int = 4):
        super().__init__(pid, servers, placement)
        self.oracle = TrueTimeOracle(epsilon)

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        if txn.is_read_only:
            read_ts = self.oracle.now(self.pid, ctx.step_index).latest
            groups = self.partition_objects(txn.read_set)
            active.state["phase"] = "read"
            active.awaiting = set(groups)
            active.round += 1
            for server, keys in groups.items():
                ctx.send(
                    server,
                    ReadRequest(txid=txn.txid, keys=keys, meta={"at": read_ts}),
                )
            return
        coordinator = self.primary((txn.write_set or txn.read_set)[0])
        active.state["phase"] = "2pc"
        active.awaiting = {coordinator}
        ctx.send(
            coordinator,
            WriteRequest(
                txid=txn.txid,
                kind="submit",
                items=tuple(ValueEntry(o, v) for o, v in txn.writes),
                meta={"reads": txn.read_set},
            ),
        )

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, ReadReply):
            for entry in p.values:
                active.reads[entry.obj] = entry.value
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
        elif isinstance(p, WriteReply):
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
