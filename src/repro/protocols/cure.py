"""Cure — blocking causal ROTs with vector snapshots and write transactions.

Table 1 row: R = 2, V = 1, **blocking**, WTX, causal consistency.

Cure combines Orbe-style vector snapshots with multi-object write
transactions (client-coordinated 2PC here; prepared transactions hold
the local stable frontier down).  The client pushes its dependency
vector into the snapshot, so data servers whose stable vector lags must
defer — blocking reads, but fresh results and full write-transaction
support.
"""

from __future__ import annotations

from repro.protocols.snapshot import (
    TwoPCClientMixin,
    TwoPCMixin,
    VectorSnapshotClient,
    VectorSnapshotServer,
)


class CureServer(TwoPCMixin, VectorSnapshotServer):
    pass


class CureClient(TwoPCClientMixin, VectorSnapshotClient):
    push_dependencies = True
    use_write_cache = False
