"""SwiftCloud/Eiger-PS-style — fast ROTs *and* write transactions, by
changing the rules.

Table 1 marks SwiftCloud and Eiger-PS with a dagger: they achieve
R=1/V=1/N=yes *and* multi-object write transactions — seemingly beating
the theorem — because they assume a different system model.  Section 4
explains the catch: "although they eventually complete all writes, the
values they write may be invisible to some clients for an indefinitely
long time.  Hence, read-only transactions may see very old values of
some objects, even the initial ones."

This module reproduces that design point inside our model:

* writes are client-coordinated 2PC into the live store (causally
  ordered by scalar timestamps);
* a read-only transaction is a single direct round: the client reads
  every object at its *epoch* — a stable frontier it learned earlier —
  and each server answers immediately with one value.  One round, one
  value, non-blocking: measured fast;
* the epoch only advances through information piggybacked on replies the
  client has already received (or an optional explicit sync round).  A
  *fresh* client's epoch is 0: it reads the initial values — forever.

Consequently the impossibility engine's verdict is ``STALLED``: value
visibility in the sense of Definition 2 (every fresh reader returns the
new value) is never reached, i.e. the minimal-progress premise
(Definition 3) is violated — exactly the loophole the paper says these
systems live in.  With ``sync_every=1`` the client syncs before every
read and the protocol collapses into a two-round (not fast) design,
closing the loophole and restoring the theorem's trichotomy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.codec import const, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ValueEntry,
)
from repro.protocols.snapshot import (
    ScalarSnapshotServer,
    SnapshotClient,
    TwoPCClientMixin,
    TwoPCMixin,
)
from repro.txn.client import ActiveTxn


class SwiftCloudServer(TwoPCMixin, ScalarSnapshotServer):
    """Serves epoch reads immediately; piggybacks its stable frontier."""

    def snapshot_view(self) -> int:
        return self.gst()

    def can_serve(self, snap: int) -> bool:
        return True

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        if req.meta.get("phase") == "snapshot":  # the optional sync round
            super().handle_read(ctx, msg, req)
            return
        epoch = req.meta["at"]
        entries = tuple(
            self.version_in_snapshot(obj, epoch).entry() for obj in req.keys
        )
        # piggyback the current frontier: this is the ONLY way a client's
        # epoch ever advances without an explicit sync — and it reaches
        # only clients that already talked to us, never fresh ones
        self.queue_send(
            ctx,
            msg.src,
            ReadReply(txid=req.txid, values=entries, meta={"frontier": self.gst()}),
        )


class SwiftCloudClient(TwoPCClientMixin, SnapshotClient):
    """Single-round epoch reads; epoch advances only by piggyback/sync."""

    push_dependencies = False
    use_write_cache = True

    codec_schema = (value("epoch"), const("sync_every"), value("_rots"))

    def __init__(self, pid, servers, placement, sync_every: int = 0):
        super().__init__(pid, servers, placement)
        self.epoch = 0
        self.sync_every = sync_every
        self._rots = 0

    def begin_read(self, ctx: StepContext, active: ActiveTxn) -> None:
        self._rots += 1
        if self.sync_every and self._rots % self.sync_every == 0:
            # explicit freshness: ask a coordinator for the frontier first
            # (costs the second round the theorem says is unavoidable)
            super().begin_read(ctx, active)
            return
        groups = self.partition_objects(active.txn.read_set)
        active.state["phase"] = "read"
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(
                server,
                ReadRequest(txid=active.txn.txid, keys=keys, meta={"at": self.epoch}),
            )

    def _choose_snapshot(self, server_snap: int) -> int:
        snap = max(int(server_snap), self.epoch)
        self.epoch = snap
        self.last_snap = max(self.last_snap, snap)
        return snap

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        payload = msg.payload
        if isinstance(payload, ReadReply) and "frontier" in payload.meta:
            self.epoch = max(self.epoch, int(payload.meta["frontier"]))
        super().handle_message(ctx, msg)
