"""Shared protocol plumbing: payloads, versions, server base, system builder.

All protocols speak through the typed payloads defined here so that the
property monitors (:mod:`repro.core.properties`) can judge executions
honestly:

* every written value a server sends to a client **must** travel inside a
  :class:`ValueEntry` reachable through a payload field listed in
  ``Payload.value_fields`` — the one-value monitor counts those;
* read replies reference the request's transaction id, so blocking
  (reply deferred past the step that received the request) and round
  counting are derived purely from the trace.

The tests include a *leak detector* that scans raw payloads for written
values smuggled outside declared value fields.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.codec import const, mapf, value
from repro.sim.executor import Simulation
from repro.sim.messages import Message, Payload, ProcessId
from repro.sim.process import Process, StepContext
from repro.sim.scheduler import RoundRobinScheduler, Scheduler, SchedulerStalled
from repro.txn.client import ClientBase
from repro.txn.types import BOTTOM, ObjectId, Transaction, TxnRecord, Value

# --------------------------------------------------------------------------
# payloads
# --------------------------------------------------------------------------

Timestamp = Tuple  # protocol-specific comparable tuples
INITIAL_TS: Timestamp = (-1,)


@dataclass(frozen=True)
class ValueEntry:
    """One written value in flight, with protocol metadata.

    ``meta`` may carry timestamps, dependency *identifiers* and similar —
    per the paper's footnote 3 metadata is allowed as long as it does not
    reveal other written values.  Protocols that do ship extra values
    (e.g. the N+R+W sketch) must wrap them in nested ``ValueEntry`` lists
    under a payload field declared in ``value_fields``.
    """

    obj: ObjectId
    value: Value
    ts: Timestamp = INITIAL_TS
    txid: str = ""
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"{self.obj}={self.value!r}@{self.ts}"


@dataclass(frozen=True)
class ReadRequest(Payload):
    txid: str
    keys: Tuple[ObjectId, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ReadReply(Payload):
    txid: str
    values: Tuple[ValueEntry, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)
    #: extra values beyond the requested objects (used only by protocols
    #: that deliberately give up the one-value property, e.g. COPS-RW)
    aux_values: Tuple[ValueEntry, ...] = ()

    value_fields = ("values", "aux_values")


@dataclass(frozen=True)
class WriteRequest(Payload):
    """A write-path message: direct write, 2PC prepare/commit/abort."""

    txid: str
    kind: str  # "write" | "prepare" | "commit" | "abort" | "submit"
    items: Tuple[ValueEntry, ...] = ()
    meta: Mapping[str, Any] = field(default_factory=dict)
    #: extra values beyond the written objects (sibling/dependency values
    #: for protocols that ship them, e.g. COPS-RW)
    aux_items: Tuple[ValueEntry, ...] = ()

    value_fields = ("items", "aux_items")


@dataclass(frozen=True)
class WriteReply(Payload):
    txid: str
    kind: str  # "ack" | "prepared" | "committed" | "aborted"
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ServerMsg(Payload):
    """Server↔server traffic: dependency checks, stabilization, gossip."""

    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)
    values: Tuple[ValueEntry, ...] = ()

    value_fields = ("values",)


# --------------------------------------------------------------------------
# server storage
# --------------------------------------------------------------------------


@dataclass
class Version:
    """One version of an object in a server's store."""

    obj: ObjectId
    value: Value
    ts: Timestamp
    txid: str = ""
    deps: Tuple[Tuple[ObjectId, Timestamp], ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict)
    visible: bool = True
    #: ROT ids this version must stay hidden from (COPS-SNOW machinery)
    invisible_to: Set[str] = field(default_factory=set)

    def entry(self, **extra_meta: Any) -> ValueEntry:
        meta = dict(self.meta)
        meta.update(extra_meta)
        return ValueEntry(
            obj=self.obj, value=self.value, ts=self.ts, txid=self.txid, meta=meta
        )

    def __repr__(self) -> str:
        vis = "" if self.visible else "!"
        return f"<{self.obj}={self.value!r}@{self.ts}{vis}>"


class ServerBase(Process):
    """Base server: versioned store plus message dispatch.

    Subclasses implement the ``handle_*`` hooks.  Deferred work (blocked
    reads, commit-waits, pending replication) lives in protocol-specific
    structures; subclasses override :meth:`wants_step` accordingly.
    """

    #: topology and placement are fixed at construction (const); the
    #: version store is keyed per object (mapf: only chains that changed
    #: re-encode); the outbox is a small list that churns as a whole
    codec_schema = (
        const("objects"),
        const("peers"),
        const("placement"),
        mapf("store"),
        value("outbox"),
    )

    def __init__(
        self,
        pid: ProcessId,
        objects: Sequence[ObjectId],
        peers: Sequence[ProcessId],
        placement: Mapping[ObjectId, Tuple[ProcessId, ...]],
    ):
        super().__init__(pid)
        self.objects: Tuple[ObjectId, ...] = tuple(objects)
        self.peers: Tuple[ProcessId, ...] = tuple(p for p in peers if p != pid)
        self.placement: Dict[ObjectId, Tuple[ProcessId, ...]] = dict(placement)
        self.store: Dict[ObjectId, List[Version]] = {
            obj: [Version(obj=obj, value=BOTTOM, ts=INITIAL_TS, txid="__init__")]
            for obj in self.objects
        }
        #: sends that could not go out this step (one message per neighbour
        #: per step); flushed on subsequent steps
        self.outbox: List[Tuple[ProcessId, Payload]] = []

    # -- store helpers ------------------------------------------------------

    def stores(self, obj: ObjectId) -> bool:
        return obj in self.store

    def versions(self, obj: ObjectId) -> List[Version]:
        return self.store[obj]

    def install(self, version: Version) -> Version:
        """Insert a version keeping the chain sorted by timestamp."""
        chain = self.store[version.obj]
        keys = [v.ts for v in chain]
        idx = bisect.bisect_right(keys, version.ts)
        chain.insert(idx, version)
        return version

    def latest(
        self,
        obj: ObjectId,
        pred: Optional[Callable[[Version], bool]] = None,
    ) -> Version:
        """Newest visible version satisfying ``pred`` (initial always passes)."""
        chain = self.store[obj]
        for v in reversed(chain):
            if not v.visible:
                continue
            if pred is None or pred(v) or v.ts == INITIAL_TS:
                return v
        return chain[0]

    def version_at_or_before(self, obj: ObjectId, ts: Timestamp) -> Version:
        """Newest visible version with ``version.ts <= ts``."""
        return self.latest(obj, pred=lambda v: v.ts <= ts)

    def find_version(self, obj: ObjectId, ts: Timestamp) -> Optional[Version]:
        for v in self.store[obj]:
            if v.ts == ts:
                return v
        return None

    # -- sending (one message per neighbour per step) ---------------------------

    def queue_send(self, ctx: StepContext, dst: ProcessId, payload: Payload) -> None:
        """Send now if the link is free this step, else queue for later."""
        if ctx.sent_to(dst):
            self.outbox.append((dst, payload))
        else:
            ctx.send(dst, payload)

    def _flush_outbox(self, ctx: StepContext) -> None:
        rest: List[Tuple[ProcessId, Payload]] = []
        for dst, payload in self.outbox:
            if ctx.sent_to(dst):
                rest.append((dst, payload))
            else:
                ctx.send(dst, payload)
        self.outbox = rest

    def wants_step(self) -> bool:
        return bool(self.outbox)

    # -- dispatch -------------------------------------------------------------

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        self._flush_outbox(ctx)
        for msg in inbox:
            p = msg.payload
            if isinstance(p, ReadRequest):
                self.handle_read(ctx, msg, p)
            elif isinstance(p, WriteRequest):
                self.handle_write(ctx, msg, p)
            elif isinstance(p, ServerMsg):
                self.handle_server(ctx, msg, p)
            else:
                self.handle_other(ctx, msg)
        self.on_tick(ctx)

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        raise NotImplementedError

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        raise NotImplementedError

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        raise NotImplementedError(f"{self.pid}: unexpected server message {sm.kind}")

    def handle_other(self, ctx: StepContext, msg: Message) -> None:
        raise TypeError(f"{self.pid}: unexpected payload {type(msg.payload).__name__}")

    def on_tick(self, ctx: StepContext) -> None:
        """End-of-step hook: gossip, retry deferred replies, advance clocks."""
        return None


# --------------------------------------------------------------------------
# system construction
# --------------------------------------------------------------------------


def default_placement(
    objects: Sequence[ObjectId],
    servers: Sequence[ProcessId],
    replication: int = 1,
) -> Dict[ObjectId, Tuple[ProcessId, ...]]:
    """Round-robin placement with the given replication factor.

    ``replication == 1`` gives the disjoint-partitions model of Theorem 1;
    ``1 < replication < len(servers)`` gives the partially replicated
    model of Theorem 2 (no server stores every object — validated by the
    general engine, not here).
    """
    servers = tuple(servers)
    if not 1 <= replication <= len(servers):
        raise ValueError("replication factor out of range")
    placement: Dict[ObjectId, Tuple[ProcessId, ...]] = {}
    for i, obj in enumerate(objects):
        placement[obj] = tuple(
            servers[(i + r) % len(servers)] for r in range(replication)
        )
    return placement


@dataclass(frozen=True)
class SystemConfig:
    protocol: str
    objects: Tuple[ObjectId, ...]
    servers: Tuple[ProcessId, ...]
    clients: Tuple[ProcessId, ...]
    placement: Mapping[ObjectId, Tuple[ProcessId, ...]]
    params: Mapping[str, Any] = field(default_factory=dict)


class TransactionIncomplete(RuntimeError):
    """Driving the system did not complete the submitted transaction."""


class System:
    """A runnable protocol deployment: simulation + roles + drivers."""

    def __init__(self, config: SystemConfig, sim: Simulation, info: "Any"):
        self.config = config
        self.sim = sim
        self.info = info
        self.servers = config.servers
        self.clients = config.clients

    @property
    def service_pids(self) -> Tuple[ProcessId, ...]:
        """Servers plus auxiliary service processes (e.g. a sequencer)."""
        aux = tuple(
            p
            for p in self.sim.processes
            if p not in self.config.servers and p not in self.config.clients
        )
        return tuple(self.config.servers) + aux

    # -- role access -----------------------------------------------------------

    def client(self, pid: ProcessId) -> ClientBase:
        proc = self.sim.processes[pid]
        if not isinstance(proc, ClientBase):
            raise TypeError(f"{pid} is not a client")
        return proc

    def server(self, pid: ProcessId) -> ServerBase:
        proc = self.sim.processes[pid]
        if not isinstance(proc, ServerBase):
            raise TypeError(f"{pid} is not a server")
        return proc

    # -- drivers ------------------------------------------------------------------

    def execute(
        self,
        client_pid: ProcessId,
        txn: Transaction,
        scheduler: Optional[Scheduler] = None,
        max_events: int = 50_000,
    ) -> TxnRecord:
        """Invoke ``txn`` on a client and drive fairly until it completes.

        Raises :class:`UnsupportedTransaction` if the protocol refuses the
        shape, :class:`TransactionIncomplete` if the run stalls.
        """
        from repro.txn.client import UnsupportedTransaction

        client = self.client(client_pid)
        before = len(client.completed)
        n_failed = len(client.failed)
        self.sim.invoke(client_pid, txn)
        sched = scheduler if scheduler is not None else RoundRobinScheduler()

        def done(sim: Simulation) -> bool:
            return len(client.completed) > before or len(client.failed) > n_failed

        try:
            sched.run(self.sim, until=done, max_events=max_events)
        except SchedulerStalled as exc:
            raise TransactionIncomplete(
                f"{txn.txid} on {client_pid} did not complete: {exc}"
            ) from exc
        if len(client.failed) > n_failed:
            failed_txn, reason = client.failed[-1]
            raise UnsupportedTransaction(reason)
        return client.completed[-1]

    def settle(self, max_events: int = 50_000) -> None:
        """Drive the system until global quiescence."""
        sched = RoundRobinScheduler()
        sched.run(self.sim, max_events=max_events)

    def history(self):
        from repro.txn.history import build_history

        return build_history(self.sim, clients=self.clients)


def build_system(
    protocol: str,
    objects: Sequence[ObjectId] = ("X0", "X1"),
    n_servers: int = 2,
    clients: Sequence[ProcessId] = ("c0", "c1", "c2", "c3"),
    placement: Optional[Mapping[ObjectId, Tuple[ProcessId, ...]]] = None,
    replication: int = 1,
    **params: Any,
) -> System:
    """Construct a runnable :class:`System` for a registered protocol."""
    from repro.protocols.registry import get_protocol

    info = get_protocol(protocol)
    server_pids = tuple(f"s{i}" for i in range(n_servers))
    client_pids = tuple(clients)
    objects = tuple(objects)
    if placement is None:
        placement = default_placement(objects, server_pids, replication)
    placement = {k: tuple(v) for k, v in placement.items()}
    for obj in objects:
        if obj not in placement:
            raise ValueError(f"object {obj} missing from placement")
        for s in placement[obj]:
            if s not in server_pids:
                raise ValueError(f"placement of {obj} names unknown server {s}")

    extras = info.make_extras(server_pids, placement, params)
    extra_pids = tuple(p.pid for p in extras)

    procs: List[Process] = list(extras)
    for spid in server_pids:
        owned = tuple(o for o in objects if spid in placement[o])
        procs.append(
            info.make_server(spid, owned, server_pids, placement, params, extra_pids)
        )
    for cpid in client_pids:
        procs.append(
            info.make_client(cpid, server_pids, placement, params, extra_pids)
        )

    sim = Simulation(procs)
    config = SystemConfig(
        protocol=protocol,
        objects=objects,
        servers=server_pids,
        clients=client_pids,
        placement=placement,
        params=dict(params),
    )
    return System(config, sim, info)
