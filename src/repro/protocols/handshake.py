"""Handshake-K — a tunable strawman for the induction's depth.

Like FastClaim it claims fast read-only transactions **and**
multi-object write transactions.  Unlike FastClaim it does not make a
multi-object write visible immediately: the involved servers first
bounce a token back and forth ``2·K`` times (configurable ``sync_hops``
parameter), and only at the end of the chain do the halves become
visible and the client get its acks.

For the impossibility engine this is the ideal specimen: each induction
round cuts one server-to-server hop (``ms_k``), the written values stay
invisible through ``2·K`` rounds (the troublesome execution growing),
and the round in which visibility finally lands at one server lets the
δ splice catch the protocol returning a mixed read — Theorem 1 says
*some* round must, because no amount of handshaking makes all four
properties compatible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.sim.codec import const, mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    ReadReply,
    ReadRequest,
    ServerBase,
    ServerMsg,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.protocols.fastclaim import FastClaimClient
from repro.txn.client import ActiveTxn
from repro.txn.types import ObjectId


class HandshakeServer(ServerBase):
    codec_schema = (const("sync_hops"), value("lamport"), mapf("pending"))

    def __init__(self, pid, objects, peers, placement, sync_hops: int = 2):
        super().__init__(pid, objects, peers, placement)
        self.sync_hops = sync_hops
        self.lamport = 0
        #: txid -> (versions installed here, client, partner or None)
        self.pending: Dict[str, Tuple[List[Version], ProcessId, ProcessId]] = {}

    # -- reads: FastClaim-style, newest *visible* version ---------------------

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        entries = tuple(self.latest(obj).entry() for obj in req.keys)
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=entries))

    # -- writes: install invisible, run the token exchange ----------------------

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        self.lamport = max(self.lamport, int(req.meta.get("ts", 0))) + 1
        versions = []
        for item in req.items:
            v = Version(
                obj=item.obj,
                value=item.value,
                ts=(self.lamport, self.pid),
                txid=req.txid,
                visible=False,
            )
            self.install(v)
            versions.append(v)
        ring = tuple(
            sorted(
                {
                    self.placement[obj][0]
                    for obj, _ in req.meta.get("all_writes", ())
                }
            )
        )
        if len(ring) <= 1 or self.sync_hops == 0:
            for v in versions:
                v.visible = True
            self.queue_send(
                ctx,
                msg.src,
                WriteReply(txid=req.txid, kind="ack", meta={"ts": self.lamport}),
            )
            return
        self.pending[req.txid] = (versions, msg.src, ring)
        if self.pid == ring[0]:
            # lowest-id participant launches the token around the ring
            self.queue_send(
                ctx,
                ring[1],
                ServerMsg(
                    kind="hs", data={"txid": req.txid, "hop": 1, "ring": ring}
                ),
            )

    def _finish(self, ctx: StepContext, txid: str) -> None:
        versions, client, _partner = self.pending.pop(txid)
        for v in versions:
            v.visible = True
        self.queue_send(
            ctx, client, WriteReply(txid=txid, kind="ack", meta={"ts": self.lamport})
        )

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        if sm.kind == "hs":
            txid, hop, ring = sm.data["txid"], sm.data["hop"], tuple(sm.data["ring"])
            total = 2 * self.sync_hops * (len(ring) - 1)
            if hop < total:
                succ = ring[(ring.index(self.pid) + 1) % len(ring)]
                self.queue_send(
                    ctx,
                    succ,
                    ServerMsg(
                        kind="hs",
                        data={"txid": txid, "hop": hop + 1, "ring": ring},
                    ),
                )
            else:
                # chain complete: reveal here, tell the ring to reveal
                if txid in self.pending:
                    self._finish(ctx, txid)
                for peer in ring:
                    if peer != self.pid:
                        self.queue_send(
                            ctx, peer, ServerMsg(kind="hs_done", data={"txid": txid})
                        )
        elif sm.kind == "hs_done":
            if sm.data["txid"] in self.pending:
                self._finish(ctx, sm.data["txid"])
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: server message {sm.kind}")


class HandshakeClient(FastClaimClient):
    """FastClaim's client, with the full write-set advertised to servers."""

    def _send_writes(self, ctx: StepContext, active: ActiveTxn) -> None:
        groups: Dict[ProcessId, list] = {}
        for obj, val in active.txn.writes:
            for server in self.replicas(obj):
                groups.setdefault(server, []).append(ValueEntry(obj, val))
        active.state["phase"] = "write"
        active.awaiting = set(groups)
        for server, items in groups.items():
            ctx.send(
                server,
                WriteRequest(
                    txid=active.txn.txid,
                    kind="write",
                    items=tuple(items),
                    meta={
                        "ts": self.lamport,
                        "all_writes": tuple(
                            (o, None) for o, _ in active.txn.writes
                        ),
                    },
                ),
            )
