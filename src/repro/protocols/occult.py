"""Occult-style — master/slave replication with client-side causal repair.

Table 1 row: R ≥ 1, V ≥ 1, non-blocking, WTX, "Per-Client Parallel SI".

Occult (Mehdi et al., NSDI'17) inverts the causal-consistency recipe:
servers never delay anything (no slowdown cascades) — instead **clients**
carry the causal metadata and repair staleness themselves:

* every object lives on a *master* shard and asynchronously replicated
  *slave* shards; each shard keeps a **shardstamp** (the high-water mark
  of writes it has applied);
* writes go to the master, bump its shardstamp, and replicate in the
  background; the client folds the new shardstamp into its *causal
  timestamp* (a per-shard vector);
* reads go to the *closest* (slave) replica, which answers immediately
  with its value and shardstamp — non-blocking by construction.  The
  client compares the shardstamp against its causal timestamp: if the
  slave lags, the read is **retried**, after a few attempts directly at
  the master — the "R ≥ 1" of Table 1: rounds are variable, paid only
  on actual staleness;
* a read-only transaction validates that its reads form a causally
  closed snapshot (every returned value's dependencies are covered by
  the client's timestamp) and re-reads what does not fit;
* write transactions use master-side 2PC (the masters are ordinary
  shards, so this reuses the client-coordinated prepare/commit shape)
  with the commit stamped into every participant's shardstamp.

Our implementation keeps Occult's architectural signature — per-shard
stamps, client-carried vectors, retry-based repair, asynchronous
master→slave replication that is *never* delayed for consistency — on
the simulator's flat topology: masters are the primary replicas, slaves
the rest.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.codec import mapf, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import StepContext
from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    ServerMsg,
    Timestamp,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.txn.client import ActiveTxn, ClientBase, UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction


class OccultServer(ServerBase):
    codec_schema = (
        mapf("shardstamps"),
        value("clock"),
        mapf("prepared"),
        value("repl_seq"),
        mapf("repl_next"),
        mapf("repl_buffer"),
    )

    def __init__(self, pid, objects, peers, placement):
        super().__init__(pid, objects, peers, placement)
        #: per-master *stable* stamp: every write of that shard with a
        #: stamp at or below it has been applied here
        self.shardstamps: Dict[ProcessId, int] = {}
        self.clock = 0
        #: master-side prepared transactions: txid -> (items, reserved stamp)
        self.prepared: Dict[str, Tuple[Tuple[ValueEntry, ...], int]] = {}
        #: master-side replication log sequence (per shard = per self)
        self.repl_seq = 0
        #: slave-side in-order application state, per master shard
        self.repl_next: Dict[ProcessId, int] = {}
        self.repl_buffer: Dict[ProcessId, Dict[int, dict]] = {}

    # -- helpers -----------------------------------------------------------------

    def master_of(self, obj: ObjectId) -> ProcessId:
        return self.placement[obj][0]

    def is_master(self, obj: ObjectId) -> bool:
        return self.master_of(obj) == self.pid

    def _stamp(self, master: ProcessId) -> int:
        if master == self.pid:
            return self._stable()
        return self.shardstamps.get(master, 0)

    def _stable(self) -> int:
        """The master's own stable stamp: everything at or below it is
        applied; a reserved (prepared, uncommitted) stamp holds it down —
        exactly the reason 2PC makes a naive high-water mark unsound."""
        base = self.clock
        if self.prepared:
            base = min(base, min(ts for _, ts in self.prepared.values()) - 1)
        return base

    def _apply(self, obj: ObjectId, value, stamp: int, txid: str, deps) -> None:
        master = self.master_of(obj)
        self.install(
            Version(obj=obj, value=value, ts=(stamp, master, txid), txid=txid,
                    deps=tuple(deps))
        )

    # -- write path (master only) -------------------------------------------------

    def handle_write(self, ctx: StepContext, msg: Message, req: WriteRequest) -> None:
        if req.kind == "write":
            item = req.items[0]
            assert self.is_master(item.obj), f"{self.pid} is not {item.obj}'s master"
            self.clock = max(self.clock, int(req.meta.get("client_ts", 0))) + 1
            deps = tuple(req.meta.get("deps", ()))
            self._apply(item.obj, item.value, self.clock, req.txid, deps)
            self.queue_send(
                ctx,
                msg.src,
                WriteReply(
                    txid=req.txid,
                    kind="ack",
                    meta={"stamp": self.clock, "shard": self.pid},
                ),
            )
            self._replicate(ctx, item, self.clock, req.txid, deps)
        elif req.kind == "prepare":
            # reserve THIS shard's commit stamp now (Occult: transactions
            # carry per-shard stamps, not one global timestamp)
            self.clock = max(self.clock, int(req.meta.get("client_ts", 0))) + 1
            self.prepared[req.txid] = (req.items, self.clock)
            self.queue_send(
                ctx,
                msg.src,
                WriteReply(
                    txid=req.txid,
                    kind="prepared",
                    meta={"ts": self.clock, "shard": self.pid},
                ),
            )
        elif req.kind == "commit":
            items, my_stamp = self.prepared[req.txid]
            local = {item.obj for item in items}
            deps = list(req.meta.get("deps", ()))
            # sibling shards of the same transaction are mutual causal
            # dependencies (the Lemma 1 atomicity pattern); the client
            # learned every shard's reserved stamp in the prepare phase
            # and ships the full vector with the commit
            for sib_obj, sib_master, sib_stamp in req.meta.get("siblings", ()):
                if sib_obj not in local:
                    deps.append((sib_obj, (sib_stamp, sib_master, req.txid)))
            deps = tuple(deps)
            # keep the reservation while the item records are emitted, so
            # their stable marks stay below my_stamp: a slave must not
            # claim stamp my_stamp until it holds EVERY item of the commit
            for item in items:
                self._apply(item.obj, item.value, my_stamp, req.txid, deps)
                self._replicate(ctx, item, my_stamp, req.txid, deps)
            del self.prepared[req.txid]
            self._emit_stable(ctx)
            self.queue_send(
                ctx,
                msg.src,
                WriteReply(
                    txid=req.txid,
                    kind="committed",
                    meta={"stamp": my_stamp, "shard": self.pid},
                ),
            )
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: write kind {req.kind}")

    def _replicate(self, ctx, item: ValueEntry, stamp: int, txid: str, deps) -> None:
        # the master ships a sequenced log: slaves apply strictly in order,
        # so a slave's shardstamp is a *contiguous-prefix* high-water mark
        # (an out-of-order application would let the stamp over-report and
        # defeat the client's staleness check)
        self.repl_seq += 1
        for replica in self.placement[item.obj]:
            if replica != self.pid:
                self.queue_send(
                    ctx,
                    replica,
                    ServerMsg(
                        kind="occ_replicate",
                        data={
                            "stamp": stamp,
                            "txid": txid,
                            "deps": tuple(deps),
                            "seq": self.repl_seq,
                            # the shard's *stable* mark rides along: 2PC
                            # stamps are reserved early and applied late,
                            # so the raw stamps are not monotone in the
                            # log — the stable mark is what a slave may
                            # honestly report as its shardstamp
                            "stable": self._stable(),
                        },
                        values=(ValueEntry(item.obj, item.value),),
                    ),
                )

    def _slaves(self):
        out = set()
        for obj in self.objects:
            if self.is_master(obj):
                for replica in self.placement[obj]:
                    if replica != self.pid:
                        out.add(replica)
        return sorted(out)

    def _emit_stable(self, ctx: StepContext) -> None:
        """Ship a value-free stable-advance record through the log."""
        self.repl_seq += 1
        for replica in self._slaves():
            self.queue_send(
                ctx,
                replica,
                ServerMsg(
                    kind="occ_replicate",
                    data={"seq": self.repl_seq, "stable": self._stable()},
                ),
            )

    def handle_server(self, ctx: StepContext, msg: Message, sm: ServerMsg) -> None:
        if sm.kind == "occ_replicate":
            master = msg.src
            buf = self.repl_buffer.setdefault(master, {})
            if sm.values:
                entry = sm.values[0]
                buf[sm.data["seq"]] = {
                    "obj": entry.obj,
                    "value": entry.value,
                    "stamp": sm.data["stamp"],
                    "txid": sm.data["txid"],
                    "deps": sm.data["deps"],
                    "stable": sm.data["stable"],
                }
            else:  # value-free stable-advance record
                buf[sm.data["seq"]] = {"stable": sm.data["stable"]}
            # Occult's signature: apply as soon as the log is contiguous,
            # never wait for cross-shard deps — staleness is the client's
            # problem (no slowdown cascades)
            nxt = self.repl_next.get(master, 1)
            while nxt in buf:
                item = buf.pop(nxt)
                if "obj" in item:
                    self._apply(
                        item["obj"], item["value"], item["stamp"], item["txid"],
                        item["deps"],
                    )
                if item["stable"] > self.shardstamps.get(master, 0):
                    self.shardstamps[master] = item["stable"]
                nxt += 1
            self.repl_next[master] = nxt
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.pid}: server message {sm.kind}")

    # -- read path: answer immediately with value + shardstamp --------------------

    def handle_read(self, ctx: StepContext, msg: Message, req: ReadRequest) -> None:
        entries = []
        stamps = {}
        for obj in req.keys:
            version = self.latest(obj)
            entries.append(version.entry(deps=version.deps))
            stamps[obj] = self._stamp(self.master_of(obj))
        self.queue_send(
            ctx,
            msg.src,
            ReadReply(txid=req.txid, values=tuple(entries), meta={"stamps": stamps}),
        )


class OccultClient(ClientBase):
    """Carries the causal timestamp; repairs stale reads by retrying."""

    #: retries at the slave before escalating to the master
    max_slave_retries = 1

    codec_schema = (mapf("causal_ts"), mapf("deps"))

    def __init__(self, pid, servers, placement):
        super().__init__(pid, servers, placement)
        #: causal timestamp: master shard -> required shardstamp
        self.causal_ts: Dict[ProcessId, int] = {}
        #: dependency list for writes: (obj, (stamp, master, txid))
        self.deps: Dict[ObjectId, Timestamp] = {}

    # read from the LAST replica (the "nearest slave"); masters only on escalation
    def read_replica(self, obj: ObjectId) -> ProcessId:
        return self.replicas(obj)[-1]

    def master(self, obj: ObjectId) -> ProcessId:
        return self.replicas(obj)[0]

    def validate(self, txn: Transaction) -> None:
        super().validate(txn)
        if txn.read_set and txn.writes:
            raise UnsupportedTransaction(
                "Occult transactions are read-only or write-only"
            )

    def _note_stamp(self, master: ProcessId, stamp: int) -> None:
        if stamp > self.causal_ts.get(master, 0):
            self.causal_ts[master] = stamp

    # -- write path -----------------------------------------------------------------

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        txn = active.txn
        if txn.is_read_only:
            self._read_round(ctx, active, escalate=set())
            return
        if len(txn.writes) == 1:
            obj, val = txn.writes[0]
            active.state["phase"] = "write"
            active.awaiting = {self.master(obj)}
            ctx.send(
                self.master(obj),
                WriteRequest(
                    txid=txn.txid,
                    kind="write",
                    items=(ValueEntry(obj, val),),
                    meta={
                        "client_ts": max(self.causal_ts.values(), default=0),
                        "deps": tuple(self.deps.items()),
                    },
                ),
            )
            return
        groups: Dict[ProcessId, List[ValueEntry]] = {}
        for obj, val in txn.writes:
            groups.setdefault(self.master(obj), []).append(ValueEntry(obj, val))
        active.state["phase"] = "prepare"
        active.state["groups"] = {s: tuple(i) for s, i in groups.items()}
        active.state["prepare_ts"] = []
        active.awaiting = set(groups)
        for server, items in groups.items():
            ctx.send(
                server,
                WriteRequest(
                    txid=txn.txid,
                    kind="prepare",
                    items=tuple(items),
                    meta={"client_ts": max(self.causal_ts.values(), default=0)},
                ),
            )

    # -- read path with retry/escalation -----------------------------------------

    def _read_round(self, ctx: StepContext, active: ActiveTxn, escalate: Set[ObjectId]) -> None:
        groups: Dict[ProcessId, List[ObjectId]] = {}
        pending = active.state.setdefault("unresolved", set(active.txn.read_set))
        for obj in sorted(pending):  # deterministic across hash seeds
            target = self.master(obj) if obj in escalate else self.read_replica(obj)
            groups.setdefault(target, []).append(obj)
        active.state["escalated"] = escalate
        active.awaiting = set(groups)
        active.round += 1
        for server, keys in groups.items():
            ctx.send(server, ReadRequest(txid=active.txn.txid, keys=tuple(keys)))

    def _stale(self, obj: ObjectId, stamp: int) -> bool:
        return stamp < self.causal_ts.get(self.master(obj), 0)

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        active = self.current
        p = msg.payload
        if active is None or getattr(p, "txid", None) != active.txn.txid:
            return
        if isinstance(p, WriteReply):
            self._handle_write_reply(ctx, active, msg, p)
            return
        if not isinstance(p, ReadReply):
            return
        stamps = p.meta.get("stamps", {})
        retries = active.state.setdefault("retries", {})
        stamps_seen = active.state.setdefault("stamps_seen", {})
        unresolved: Set[ObjectId] = active.state["unresolved"]
        for entry in p.values:
            obj = entry.obj
            stamp = stamps.get(obj, 0)
            if self._stale(obj, stamp):
                retries[obj] = retries.get(obj, 0) + 1
                continue  # stays unresolved: retry next round
            unresolved.discard(obj)
            active.reads[obj] = entry.value
            stamps_seen[obj] = stamp
            if entry.ts != INITIAL_TS:
                self._note_stamp(entry.ts[1], entry.ts[0])
                self.deps[obj] = tuple(entry.ts)
                # causal closure: adopt the value's dependencies too
                for dep_obj, dep_ts in entry.meta.get("deps", ()):
                    self._note_stamp(dep_ts[1], dep_ts[0])
        active.awaiting.discard(msg.src)
        if active.awaiting:
            return
        if not unresolved:
            # Occult's final validation: a read accepted early may have
            # been invalidated by a later reply's dependencies (the causal
            # timestamp only grows) — re-read anything now stale
            invalid = {
                obj
                for obj, stamp in stamps_seen.items()
                if self._stale(obj, stamp)
            }
            if not invalid:
                self.finish(ctx)
                return
            for obj in sorted(invalid):  # deterministic across hash seeds
                retries[obj] = retries.get(obj, 0) + 1
                stamps_seen.pop(obj, None)
                active.reads.pop(obj, None)
            unresolved |= invalid
        escalate = {
            obj
            for obj in unresolved
            if active.state["retries"].get(obj, 0) > self.max_slave_retries
        } | set(active.state.get("escalated", set()))
        self._read_round(ctx, active, escalate)

    def _handle_write_reply(self, ctx, active, msg, p) -> None:
        if p.kind == "ack":
            self._note_stamp(p.meta["shard"], p.meta["stamp"])
            obj = active.txn.writes[0][0]
            self.deps[obj] = (p.meta["stamp"], p.meta["shard"], active.txn.txid)
            active.awaiting.discard(msg.src)
            if not active.awaiting:
                self.finish(ctx)
        elif p.kind == "prepared":
            active.state.setdefault("shard_stamps", {})[p.meta["shard"]] = int(
                p.meta["ts"]
            )
            active.awaiting.discard(msg.src)
            if not active.awaiting and active.state["phase"] == "prepare":
                shard_stamps = active.state["shard_stamps"]
                active.state["phase"] = "commit"
                active.awaiting = set(active.state["groups"])
                siblings = tuple(
                    (obj, self.master(obj), shard_stamps[self.master(obj)])
                    for obj in active.txn.write_set
                )
                for server in active.state["groups"]:
                    ctx.send(
                        server,
                        WriteRequest(
                            txid=active.txn.txid,
                            kind="commit",
                            meta={
                                "deps": tuple(self.deps.items()),
                                "siblings": siblings,
                            },
                        ),
                    )
        elif p.kind == "committed":
            self._note_stamp(p.meta["shard"], p.meta["stamp"])
            active.awaiting.discard(msg.src)
            if not active.awaiting and active.state["phase"] == "commit":
                shard_stamps = active.state["shard_stamps"]
                for obj in active.txn.write_set:
                    master = self.master(obj)
                    self.deps[obj] = (
                        shard_stamps[master],
                        master,
                        active.txn.txid,
                    )
                self.finish(ctx)
