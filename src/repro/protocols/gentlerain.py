"""GentleRain — blocking causal ROTs with O(1) metadata.

Table 1 row: R = 2, V = 1, **blocking**, no WTX, causal consistency.

The client folds its own dependency time into the snapshot (freshness
first), so a data server whose global-stable-time view lags must *defer*
the reply until GST gossip catches up — the blocking that Table 1
records.  Metadata is a single scalar per message (GentleRain's selling
point against Orbe's vectors; the metadata benchmark quantifies it).
"""

from __future__ import annotations

from repro.protocols.snapshot import (
    ScalarSnapshotServer,
    SimplePutClientMixin,
    SimplePutMixin,
    SnapshotClient,
)


class GentleRainServer(SimplePutMixin, ScalarSnapshotServer):
    def snapshot_view(self) -> int:
        return self.gst()

    def can_serve(self, snap: int) -> bool:
        return snap <= self.gst()


class GentleRainClient(SimplePutClientMixin, SnapshotClient):
    push_dependencies = True  # snapshot may run ahead of GST → blocking
    use_write_cache = False
