"""Causal-consistency checking.

Two checkers, used together:

* :func:`check_causal_exact` — the search-based decision procedure for
  Definition 1 of the paper: it derives the reads-from relation (written
  values are unique, the paper's simplifying assumption), closes program
  order ∪ reads-from into the causal order ``<c``, and then, for each
  client ``c_i``, searches for a sequential execution σᵢ over
  ``complete(H)`` that respects ``<c`` and is legal for ``c_i``'s
  transactions.  Complete but exponential; capped by a step budget.

* :func:`find_causal_anomalies` — a fast, sound witness detector based
  on the necessary condition the paper states right after Definition 1:

      a transaction ``T`` that reads value ``u`` for object ``X`` is a
      violation witness if some transaction ``W'`` also writes ``X``
      with ``writer(u) <c W' <c T``

  (with ``writer(⊥)`` ordered before everything).  Program-order edges
  make this subsume the session guarantees, and the reads-from edge from
  a fractured multi-object write makes it subsume transactional
  atomicity-under-causality (the Lemma 1 pattern).  Every reported
  anomaly is a genuine Definition-1 violation; silence is not a proof
  (use the exact checker for that, on small histories).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.consistency.search import SearchResult, find_legal_serialization
from repro.txn.history import History
from repro.txn.types import BOTTOM, ObjectId, Value


@dataclass(frozen=True)
class CausalAnomaly:
    """A concrete witness that a history is not causally consistent."""

    reader: str  # txid of the transaction with the stale read
    obj: ObjectId
    read_value: Value
    read_writer: Optional[str]  # txid, None for ⊥/initial
    fresher_writer: str  # the W' with writer(u) <c W' <c reader
    fresher_value: Value

    def describe(self) -> str:
        base = (
            f"{self.reader} read {self.obj}={self.read_value!r} "
            f"(written by {self.read_writer or '⊥'}) but "
            f"{self.fresher_writer} wrote {self.obj}={self.fresher_value!r} "
            f"causally after it and causally before {self.reader}"
        )
        return base


@dataclass
class CausalCheckResult:
    consistent: bool
    conclusive: bool
    anomalies: List[CausalAnomaly] = field(default_factory=list)
    per_client: Dict[str, SearchResult] = field(default_factory=dict)
    detail: str = ""


def find_causal_anomalies(history: History) -> List[CausalAnomaly]:
    """Fast, sound anomaly scan (see module docstring)."""
    history.check_unique_values()
    order = history.causal_order()
    writers = history.writer_index()
    by_obj = history.writers_by_object()

    anomalies: List[CausalAnomaly] = []
    for rec in history.records:
        for obj, val in rec.reads.items():
            writer = None if val is BOTTOM else writers.get((obj, val))
            if val is not BOTTOM and writer is None:
                # a value that nobody wrote: corrupt beyond causality
                anomalies.append(
                    CausalAnomaly(
                        reader=rec.txid,
                        obj=obj,
                        read_value=val,
                        read_writer=None,
                        fresher_writer="<nonexistent>",
                        fresher_value=val,
                    )
                )
                continue
            for other in by_obj.get(obj, ()):  # candidate W'
                if other.txid == rec.txid:
                    continue
                if writer is not None:
                    if other.txid == writer.txid:
                        continue
                    if not order.lt(writer.txid, other.txid):
                        continue
                if order.lt(other.txid, rec.txid):
                    anomalies.append(
                        CausalAnomaly(
                            reader=rec.txid,
                            obj=obj,
                            read_value=val,
                            read_writer=writer.txid if writer else None,
                            fresher_writer=other.txid,
                            fresher_value=other.txn.write_map[obj],
                        )
                    )
    return anomalies


def check_causal_exact(
    history: History, max_steps: int = 200_000
) -> CausalCheckResult:
    """Decide Definition 1 by search (complete for small histories)."""
    history.check_unique_values()
    try:
        order = history.causal_order()
    except ValueError:
        return CausalCheckResult(
            consistent=False,
            conclusive=True,
            detail="cycle in program-order ∪ reads-from",
        )
    edges = order.edges()
    per_client: Dict[str, SearchResult] = {}
    conclusive = True
    for client in history.clients():
        result = find_legal_serialization(
            history.records,
            edges,
            legality_clients={client},
            max_steps=max_steps,
        )
        per_client[client] = result
        if not result.found:
            if result.exhausted_budget:
                conclusive = False
                continue
            return CausalCheckResult(
                consistent=False,
                conclusive=True,
                per_client=per_client,
                detail=f"no legal serialization exists for client {client}",
            )
    return CausalCheckResult(
        consistent=True if conclusive else False,
        conclusive=conclusive,
        per_client=per_client,
        detail="" if conclusive else "search budget exhausted",
    )


def check_causal(
    history: History,
    exact: Optional[bool] = None,
    exact_threshold: int = 14,
    max_steps: int = 200_000,
) -> CausalCheckResult:
    """Combined checker: witness scan always; exact search when feasible.

    The witness scan is sound, so any anomaly makes the verdict
    *inconsistent, conclusive* regardless of size.  For histories up to
    ``exact_threshold`` transactions (or with ``exact=True``) the search
    decides the clean case too; otherwise a clean scan is reported as
    consistent-but-not-proof (``conclusive=False``).
    """
    anomalies = find_causal_anomalies(history)
    if anomalies:
        return CausalCheckResult(
            consistent=False,
            conclusive=True,
            anomalies=anomalies,
            detail=anomalies[0].describe(),
        )
    use_exact = exact if exact is not None else len(history.records) <= exact_threshold
    if use_exact:
        return check_causal_exact(history, max_steps=max_steps)
    return CausalCheckResult(
        consistent=True,
        conclusive=False,
        detail="witness scan clean; history too large for the exact search",
    )
