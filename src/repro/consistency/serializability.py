"""(Strict) serializability checking by serialization search.

Serializability: one global legal serialization of all transactions.
Strict serializability: additionally respects real-time precedence
(``T1`` completed before ``T2`` was invoked ⇒ ``T1`` before ``T2``).
Both reuse the search engine; both are exact but exponential, so they
are meant for the small histories the test/bench workloads produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.consistency.search import SearchResult, find_legal_serialization
from repro.txn.history import History


@dataclass
class SerializabilityResult:
    serializable: bool
    conclusive: bool
    order: Optional[List[str]] = None
    detail: str = ""


def check_serializable(
    history: History, strict: bool = False, max_steps: int = 400_000
) -> SerializabilityResult:
    history.check_unique_values()
    edges = history.realtime_edges() if strict else []
    result = find_legal_serialization(
        history.records, edges, legality_clients=None, max_steps=max_steps
    )
    if result.found:
        return SerializabilityResult(
            serializable=True, conclusive=True, order=result.order
        )
    if result.exhausted_budget:
        return SerializabilityResult(
            serializable=False,
            conclusive=False,
            detail="search budget exhausted",
        )
    kind = "strictly serializable" if strict else "serializable"
    return SerializabilityResult(
        serializable=False,
        conclusive=True,
        detail=f"no legal global serialization: history is not {kind}",
    )


def check_strict_serializable(
    history: History, max_steps: int = 400_000
) -> SerializabilityResult:
    return check_serializable(history, strict=True, max_steps=max_steps)
