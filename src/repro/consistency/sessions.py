"""Session-guarantee checkers.

The four classic session guarantees, each checked per client against
the causal order derived from the history (unique written values):

* **read your writes** — after writing ``X=v``, the client never reads a
  version of ``X`` causally older than its own write;
* **monotonic reads** — the client never reads a version of ``X``
  causally older than one it previously read;
* **monotonic writes** — a client's writes to the same object are
  installed in program order (derivable here because timestamps refine
  causality; we check no later read anywhere observes them inverted);
* **writes follow reads** — a write issued after reading ``X=v`` is
  never ordered causally before ``v``'s writer.

Causal consistency implies all four; these targeted checkers produce
sharper diagnostics than the whole-history checkers when a protocol's
client-side session logic (caches, dependency tracking) is broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.txn.history import History
from repro.txn.types import BOTTOM, ObjectId, TxnRecord, Value


@dataclass(frozen=True)
class SessionViolation:
    guarantee: str
    client: str
    txid: str
    obj: ObjectId
    detail: str

    def describe(self) -> str:
        return f"[{self.guarantee}] {self.detail}"


def _writer_of(history: History):
    writers = history.writer_index()

    def get(obj: ObjectId, val: Value) -> Optional[TxnRecord]:
        if val is BOTTOM:
            return None
        return writers.get((obj, val))

    return get


def check_sessions(history: History) -> List[SessionViolation]:
    history.check_unique_values()
    order = history.causal_order()
    writer_of = _writer_of(history)
    violations: List[SessionViolation] = []

    for client in history.clients():
        # the freshest version of each object this client has observed:
        # obj -> (value, writer txid or None, how: "read"/"write")
        seen: Dict[ObjectId, Tuple[Value, Optional[str], str]] = {}
        for rec in history.per_client(client):
            for obj, val in rec.reads.items():
                w = writer_of(obj, val)
                wid = w.txid if w else None
                if obj in seen:
                    prev_val, prev_wid, how = seen[obj]
                    if prev_val != val:
                        # stale iff the new read is causally older
                        stale = (
                            wid is None and prev_wid is not None
                        ) or (
                            wid is not None
                            and prev_wid is not None
                            and order.lt(wid, prev_wid)
                        )
                        if stale:
                            guarantee = (
                                "read-your-writes" if how == "write" else "monotonic-reads"
                            )
                            violations.append(
                                SessionViolation(
                                    guarantee=guarantee,
                                    client=client,
                                    txid=rec.txid,
                                    obj=obj,
                                    detail=(
                                        f"{client} observed {obj}={prev_val!r} "
                                        f"({how}) then read older {obj}={val!r} "
                                        f"in {rec.txid}"
                                    ),
                                )
                            )
                seen[obj] = (val, wid, "read")
            for obj, val in rec.txn.writes:
                # writes-follow-reads: this write must not be causally
                # before anything the client already observed for obj
                if obj in seen:
                    _, prev_wid, _ = seen[obj]
                    if prev_wid is not None and order.lt(rec.txid, prev_wid):
                        violations.append(
                            SessionViolation(
                                guarantee="writes-follow-reads",
                                client=client,
                                txid=rec.txid,
                                obj=obj,
                                detail=(
                                    f"{client}'s write {rec.txid} of {obj} is "
                                    f"causally before previously observed "
                                    f"writer {prev_wid}"
                                ),
                            )
                        )
                seen[obj] = (val, rec.txid, "write")

        # monotonic writes: the client's own writes to one object must not
        # be causally inverted
        my_writes: Dict[ObjectId, List[TxnRecord]] = {}
        for rec in history.per_client(client):
            for obj, _ in rec.txn.writes:
                my_writes.setdefault(obj, []).append(rec)
        for obj, recs in my_writes.items():
            for earlier, later in zip(recs, recs[1:]):
                if order.lt(later.txid, earlier.txid):
                    violations.append(
                        SessionViolation(
                            guarantee="monotonic-writes",
                            client=client,
                            txid=later.txid,
                            obj=obj,
                            detail=(
                                f"{client}'s later write {later.txid} ordered "
                                f"causally before earlier write {earlier.txid}"
                            ),
                        )
                    )
    return violations
