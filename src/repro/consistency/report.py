"""One-call consistency verdicts for a history at a claimed level."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.consistency.atomicity import find_fractured_reads
from repro.consistency.causal import CausalCheckResult, check_causal
from repro.consistency.serializability import check_serializable
from repro.consistency.sessions import check_sessions
from repro.txn.history import History

#: consistency levels, weakest → strongest (as relevant to the paper:
#: every level at or above "causal" is in scope of the theorem)
LEVELS = ("read-atomic", "causal", "serializable", "strict-serializable")


@dataclass
class ConsistencyReport:
    level: str
    ok: bool
    conclusive: bool
    violations: List[Any] = field(default_factory=list)
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        sure = "" if self.conclusive else " (inconclusive)"
        lines = [f"[{status}{sure}] {self.level}: {self.detail}".rstrip(": ")]
        for v in self.violations[:10]:
            desc = v.describe() if hasattr(v, "describe") else str(v)
            lines.append(f"  - {desc}")
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def check_history(
    history: History, level: str = "causal", exact: Optional[bool] = None
) -> ConsistencyReport:
    """Check ``history`` against a claimed consistency ``level``."""
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r}; expected one of {LEVELS}")
    if level == "read-atomic":
        fractures = find_fractured_reads(history)
        return ConsistencyReport(
            level=level,
            ok=not fractures,
            conclusive=True,
            violations=list(fractures),
            detail="" if not fractures else fractures[0].describe(),
        )
    if level == "causal":
        res: CausalCheckResult = check_causal(history, exact=exact)
        return ConsistencyReport(
            level=level,
            ok=res.consistent,
            conclusive=res.conclusive,
            violations=list(res.anomalies),
            detail=res.detail,
        )
    strict = level == "strict-serializable"
    res2 = check_serializable(history, strict=strict)
    # any serializable level is also causally consistent; surface causal
    # anomalies as extra diagnostics when the serialization search fails
    violations: List[Any] = []
    if not res2.serializable and res2.conclusive:
        causal_res = check_causal(history, exact=False)
        violations = list(causal_res.anomalies)
    return ConsistencyReport(
        level=level,
        ok=res2.serializable,
        conclusive=res2.conclusive,
        violations=violations,
        detail=res2.detail,
    )
