"""Incremental consistency checkers: delta-driven, checkpointable.

The batch checkers (:func:`~repro.consistency.causal.find_causal_anomalies`,
:func:`~repro.consistency.atomicity.find_fractured_reads`,
:func:`~repro.consistency.sessions.check_sessions`) recompute everything
— history sort, writer index, transitive closure, full anomaly scan —
from scratch on every call.  Along a DFS of the schedule space each
checked node's history extends its parent's by at most one committed
transaction, so almost all of that work is repeated.  The classes here
make the cost of a verdict proportional to the *delta*:

* :meth:`IncrementalChecker.advance` consumes newly-committed records:
  new reads are checked against the existing writer index, existing
  reads are re-checked only against the new writers, and the causal
  order grows by a closure *delta* (:meth:`CausalOrder.add_edge`) whose
  newly-related pairs are the only pairs re-examined.
* :meth:`IncrementalChecker.checkpoint` / :meth:`rollback` run in
  lockstep with the engine's fork/restore: backtracking reuses the
  parent's checker state instead of recomputing it.  All state mutation
  goes through an undo trail, so a rollback costs O(delta) too.
* :meth:`IncrementalChecker.anomalies` returns the verdict for the
  records consumed so far — **bit-identical** to running the matching
  batch checker on those records sorted by ``(invoked_at, txid)`` (the
  order :func:`~repro.txn.history.build_history` produces).  Identity
  includes anomaly *order*: found anomalies are kept as a set and
  sorted into the batch checker's emission order at verdict time.

Correctness relies on one contract: records of the **same client must
arrive in program order** (true of any simulation — a client runs one
transaction at a time); records of different clients may interleave
arbitrarily, including a reader arriving before the writer it read from
(the read stays *pending* and is resolved when the writer commits).

The batch checkers remain the reference oracle: the engine can run both
and assert equality (``checker_oracle``), and the hypothesis suite does
so on random histories under arbitrary append/checkpoint/rollback
sequences.  See ``docs/model.md``, "Checker cost and incrementality".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.consistency.atomicity import FracturedRead
from repro.consistency.causal import CausalAnomaly
from repro.consistency.sessions import SessionViolation
from repro.txn.history import CausalOrder
from repro.txn.types import BOTTOM, ObjectId, TxnRecord, Value

#: sentinel sort key ordering the "<nonexistent>" pseudo-writer first
_NO_WRITER_KEY = (-1, "")


class IncrementalChecker:
    """Shared delta machinery: indices, causal closure, undo trail.

    Subclasses implement :meth:`_on_record` (react to one consumed
    record, its newly-established reads-from facts and the causal
    closure delta) and :meth:`anomalies` (the verdict).
    """

    name = "?"

    def __init__(self) -> None:
        self.order = CausalOrder()
        self.recs: List[TxnRecord] = []
        self.by_txid: Dict[str, TxnRecord] = {}
        self.last_of_client: Dict[str, TxnRecord] = {}
        self.writer_index: Dict[Tuple[ObjectId, Value], TxnRecord] = {}
        self.writers_by_object: Dict[ObjectId, List[TxnRecord]] = {}
        #: (obj, value) -> readers of exactly that version (reads-from)
        self.readers_of: Dict[Tuple[ObjectId, Value], List[TxnRecord]] = {}
        #: non-⊥ reads whose writer has not committed yet
        self.pending_reads: Dict[Tuple[ObjectId, Value], List[TxnRecord]] = {}
        #: corrupt-history error (cycle / duplicate value), raised by verdicts
        self._errbox: Dict[str, Optional[ValueError]] = {"e": None}
        self._trail: List[Tuple] = []

    # -- undo trail ---------------------------------------------------------

    def _dset(self, d: dict, k, v) -> None:
        if k in d:
            self._trail.append(("set", d, k, d[k]))
        else:
            self._trail.append(("del", d, k))
        d[k] = v

    def _dpop(self, d: dict, k) -> None:
        self._trail.append(("set", d, k, d.pop(k)))

    def _lappend(self, lst: list, v) -> None:
        lst.append(v)
        self._trail.append(("pop", lst))

    def _set_err(self, exc: ValueError) -> None:
        self._dset(self._errbox, "e", exc)

    def checkpoint(self) -> Tuple[int, int]:
        return (len(self._trail), self.order.checkpoint())

    def rollback(self, token: Tuple[int, int]) -> None:
        n, order_token = token
        trail = self._trail
        while len(trail) > n:
            entry = trail.pop()
            op = entry[0]
            if op == "set":
                entry[1][entry[2]] = entry[3]
            elif op == "del":
                del entry[1][entry[2]]
            else:  # "pop"
                entry[1].pop()
        self.order.rollback(order_token)

    # -- consuming the delta ------------------------------------------------

    def advance(self, records: Sequence[TxnRecord]) -> None:
        """Consume newly-committed records (same-client ones in program
        order); a no-op once the history is corrupt."""
        for rec in records:
            if self._errbox["e"] is None:
                self._consume(rec)

    def _consume(self, rec: TxnRecord) -> None:
        for obj, val in rec.txn.writes:
            prev = self.writer_index.get((obj, val))
            if prev is not None and prev.txid != rec.txid:
                self._set_err(
                    ValueError(
                        f"value {val!r} for {obj} written by both "
                        f"{prev.txid} and {rec.txid}"
                    )
                )
                return
        self._lappend(self.recs, rec)
        self._dset(self.by_txid, rec.txid, rec)
        try:
            self.order.add_node(rec.txid)
        except ValueError as exc:
            self._set_err(exc)
            return
        edges: List[Tuple[str, str]] = []
        prev_rec = self.last_of_client.get(rec.client)
        if prev_rec is not None:
            edges.append((prev_rec.txid, rec.txid))
        self._dset(self.last_of_client, rec.client, rec)
        #: reads-from facts established by this record, as
        #: (reader, obj, value, writer) — both directions: this record's
        #: own resolved reads, and pending reads it resolves as a writer
        resolutions: List[Tuple[TxnRecord, ObjectId, Value, TxnRecord]] = []
        for obj, val in rec.txn.writes:
            key = (obj, val)
            self._dset(self.writer_index, key, rec)
            self._lappend(self.writers_by_object.setdefault(obj, []), rec)
            pend = self.pending_reads.get(key)
            if pend:
                self._dpop(self.pending_reads, key)
                for reader in pend:
                    if reader.txid != rec.txid:
                        edges.append((rec.txid, reader.txid))
                    self._lappend(self.readers_of.setdefault(key, []), reader)
                    resolutions.append((reader, obj, val, rec))
        for obj, val in rec.reads.items():
            if val is BOTTOM:
                continue
            key = (obj, val)
            w = self.writer_index.get(key)
            if w is not None:
                if w.txid != rec.txid:
                    edges.append((w.txid, rec.txid))
                self._lappend(self.readers_of.setdefault(key, []), rec)
                resolutions.append((rec, obj, val, w))
            else:
                self._lappend(self.pending_reads.setdefault(key, []), rec)
        delta: List[Tuple[str, str]] = []
        for a, b in edges:
            try:
                delta.extend(self.order.add_edge(a, b))
            except ValueError as exc:
                self._set_err(exc)
                return
        self._on_record(rec, resolutions, delta)

    # -- subclass hooks -----------------------------------------------------

    def _on_record(self, rec, resolutions, delta) -> None:
        raise NotImplementedError

    def anomalies(self) -> List[Any]:
        raise NotImplementedError

    def _raise_if_corrupt(self) -> None:
        if self._errbox["e"] is not None:
            raise self._errbox["e"]

    def _rec_key(self, txid: str) -> Tuple[int, str]:
        r = self.by_txid[txid]
        return (r.invoked_at, r.txid)


class IncrementalCausalChecker(IncrementalChecker):
    """Delta version of :func:`~repro.consistency.causal.find_causal_anomalies`.

    The witness condition — ``T`` reads ``u`` for ``X`` while some
    ``W'`` also writes ``X`` with ``writer(u) <c W' <c T`` — is
    monotone in the causal order, so each anomaly is discovered exactly
    when its last enabling fact arrives: a read is established
    (checked against the existing writers of its object), or a closure
    pair ``(a, b)`` is added (re-examined once as ``(writer, W')`` and
    once as ``(W', T)``).
    """

    name = "causal"

    def __init__(self) -> None:
        super().__init__()
        self.found: Dict[CausalAnomaly, None] = {}

    def _emit(
        self,
        reader: str,
        obj: ObjectId,
        val: Value,
        read_writer: Optional[str],
        fresher: TxnRecord,
    ) -> None:
        anomaly = CausalAnomaly(
            reader=reader,
            obj=obj,
            read_value=val,
            read_writer=read_writer,
            fresher_writer=fresher.txid,
            fresher_value=fresher.txn.write_map[obj],
        )
        if anomaly not in self.found:
            self._dset(self.found, anomaly, None)

    def _on_record(self, rec, resolutions, delta) -> None:
        for a, b in delta:
            self._check_pair(a, b)
        for reader, obj, val, writer in resolutions:
            self._scan_read(reader, obj, val, writer)
        for obj, val in rec.reads.items():
            if val is BOTTOM:
                for other in self.writers_by_object.get(obj, ()):
                    if other.txid != rec.txid and self.order.lt(
                        other.txid, rec.txid
                    ):
                        self._emit(rec.txid, obj, BOTTOM, None, other)

    def _scan_read(
        self, reader: TxnRecord, obj: ObjectId, val: Value, writer: TxnRecord
    ) -> None:
        """A read with a known writer: scan every writer of ``obj``."""
        lt = self.order.lt
        for other in self.writers_by_object.get(obj, ()):
            if other.txid == reader.txid or other.txid == writer.txid:
                continue
            if lt(writer.txid, other.txid) and lt(other.txid, reader.txid):
                self._emit(reader.txid, obj, val, writer.txid, other)

    def _check_pair(self, a: str, b: str) -> None:
        """Re-examine a newly-related pair ``a <c b`` both ways."""
        ra, rb = self.by_txid[a], self.by_txid[b]
        lt = self.order.lt
        # a = W', b = the reader T: a fresher write now causally below b
        a_writes = ra.txn.write_map
        if a_writes:
            for obj, val in rb.reads.items():
                if obj not in a_writes:
                    continue
                if val is BOTTOM:
                    self._emit(b, obj, BOTTOM, None, ra)
                    continue
                w = self.writer_index.get((obj, val))
                if w is None or w.txid == a:
                    continue  # pending read, or a is the read's own writer
                if lt(w.txid, a):
                    self._emit(b, obj, val, w.txid, ra)
        # a = writer(u), b = W': a version now causally below a writer
        b_writes = rb.txn.write_map
        if b_writes:
            for obj, val in ra.txn.writes:
                if obj not in b_writes:
                    continue
                for reader in self.readers_of.get((obj, val), ()):
                    if reader.txid == b:
                        continue
                    if lt(b, reader.txid):
                        self._emit(reader.txid, obj, val, a, rb)

    def anomalies(self) -> List[CausalAnomaly]:
        self._raise_if_corrupt()
        if not self.found and not self.pending_reads:
            return []
        out = list(self.found)
        for (obj, val), readers in self.pending_reads.items():
            # a value nobody (yet) wrote: corrupt beyond causality
            for reader in readers:
                out.append(
                    CausalAnomaly(
                        reader=reader.txid,
                        obj=obj,
                        read_value=val,
                        read_writer=None,
                        fresher_writer="<nonexistent>",
                        fresher_value=val,
                    )
                )

        def key(anom: CausalAnomaly):
            reader = self.by_txid[anom.reader]
            slot = list(reader.reads).index(anom.obj)
            if anom.fresher_writer == "<nonexistent>":
                wkey = _NO_WRITER_KEY
            else:
                wkey = self._rec_key(anom.fresher_writer)
            return ((reader.invoked_at, reader.txid), slot, wkey)

        return sorted(out, key=key)


class IncrementalReadAtomicChecker(IncrementalChecker):
    """Delta version of :func:`~repro.consistency.atomicity.find_fractured_reads`.

    A fracture — ``T`` observes ``W``'s write to one object but a
    *definitely older* version of another object ``W`` also wrote — is
    evaluated when the reads-from fact ``T ← W`` is established, when
    the stale sibling's writer commits (it may commit after the fact),
    and when a closure pair ``(stale writer, W)`` arrives.  The
    real-time half of *definitely older* is fixed at commit time, so
    only the causal half needs the delta machinery.
    """

    name = "read-atomic"

    def __init__(self) -> None:
        super().__init__()
        self.found: Dict[FracturedRead, None] = {}
        #: (obj, value) -> fracture triples waiting on that writer:
        #: (reader, sibling txn W, obj_seen, obj_missed, stale value)
        self.parked: Dict[
            Tuple[ObjectId, Value],
            List[Tuple[TxnRecord, TxnRecord, ObjectId, ObjectId, Value]],
        ] = {}

    def _emit(
        self,
        reader: TxnRecord,
        sibling: TxnRecord,
        obj_seen: ObjectId,
        obj_missed: ObjectId,
        stale: Value,
    ) -> None:
        fracture = FracturedRead(
            reader=reader.txid,
            sibling_txn=sibling.txid,
            obj_seen=obj_seen,
            obj_missed=obj_missed,
            stale_value=stale,
        )
        if fracture not in self.found:
            self._dset(self.found, fracture, None)

    def _definitely_older(self, gw: Optional[TxnRecord], w: TxnRecord) -> bool:
        if gw is None:  # ⊥ precedes every write
            return True
        if self.order.lt(gw.txid, w.txid):
            return True
        return gw.completed_at < w.invoked_at

    def _on_record(self, rec, resolutions, delta) -> None:
        for a, b in delta:
            self._check_pair(a, b)
        for reader, obj, val, writer in resolutions:
            self._establish(reader, obj, writer)
        for obj, val in rec.txn.writes:
            for triple in self.parked.get((obj, val), ()):
                reader, w, obj_seen, obj_missed, stale = triple
                if self._definitely_older(rec, w):
                    self._emit(reader, w, obj_seen, obj_missed, stale)

    def _establish(
        self, reader: TxnRecord, obj_seen: ObjectId, w: TxnRecord
    ) -> None:
        """``reader`` now provably reads-from ``w`` on ``obj_seen``."""
        for obj_missed in w.txn.write_set:
            if obj_missed == obj_seen or obj_missed not in reader.reads:
                continue
            got = reader.reads[obj_missed]
            if got == w.txn.write_map[obj_missed]:
                continue
            if got is BOTTOM:
                self._emit(reader, w, obj_seen, obj_missed, got)
                continue
            gw = self.writer_index.get((obj_missed, got))
            if gw is None:
                self._lappend(
                    self.parked.setdefault((obj_missed, got), []),
                    (reader, w, obj_seen, obj_missed, got),
                )
            elif self._definitely_older(gw, w):
                self._emit(reader, w, obj_seen, obj_missed, got)

    def _check_pair(self, a: str, b: str) -> None:
        """``a <c b`` arrived: a's versions are now older than b's."""
        ra, rb = self.by_txid[a], self.by_txid[b]
        b_writes = rb.txn.write_map
        if not ra.txn.writes or not b_writes:
            return
        for obj_missed, stale in ra.txn.writes:
            if obj_missed not in b_writes or b_writes[obj_missed] == stale:
                continue
            stale_readers = self.readers_of.get((obj_missed, stale))
            if not stale_readers:
                continue
            for obj_seen, val in rb.txn.writes:
                if obj_seen == obj_missed:
                    continue
                for reader in self.readers_of.get((obj_seen, val), ()):
                    if reader.reads.get(obj_missed) == stale:
                        self._emit(reader, rb, obj_seen, obj_missed, stale)

    def anomalies(self) -> List[FracturedRead]:
        self._raise_if_corrupt()
        if not self.found and not self.parked:
            return []
        out = list(self.found)
        for key, triples in self.parked.items():
            if key in self.writer_index:
                continue  # resolved: evaluated on the writer's arrival
            for reader, w, obj_seen, obj_missed, stale in triples:
                # the batch checker treats a never-written version as ⊥
                out.append(
                    FracturedRead(
                        reader=reader.txid,
                        sibling_txn=w.txid,
                        obj_seen=obj_seen,
                        obj_missed=obj_missed,
                        stale_value=stale,
                    )
                )

        def key(fr: FracturedRead):
            reader = self.by_txid[fr.reader]
            sibling = self.by_txid[fr.sibling_txn]
            return (
                (reader.invoked_at, reader.txid),
                list(reader.reads).index(fr.obj_seen),
                sibling.txn.write_set.index(fr.obj_missed),
            )

        return sorted(set(out), key=key)


class IncrementalSessionChecker(IncrementalChecker):
    """Delta version of :func:`~repro.consistency.sessions.check_sessions`.

    A session-guarantee *candidate* is a pair of same-client
    observations (a read after a read/write of the same object, a write
    after an observation, consecutive writes); whether it is a violation
    depends on the causal order and the writer index, both of which can
    keep evolving as other clients' transactions commit.  There are only
    O(observations) candidates, so this checker records them on arrival
    (with the previously-seen version captured *by reference* — a value
    whose writer has not committed yet resolves lazily) and evaluates
    them against the final order at verdict time: consuming a record is
    O(|record|), a verdict is O(candidates) bit tests.

    Requires the arrival contract from the module docstring: a client's
    records must arrive in program order (and, for verdict-order parity
    with the batch checker, program order must agree with the
    ``(invoked_at, txid)`` sort — true of simulation histories, where
    each client's invocation stamps strictly increase).
    """

    name = "sessions"

    def __init__(self) -> None:
        super().__init__()
        #: (client, obj) -> (value, writer ref, how) — the freshest
        #: version the client has observed; refs are None (⊥),
        #: ("tx", txid) (own write) or ("val", obj, val) (lazy lookup)
        self.seen: Dict[Tuple[str, ObjectId], Tuple[Value, Optional[tuple], str]] = {}
        #: append-only candidates, each (kind, sort_key, *payload)
        self.cands: List[tuple] = []
        self.client_pos: Dict[str, int] = {}
        #: (client, obj) -> the client's previous write of obj (txid)
        self.last_write: Dict[Tuple[str, ObjectId], str] = {}
        #: (client, obj) -> rank of obj among the client's written objects
        self.obj_order: Dict[Tuple[str, ObjectId], int] = {}
        self.pair_count: Dict[Tuple[str, ObjectId], int] = {}
        self.nobj: Dict[str, int] = {}

    def _wid(self, ref: Optional[tuple]) -> Optional[str]:
        if ref is None:
            return None
        if ref[0] == "tx":
            return ref[1]
        w = self.writer_index.get((ref[1], ref[2]))
        return w.txid if w is not None else None

    def _on_record(self, rec, resolutions, delta) -> None:
        client = rec.client
        pos = self.client_pos.get(client, 0)
        self._dset(self.client_pos, client, pos + 1)
        for slot, (obj, val) in enumerate(rec.reads.items()):
            ref = None if val is BOTTOM else ("val", obj, val)
            key = (client, obj)
            prev = self.seen.get(key)
            if prev is not None and prev[0] != val:
                prev_val, prev_ref, how = prev
                self._lappend(
                    self.cands,
                    (
                        "stale",
                        (client, 0, pos, 0, slot),
                        rec.txid,
                        obj,
                        val,
                        prev_val,
                        ref,
                        prev_ref,
                        how,
                    ),
                )
            self._dset(self.seen, key, (val, ref, "read"))
        for slot, (obj, val) in enumerate(rec.txn.writes):
            key = (client, obj)
            prev = self.seen.get(key)
            if prev is not None:
                self._lappend(
                    self.cands,
                    ("wfr", (client, 0, pos, 1, slot), rec.txid, obj, prev[1]),
                )
            self._dset(self.seen, key, (val, ("tx", rec.txid), "write"))
            last = self.last_write.get(key)
            if last is None:
                n = self.nobj.get(client, 0)
                self._dset(self.obj_order, key, n)
                self._dset(self.nobj, client, n + 1)
            else:
                pidx = self.pair_count.get(key, 0)
                self._dset(self.pair_count, key, pidx + 1)
                self._lappend(
                    self.cands,
                    (
                        "mw",
                        (client, 1, self.obj_order[key], pidx, 0),
                        rec.txid,
                        last,
                        obj,
                    ),
                )
            self._dset(self.last_write, key, rec.txid)

    def _eval(self, cand: tuple) -> Optional[SessionViolation]:
        kind = cand[0]
        client = cand[1][0]
        lt = self.order.lt
        if kind == "stale":
            _, _, txid, obj, val, prev_val, ref, prev_ref, how = cand
            wid, prev_wid = self._wid(ref), self._wid(prev_ref)
            stale = (wid is None and prev_wid is not None) or (
                wid is not None and prev_wid is not None and lt(wid, prev_wid)
            )
            if not stale:
                return None
            guarantee = "read-your-writes" if how == "write" else "monotonic-reads"
            return SessionViolation(
                guarantee=guarantee,
                client=client,
                txid=txid,
                obj=obj,
                detail=(
                    f"{client} observed {obj}={prev_val!r} "
                    f"({how}) then read older {obj}={val!r} "
                    f"in {txid}"
                ),
            )
        if kind == "wfr":
            _, _, txid, obj, prev_ref = cand
            prev_wid = self._wid(prev_ref)
            if prev_wid is None or not lt(txid, prev_wid):
                return None
            return SessionViolation(
                guarantee="writes-follow-reads",
                client=client,
                txid=txid,
                obj=obj,
                detail=(
                    f"{client}'s write {txid} of {obj} is "
                    f"causally before previously observed "
                    f"writer {prev_wid}"
                ),
            )
        _, _, later, earlier, obj = cand
        if not lt(later, earlier):
            return None
        return SessionViolation(
            guarantee="monotonic-writes",
            client=client,
            txid=later,
            obj=obj,
            detail=(
                f"{client}'s later write {later} ordered "
                f"causally before earlier write {earlier}"
            ),
        )

    def anomalies(self) -> List[SessionViolation]:
        self._raise_if_corrupt()
        if not self.cands:
            return []
        out: List[SessionViolation] = []
        for cand in sorted(self.cands, key=lambda c: c[1]):
            v = self._eval(cand)
            if v is not None:
                out.append(v)
        return out
