"""Read-atomicity checking (RAMP's consistency level).

Read atomicity (Bailis et al., SIGMOD'14): transactions are visible
all-or-nothing — a *fractured read* occurs when transaction ``T`` reads
``W``'s write to one object but, for another object that ``W`` also
wrote and ``T`` also read, observes a version *older* than ``W``'s.

"Older" needs a version order.  Two sound sources are used:

* if ``writer(u)`` causally precedes ``W`` (program order ∪ reads-from),
  ``u`` is definitely older;
* if ``writer(u)`` completed in real time before ``W`` was invoked,
  ``u`` is definitely older.

Concurrent writers are left unflagged (either order is admissible), so
every reported fracture is genuine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.txn.history import History
from repro.txn.types import BOTTOM, ObjectId, TxnRecord, Value


@dataclass(frozen=True)
class FracturedRead:
    reader: str
    sibling_txn: str  # the transaction read fractionally
    obj_seen: ObjectId  # object where the sibling's write WAS observed
    obj_missed: ObjectId  # object where it was missed
    stale_value: Value

    def describe(self) -> str:
        return (
            f"{self.reader} observed {self.sibling_txn}'s write to "
            f"{self.obj_seen} but read the older {self.obj_missed}="
            f"{self.stale_value!r}"
        )


def find_fractured_reads(history: History) -> List[FracturedRead]:
    history.check_unique_values()
    order = history.causal_order()
    writers = history.writer_index()
    by_id = history.by_txid()

    def definitely_older(u_writer: Optional[TxnRecord], w: TxnRecord) -> bool:
        if u_writer is None:  # ⊥ precedes every write
            return True
        if order.lt(u_writer.txid, w.txid):
            return True
        return u_writer.completed_at < w.invoked_at

    fractures: List[FracturedRead] = []
    for rec in history.records:
        for obj, val in rec.reads.items():
            if val is BOTTOM:
                continue
            w = writers.get((obj, val))
            if w is None:
                continue
            for sibling_obj in w.txn.write_set:
                if sibling_obj == obj or sibling_obj not in rec.reads:
                    continue
                got = rec.reads[sibling_obj]
                if got == w.txn.write_map[sibling_obj]:
                    continue
                got_writer = (
                    None if got is BOTTOM else writers.get((sibling_obj, got))
                )
                # reading a *newer* sibling version is allowed under RA
                if got_writer is not None and not definitely_older(got_writer, w):
                    continue
                if definitely_older(got_writer, w):
                    fractures.append(
                        FracturedRead(
                            reader=rec.txid,
                            sibling_txn=w.txid,
                            obj_seen=obj,
                            obj_missed=sibling_obj,
                            stale_value=got,
                        )
                    )
    return fractures


def check_read_atomic(history: History) -> bool:
    return not find_fractured_reads(history)
