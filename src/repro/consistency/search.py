"""The serialization-search engine shared by the exact checkers.

Both the causal-consistency checker (Definition 1: one serialization per
client, respecting the causal order, legal for that client's
transactions) and the (strict) serializability checker (one global
serialization, legal for everyone) reduce to the same search problem:

    find a linear extension of a given partial order over the
    transaction records such that every record in a designated *legality
    set* reads, for each object, exactly the value of the last preceding
    write (or the initial value ⊥).

The search is a DFS over prefixes with memoization on
``(placed-set, last-written-values)`` — two prefixes that placed the same
transactions and left objects in the same state have identical futures.
Histories here are small (the checkers cap the input size), so the
exponential worst case is acceptable; a step budget turns pathological
instances into an explicit *inconclusive* answer rather than a hang.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.engine.outcome import SearchOutcome
from repro.txn.types import BOTTOM, ObjectId, TxnRecord, Value


@dataclass
class SearchResult(SearchOutcome):
    """Serialization-search outcome, in the engine's budget vocabulary.

    ``steps`` and ``exhausted`` come from :class:`SearchOutcome`;
    ``exhausted_budget`` stays as a read alias for existing callers.
    """

    found: bool = False
    order: Optional[List[str]] = None  # txids, when found

    @property
    def exhausted_budget(self) -> bool:
        return self.exhausted

    @property
    def conclusive(self) -> bool:
        return self.found or not self.exhausted


def find_legal_serialization(
    records: Sequence[TxnRecord],
    edges: Iterable[Tuple[str, str]],
    legality_clients: Optional[Set[str]] = None,
    max_steps: int = 200_000,
) -> SearchResult:
    """Search for a legal linear extension.

    ``edges`` is the partial order to respect (pairs of txids).
    ``legality_clients`` restricts the read-legality requirement to the
    records of those clients (``None`` = all records must be legal).
    """
    n = len(records)
    if n == 0:
        return SearchResult(found=True, order=[])
    idx = {r.txid: i for i, r in enumerate(records)}
    preds: List[int] = [0] * n  # predecessor counts
    succs: List[List[int]] = [[] for _ in range(n)]
    seen_edges: Set[Tuple[int, int]] = set()
    for a, b in edges:
        ia, ib = idx.get(a), idx.get(b)
        if ia is None or ib is None or ia == ib:
            continue
        if (ia, ib) in seen_edges:
            continue
        seen_edges.add((ia, ib))
        succs[ia].append(ib)
        preds[ib] += 1

    must_be_legal = [
        legality_clients is None or r.client in legality_clients for r in records
    ]

    objects: List[ObjectId] = sorted(
        {o for r in records for o in r.txn.objects}
    )
    obj_idx = {o: i for i, o in enumerate(objects)}

    # state: bitmask of placed records + tuple of last-written values
    init_state: Tuple[Value, ...] = tuple(BOTTOM for _ in objects)
    failed: Set[Tuple[int, Tuple[Value, ...]]] = set()
    steps = 0
    budget_hit = False
    order_out: List[int] = []

    def legal_here(rec: TxnRecord, state: Tuple[Value, ...]) -> bool:
        for obj, val in rec.reads.items():
            if state[obj_idx[obj]] != val:
                return False
        return True

    def apply_writes(rec: TxnRecord, state: Tuple[Value, ...]) -> Tuple[Value, ...]:
        if not rec.txn.writes:
            return state
        lst = list(state)
        for obj, val in rec.txn.writes:
            lst[obj_idx[obj]] = val
        return tuple(lst)

    def dfs(mask: int, state: Tuple[Value, ...], pred_count: List[int]) -> bool:
        nonlocal steps, budget_hit
        if mask == (1 << n) - 1:
            return True
        key = (mask, state)
        if key in failed:
            return False
        steps += 1
        if steps > max_steps:
            budget_hit = True
            return False
        for i in range(n):
            if mask & (1 << i) or pred_count[i] > 0:
                continue
            rec = records[i]
            if must_be_legal[i] and not legal_here(rec, state):
                continue
            for j in succs[i]:
                pred_count[j] -= 1
            order_out.append(i)
            ok = dfs(mask | (1 << i), apply_writes(rec, state), pred_count)
            if ok:
                return True
            order_out.pop()
            for j in succs[i]:
                pred_count[j] += 1
            if budget_hit:
                return False
        failed.add(key)
        return False

    found = dfs(0, init_state, preds)
    if found:
        return SearchResult(
            found=True, order=[records[i].txid for i in order_out], steps=steps
        )
    return SearchResult(found=False, steps=steps, exhausted=budget_hit)
