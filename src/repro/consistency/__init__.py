"""Consistency checkers.

* :func:`check_causal` / :func:`check_causal_exact` /
  :func:`find_causal_anomalies` — Definition 1 of the paper;
* :func:`check_serializable` / :func:`check_strict_serializable`;
* :func:`check_read_atomic` / :func:`find_fractured_reads` — RAMP's level;
* :func:`check_sessions` — the four session guarantees;
* :func:`check_history` — one-call verdict at a claimed level;
* :class:`IncrementalCausalChecker` / :class:`IncrementalReadAtomicChecker`
  / :class:`IncrementalSessionChecker` — delta-driven, checkpointable
  versions of the scans above for the exploration hot path.
"""

from repro.consistency.atomicity import (
    FracturedRead,
    check_read_atomic,
    find_fractured_reads,
)
from repro.consistency.incremental import (
    IncrementalCausalChecker,
    IncrementalChecker,
    IncrementalReadAtomicChecker,
    IncrementalSessionChecker,
)
from repro.consistency.causal import (
    CausalAnomaly,
    CausalCheckResult,
    check_causal,
    check_causal_exact,
    find_causal_anomalies,
)
from repro.consistency.report import LEVELS, ConsistencyReport, check_history
from repro.consistency.search import SearchResult, find_legal_serialization
from repro.consistency.serializability import (
    SerializabilityResult,
    check_serializable,
    check_strict_serializable,
)
from repro.consistency.sessions import SessionViolation, check_sessions

__all__ = [
    "FracturedRead",
    "check_read_atomic",
    "find_fractured_reads",
    "CausalAnomaly",
    "CausalCheckResult",
    "check_causal",
    "check_causal_exact",
    "find_causal_anomalies",
    "LEVELS",
    "ConsistencyReport",
    "check_history",
    "SearchResult",
    "find_legal_serialization",
    "SerializabilityResult",
    "check_serializable",
    "check_strict_serializable",
    "SessionViolation",
    "check_sessions",
    "IncrementalChecker",
    "IncrementalCausalChecker",
    "IncrementalReadAtomicChecker",
    "IncrementalSessionChecker",
]
