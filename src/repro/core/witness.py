"""Structured evidence produced by the impossibility engine.

Each verdict corresponds to one arm of the theorem's trade-off:

* ``NO_MULTI_WRITE`` — the protocol refused the multi-object write
  transaction ``Tw`` (it keeps fast ROTs by giving up W);
* ``NOT_FAST`` — the measured ROT properties violate Definition 4
  (≥2 rounds, blocking, or multi-value: the protocol keeps W by giving
  up fastness);
* ``CAUSAL_VIOLATION`` — the spliced execution γ (or δ) made a fast
  read-only transaction return a mix of old and new values,
  contradicting Lemma 1: the protocol "achieves" all four properties and
  is therefore not causally consistent.  The witness carries the full
  mixed read and the checker's anomaly;
* ``UNBOUNDED_VISIBILITY`` — every induction round forced another
  necessary cross-server (or implicit via-client) message while the
  written values stayed invisible: the troublesome infinite execution
  materialized up to the round budget;
* ``STALLED`` — the solo write-only transaction reached quiescence with
  its values invisible and no further messages: minimal progress
  (Definition 3) is violated outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.txn.types import ObjectId, Value

NO_MULTI_WRITE = "NO_MULTI_WRITE"
NOT_FAST = "NOT_FAST"
CAUSAL_VIOLATION = "CAUSAL_VIOLATION"
UNBOUNDED_VISIBILITY = "UNBOUNDED_VISIBILITY"
STALLED = "STALLED"
INCONCLUSIVE = "INCONCLUSIVE"

OUTCOMES = (
    NO_MULTI_WRITE,
    NOT_FAST,
    CAUSAL_VIOLATION,
    UNBOUNDED_VISIBILITY,
    STALLED,
    INCONCLUSIVE,
)


@dataclass
class MixedReadWitness:
    """A concrete Lemma 1 contradiction: a fast ROT read a mix of values."""

    reader: str
    reads: Dict[ObjectId, Value]
    old_values: Dict[ObjectId, Value]
    new_values: Dict[ObjectId, Value]
    construction: str  # "gamma" (claim 1) or "delta" (claim 2)
    k: int
    anomalies: List[Any] = field(default_factory=list)
    trace_excerpt: str = ""

    def is_mixed(self) -> bool:
        saw_old = any(self.reads.get(o) == v for o, v in self.old_values.items())
        saw_new = any(self.reads.get(o) == v for o, v in self.new_values.items())
        return saw_old and saw_new

    def describe(self) -> str:
        pairs = ", ".join(f"{o}={v!r}" for o, v in sorted(self.reads.items()))
        return (
            f"spliced execution {self.construction} (round k={self.k}): "
            f"read-only transaction by {self.reader} returned ({pairs}) — "
            f"a mix of pre-write and written values, contradicting Lemma 1"
        )


@dataclass
class TheoremVerdict:
    """Outcome of running the impossibility engine against one protocol."""

    protocol: str
    outcome: str
    k_reached: int = 0
    witness: Optional[MixedReadWitness] = None
    detail: str = ""
    #: measured fast-ROT properties (present when the fast check ran)
    fast_report: Optional[Any] = None
    #: messages the induction forced, per round
    forced_messages: List[str] = field(default_factory=list)

    @property
    def consistent_with_theorem(self) -> bool:
        """The theorem says: a protocol never keeps all four properties.

        Every outcome except ``INCONCLUSIVE`` evidences giving up at
        least one property (or giving up causal consistency itself).
        """
        return self.outcome in (
            NO_MULTI_WRITE,
            NOT_FAST,
            CAUSAL_VIOLATION,
            UNBOUNDED_VISIBILITY,
            STALLED,
        )

    def describe(self) -> str:
        lines = [f"{self.protocol}: {self.outcome} (k={self.k_reached})"]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.witness is not None:
            lines.append("  " + self.witness.describe())
            for a in self.witness.anomalies[:3]:
                desc = a.describe() if hasattr(a, "describe") else str(a)
                lines.append(f"    anomaly: {desc}")
        for m in self.forced_messages:
            lines.append(f"  forced: {m}")
        return "\n".join(lines)
