"""Theorem 1, as an executable check.

``check_impossibility(protocol)`` confronts a protocol with the
theorem's four properties and reports which one it gives up:

1. **W** — can it even accept the multi-object write-only transaction
   ``T_w = (w(X0)x0, w(X1)x1)``?  (COPS, COPS-SNOW, Orbe, GentleRain,
   Contrarian refuse → ``NO_MULTI_WRITE``.)
2. **N/O/V** — are its read-only transactions measured fast on a
   concurrent probe workload?  (Wren, Cure, Eiger, RAMP, Spanner,
   Calvin, COPS-RW fail at least one sub-property → ``NOT_FAST``.)
3. If it claims all four, the Lemma 3 induction runs: either a spliced
   execution produces a mixed read — a causal-consistency violation
   witness (``CAUSAL_VIOLATION``, e.g. FastClaim) — or the write's
   visibility keeps being pushed out by forced messages round after
   round (``UNBOUNDED_VISIBILITY``) or stalls outright (``STALLED``).

Every outcome demonstrates the theorem's trade-off on that protocol.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.induction import InductionConfig, run_induction
from repro.core.properties import FastRotReport, measure_fast_rot
from repro.core.setup import SetupError, prepare_theorem_system
from repro.core.witness import (
    INCONCLUSIVE,
    NO_MULTI_WRITE,
    NOT_FAST,
    STALLED,
    TheoremVerdict,
)
from repro.txn.client import UnsupportedTransaction
from repro.workloads.generators import WorkloadSpec


def check_impossibility(
    protocol: str,
    max_k: int = 8,
    objects: Sequence[str] = ("X0", "X1"),
    n_servers: int = 2,
    fast_spec: Optional[WorkloadSpec] = None,
    skip_fast_check: bool = False,
    **params: Any,
) -> TheoremVerdict:
    """Run the full Theorem 1 check against one protocol."""
    fast_report: Optional[FastRotReport] = None
    if not skip_fast_check:
        fast_report = measure_fast_rot(protocol, spec=fast_spec, **params)

    # property W: does the protocol accept T_w at all?
    try:
        tsys = prepare_theorem_system(
            protocol, objects=objects, n_servers=n_servers, **params
        )
    except SetupError as exc:
        return TheoremVerdict(
            protocol=protocol,
            outcome=STALLED,
            detail=f"setup failed: {exc}",
            fast_report=fast_report,
        )
    cw_client = tsys.system.client(tsys.cw)
    try:
        cw_client.validate(tsys.tw())
    except UnsupportedTransaction as exc:
        return TheoremVerdict(
            protocol=protocol,
            outcome=NO_MULTI_WRITE,
            detail=(
                f"the protocol refuses multi-object write transactions: {exc} "
                "— it keeps fast ROTs by giving up W"
            ),
            fast_report=fast_report,
        )

    # properties N/O/V: measured fastness
    if fast_report is not None and not fast_report.fast:
        return TheoremVerdict(
            protocol=protocol,
            outcome=NOT_FAST,
            detail=(
                "the protocol keeps multi-object write transactions by "
                "giving up " + "; ".join(fast_report.failing_properties())
            ),
            fast_report=fast_report,
        )

    # the protocol claims everything: run the induction
    verdict = run_induction(tsys, InductionConfig(max_k=max_k))
    verdict.fast_report = fast_report
    return verdict


def check_all(max_k: int = 8, **params: Any):
    """Run the theorem check against every registered protocol."""
    from repro.protocols.registry import protocol_names

    return {
        name: check_impossibility(name, max_k=max_k, **params)
        for name in protocol_names()
    }
