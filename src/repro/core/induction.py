"""The Lemma 3 induction: constructing the troublesome execution.

Round ``k`` runs the write-only transaction ``T_w`` solo from
``C_{k-1}`` under a fair adversary, watching for the *necessary message*
``ms_k``:

* **explicit** — a message from ``p_{k%2}`` to ``p_{(k-1)%2}``, or
* **implicit** — a message from ``p_{k%2}`` to ``c_w`` such that, after
  consuming it, ``c_w`` sends a message to ``p_{(k-1)%2}``.

Claim 1 of the lemma says one of these must occur before the written
values become visible; claim 2 says that at the cut ``C_k`` (right after
``ms_k`` is sent) the values are still invisible.  The engine checks
both *operationally*:

* if the values become visible with no ``ms_k`` (claim 1's premise
  violated — e.g. FastClaim), it builds the paper's γ: σ_old from
  ``C_{k-1}``, the spliced β_new, σ_new — and the resulting fast ROT
  returns a mix of old and new values: a causal-consistency violation
  witness;
* if at ``C_k`` some value is already visible (claim 2's premise
  violated), it builds δ the same way with ρ_new;
* otherwise it advances to round ``k+1``; reaching ``max_k`` with a
  forced message every round is the troublesome execution materialized
  (``UNBOUNDED_VISIBILITY``).

Every splice is self-validating: the witness is only accepted if the
spliced execution — a legal protocol execution assembled purely from
recorded commands — actually produced the mixed read, and the causal
checker confirms the anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.consistency.causal import find_causal_anomalies
from repro.core.constructions import (
    ConstructionError,
    finish_with_new,
    run_sigma_old,
)
from repro.core.setup import TheoremSystem
from repro.core.splicing import RecordedFragment, SpliceError, splice_new
from repro.core.visibility import probe_read
from repro.core.witness import (
    CAUSAL_VIOLATION,
    INCONCLUSIVE,
    STALLED,
    UNBOUNDED_VISIBILITY,
    MixedReadWitness,
    TheoremVerdict,
)
from repro.sim.executor import Configuration
from repro.sim.replay import ReplayError
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.trace import StepEvent
from repro.txn.history import History, build_history
from repro.txn.types import TxnRecord


@dataclass
class MsDetector:
    """Watches one round's trace for the necessary message ``ms_k``."""

    cw: str
    old_server: str  # p_{k%2}
    new_server: str  # p_{(k-1)%2}
    consumed_from_old: bool = False
    found: Optional[str] = None  # description, once detected

    def observe(self, event) -> Optional[str]:
        if self.found is not None or not isinstance(event, StepEvent):
            return self.found
        if event.pid == self.cw:
            if any(m.src == self.old_server for m in event.received):
                self.consumed_from_old = True
            if self.consumed_from_old and any(
                m.dst == self.new_server for m in event.sent
            ):
                self.found = (
                    f"implicit: {self.old_server} -> {self.cw} -> {self.new_server}"
                )
        elif event.pid == self.old_server:
            if any(m.dst == self.new_server for m in event.sent):
                self.found = f"explicit: {self.old_server} -> {self.new_server}"
        return self.found


def _witness_history(tsys: TheoremSystem, reader_record: TxnRecord) -> History:
    """The history of the spliced execution, with ``T_w`` closed off.

    β_new drops ``c_w``'s completing steps, so ``T_w`` may be active at
    the end of γ; the paper's ``comm(H)`` closure adds the missing write
    responses — here, a synthesized record for ``T_w``.
    """
    hist = build_history(tsys.sim)
    if not any(r.txid == "Tw" for r in hist.records):
        hist.records.append(
            TxnRecord(
                txn=tsys.tw(),
                client=tsys.cw,
                reads={},
                invoked_at=10**9,
                completed_at=10**9 + 1,
            )
        )
    if not any(r.txid == reader_record.txid for r in hist.records):
        hist.records.append(reader_record)
    return hist


def build_splice_witness(
    tsys: TheoremSystem,
    start: Configuration,
    fragment: RecordedFragment,
    new_server: str,
    k: int,
    construction: str,
) -> MixedReadWitness:
    """Assemble γ (or δ) from ``start`` and return its witness.

    Raises :class:`SpliceError`/:class:`ConstructionError` when the
    protocol broke a premise mid-splice.
    """
    sim = tsys.sim
    sim.restore(start)
    reader = tsys.probes[1]
    old_servers = [s for s in tsys.servers if s != new_server]
    sigma = run_sigma_old(
        sim,
        reader,
        tsys.objects,
        old_servers=old_servers,
        new_servers=[new_server],
        txid=f"Tr_{construction}{k}",
    )
    beta_new = splice_new(fragment, tsys.cw, new_server, tsys.servers)
    try:
        sim.replay(beta_new, strict=True)
    except ReplayError as exc:
        raise SpliceError(
            f"replay of {construction}_new failed (a splice premise did not "
            f"hold): {exc}"
        ) from exc
    record = finish_with_new(sim, sigma)
    witness = MixedReadWitness(
        reader=reader,
        reads=dict(record.reads),
        old_values=dict(tsys.init_values),
        new_values=dict(tsys.new_values),
        construction=construction,
        k=k,
    )
    if witness.is_mixed():
        witness.anomalies = find_causal_anomalies(_witness_history(tsys, record))
    return witness


@dataclass
class InductionConfig:
    max_k: int = 8
    solo_budget: int = 30_000
    probe_every: int = 25


def run_induction(
    tsys: TheoremSystem, config: Optional[InductionConfig] = None
) -> TheoremVerdict:
    """Run the Lemma 3 induction against ``tsys`` (two-server form)."""
    cfg = config or InductionConfig()
    sim = tsys.sim
    if tsys.c0 is None:
        raise ValueError("theorem system not prepared (no C0)")
    servers = tsys.servers
    if len(servers) != 2:
        raise ValueError(
            "run_induction is the two-server Theorem 1 engine; use "
            "repro.core.general for the m-server / partial-replication case"
        )
    protocol = tsys.system.info.name
    prev = tsys.c0
    invoked = False
    forced: List[str] = []

    for k in range(1, cfg.max_k + 1):
        p_old = servers[k % 2]
        p_new = servers[(k - 1) % 2]
        sim.restore(prev)
        fragment = RecordedFragment([], [])
        log_mark, trace_mark = sim.log_mark(), sim.trace.mark()
        if not invoked:
            sim.invoke(tsys.cw, tsys.tw())
            invoked = True
        detector = MsDetector(cw=tsys.cw, old_server=p_old, new_server=p_new)
        # replay detection over anything already recorded (the invoke)
        for ev in sim.trace.events[trace_mark:]:
            detector.observe(ev)

        sched = RoundRobinScheduler()
        solo = (tsys.cw,) + tuple(servers)
        events_run = 0
        ms_desc: Optional[str] = None
        visible_both = False
        quiescent = False

        def capture() -> Tuple[int, int]:
            nonlocal log_mark, trace_mark
            fragment.extend(sim.log[log_mark:], sim.trace.events[trace_mark:])
            log_mark, trace_mark = sim.log_mark(), sim.trace.mark()
            return log_mark, trace_mark

        def probe_now() -> Optional[Dict]:
            nonlocal log_mark, trace_mark
            capture()
            reads = probe_read(
                sim, tsys.probes[0], tsys.objects, tsys.service_pids, restore=True
            )
            # drop the probe's log/trace pollution from future captures
            log_mark, trace_mark = sim.log_mark(), sim.trace.mark()
            return reads

        while events_run < cfg.solo_budget:
            progressed = sched.tick(sim, pids=solo)
            if progressed:
                events_run += 1
                ms_desc = detector.observe(sim.trace.events[-1])
                if ms_desc is not None:
                    break
            if not progressed or events_run % cfg.probe_every == 0:
                reads = probe_now()
                if reads is not None and all(
                    reads.get(o) == v for o, v in tsys.new_values.items()
                ):
                    visible_both = True
                    break
                if not progressed:
                    quiescent = True
                    break

        capture()

        if ms_desc is None and visible_both:
            # claim 1's premise is violated: the values became visible with
            # no necessary message — build γ and exhibit the mixed read.
            return try_splice_candidates(
                tsys, prev, fragment, [p_new, p_old], k, "gamma", forced
            )
        if ms_desc is None and quiescent:
            return TheoremVerdict(
                protocol=protocol,
                outcome=STALLED,
                k_reached=k,
                detail=(
                    "T_w executing solo reached quiescence with its values "
                    "invisible: minimal progress (Definition 3) violated"
                ),
                forced_messages=forced,
            )
        if ms_desc is None:
            return TheoremVerdict(
                protocol=protocol,
                outcome=INCONCLUSIVE,
                k_reached=k,
                detail=f"solo budget exhausted in round {k}",
                forced_messages=forced,
            )

        # ms_k found: C_k is the configuration right after its send; the
        # probe branches from the same snapshot we keep as the next C_{k-1}
        forced.append(f"k={k}: {ms_desc}")
        c_k = sim.snapshot()
        reads = probe_read(
            sim, tsys.probes[0], tsys.objects, tsys.service_pids,
            restore=True, snap=c_k,
        )
        visible_objs = [
            o
            for o, v in tsys.new_values.items()
            if reads is not None and reads.get(o) == v
        ]
        if visible_objs:
            # claim 2's premise is violated: a value is visible at C_k —
            # build δ from ρ = α'_k and exhibit the mixed read.  The best
            # "new" role is the server actually holding a visible value.
            candidates = [tsys.primary(o) for o in visible_objs]
            candidates += [p for p in (p_new, p_old) if p not in candidates]
            return try_splice_candidates(
                tsys, prev, fragment, candidates, k, "delta", forced
            )
        prev = c_k

    return TheoremVerdict(
        protocol=protocol,
        outcome=UNBOUNDED_VISIBILITY,
        k_reached=cfg.max_k,
        detail=(
            f"every round up to k={cfg.max_k} forced another necessary "
            "message while T_w's values stayed invisible — the troublesome "
            "execution of Lemma 3, materialized"
        ),
        forced_messages=forced,
    )


def try_splice_candidates(
    tsys: TheoremSystem,
    start: Configuration,
    fragment: RecordedFragment,
    candidates: Sequence[str],
    k: int,
    construction: str,
    forced: List[str],
) -> TheoremVerdict:
    """Try each candidate ``p`` role until a splice yields a mixed read."""
    last: Optional[TheoremVerdict] = None
    seen = set()
    for p_new in candidates:
        if p_new in seen:
            continue
        seen.add(p_new)
        verdict = _conclude_with_splice(
            tsys, start, fragment, p_new, k, construction, forced
        )
        if verdict.outcome == CAUSAL_VIOLATION:
            return verdict
        last = verdict
    assert last is not None
    return last


def _conclude_with_splice(
    tsys: TheoremSystem,
    start: Configuration,
    fragment: RecordedFragment,
    p_new: str,
    k: int,
    construction: str,
    forced: List[str],
) -> TheoremVerdict:
    protocol = tsys.system.info.name
    try:
        witness = build_splice_witness(tsys, start, fragment, p_new, k, construction)
    except (SpliceError, ConstructionError) as exc:
        return TheoremVerdict(
            protocol=protocol,
            outcome=INCONCLUSIVE,
            k_reached=k,
            detail=f"splice failed: {exc}",
            forced_messages=forced,
        )
    if witness.is_mixed():
        return TheoremVerdict(
            protocol=protocol,
            outcome=CAUSAL_VIOLATION,
            k_reached=k,
            witness=witness,
            detail=(
                "the spliced execution made a fast ROT return a mix of old "
                "and new values (Lemma 1 contradiction): the protocol is "
                "not causally consistent"
            ),
            forced_messages=forced,
        )
    return TheoremVerdict(
        protocol=protocol,
        outcome=INCONCLUSIVE,
        k_reached=k,
        witness=witness,
        detail=(
            f"splice {construction} completed but the read was not mixed: "
            f"{witness.reads}"
        ),
        forced_messages=forced,
    )
