"""Bounded model checking: the brute-force complement to the proof engine.

The proof-guided engine (:mod:`repro.core.induction`) knows *which*
adversary schedule exposes a protocol; this module instead enumerates
**every** adversary schedule of a small scenario — a depth-first search
over the tree of enabled events, using configuration snapshots to branch
and configuration fingerprints to prune revisits — and checks every
completed history for causal anomalies.

On a two-server scenario with one multi-object write and one fast ROT it
*proves* (within the scope) that COPS-SNOW has no violating schedule and
*finds* FastClaim's violating schedules without being told where to look.
The benchmark compares the two approaches: the model checker visits
hundreds of states; the proof engine constructs one splice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.consistency.causal import find_causal_anomalies
from repro.protocols.base import System
from repro.sim.executor import SimCounters, Simulation
from repro.sim.messages import ProcessId
from repro.txn.client import ClientBase
from repro.txn.history import build_history
from repro.txn.types import Transaction


@dataclass
class ExplorationResult:
    """Outcome of an exhaustive exploration."""

    protocol: str
    states_visited: int
    schedules_completed: int
    truncated: int  # branches cut by the depth or state budget
    violations: List[Tuple[List[str], List]] = field(default_factory=list)
    #: snapshot/restore cost accounting for the run (see SimCounters)
    counters: Optional[SimCounters] = None

    @property
    def violation_found(self) -> bool:
        return bool(self.violations)

    def describe(self) -> str:
        head = (
            f"{self.protocol}: explored {self.states_visited} states, "
            f"{self.schedules_completed} complete schedules, "
            f"{self.truncated} truncated"
        )
        if not self.violations:
            lines = [head + " — no causal violation in scope"]
        else:
            sched, anomalies = self.violations[0]
            lines = [head + f" — {len(self.violations)} violating schedule(s)"]
            lines.append("  first violating schedule:")
            for s in sched:
                lines.append(f"    {s}")
            for a in anomalies[:2]:
                lines.append(f"  anomaly: {a.describe()}")
        if self.counters is not None:
            lines.append(f"  cost: {self.counters.describe()}")
        return "\n".join(lines)


def _enabled_events(sim: Simulation, pids: Sequence[ProcessId]):
    """All enabled (label, apply) choices for the adversary."""
    events = []
    allowed = set(pids)
    for m in sim.network.pending():
        if m.dst in allowed:
            events.append(
                (
                    f"deliver {m.src}->{m.dst}#{m.link_seq}",
                    ("d", m.src, m.dst, m.link_seq),
                )
            )
    for pid in pids:
        proc = sim.processes[pid]
        # repro-lint: disable=RL402 — the exploration adversary *is* the
        # scheduler: reading the income buffer to enumerate enabled events
        # is its job, and it only reads (deliveries go through sim.deliver).
        if sim.network.income[pid] or proc.wants_step():
            events.append((f"step {pid}", ("s", pid)))
    return events


def explore(
    system: System,
    script: Sequence[Tuple[str, Transaction]],
    max_depth: int = 40,
    max_states: int = 50_000,
    first_violation_only: bool = True,
    checker: str = "causal",
) -> ExplorationResult:
    """Exhaustively explore every schedule of ``script`` on ``system``.

    ``script`` is a list of (client, transaction) pairs, all invoked up
    front; the adversary then chooses every interleaving of steps and
    deliveries.  Each maximal (quiescent) schedule's history is checked
    with ``checker`` — ``"causal"`` (Definition 1 anomalies) or
    ``"read-atomic"`` (fractured reads).  The latter supports the
    paper's closing question about the weakest consistency condition for
    which the impossibility holds: it lets the explorer hunt for
    schedules where a "fast" protocol breaks read atomicity, a strictly
    weaker level than causal consistency.
    """
    sim = system.sim
    pids = tuple(system.clients) + tuple(system.service_pids)
    for client, txn in script:
        sim.invoke(client, txn)

    result = ExplorationResult(protocol=system.info.name, states_visited=0,
                               schedules_completed=0, truncated=0)
    seen: Set[bytes] = set()
    trail: List[str] = []
    exhausted = False  # global state budget spent: short-circuit all descent

    def all_done() -> bool:
        return all(
            isinstance(p, ClientBase) and p.current is None and not p.pending
            for p in (sim.processes[c] for c in system.clients)
        )

    if checker == "causal":
        find_anomalies = find_causal_anomalies
    elif checker == "read-atomic":
        from repro.consistency.atomicity import find_fractured_reads

        find_anomalies = find_fractured_reads
    else:
        raise ValueError(f"unknown checker {checker!r}")

    def check_leaf() -> None:
        result.schedules_completed += 1
        hist = build_history(sim, clients=system.clients)
        anomalies = find_anomalies(hist)
        if anomalies:
            result.violations.append((list(trail), anomalies))

    def dfs(depth: int) -> bool:
        """Returns True to abort the whole search (first violation)."""
        nonlocal exhausted
        result.states_visited += 1
        if result.states_visited > max_states:
            # budget spent: cut this branch once and stop all further
            # descent (the exhausted flag unwinds the sibling loops too)
            exhausted = True
            result.truncated += 1
            return False
        events = _enabled_events(sim, pids)
        if not events:
            if all_done():
                check_leaf()
                return first_violation_only and result.violation_found
            return False  # stuck without finishing: not a legal maximal run
        if depth >= max_depth:
            result.truncated += 1
            return False
        # one snapshot per node: every child branch mutates the live sim
        # and restores from this same (immutable) snapshot afterwards.
        # Fingerprinting right after the snapshot also attaches the
        # per-process fingerprint dumps to it, so each child restore
        # re-primes the fingerprint cache and the child's fingerprint
        # only re-serializes what its one event touched.
        snap = sim.snapshot()
        fp = sim.fingerprint(snap)
        if fp in seen:
            return False
        seen.add(fp)
        for i, (label, action) in enumerate(events):
            if action[0] == "d":
                sim.deliver(action[1], action[2], action[3])
            else:
                sim.step(action[1])
            trail.append(label)
            abort = dfs(depth + 1)
            trail.pop()
            sim.restore(snap)
            if abort:
                return True
            if exhausted:
                result.truncated += len(events) - 1 - i  # cut siblings
                return False
        return False

    dfs(0)
    result.counters = replace(sim.counters)
    return result


def explore_write_read_race(
    protocol: str,
    max_depth: int = 40,
    max_states: int = 50_000,
    checker: str = "causal",
    **params,
) -> ExplorationResult:
    """The canonical scenario: the theorem's write racing a fast ROT.

    Builds the Figure-1 style configuration (initial values written and
    read by the writer client), then explores every interleaving of a
    multi-object write transaction with one read-only transaction.
    Protocols without write transactions use two single writes instead
    (a causal chain through the writing client).
    """
    from repro.core.setup import prepare_theorem_system
    from repro.protocols import get_protocol
    from repro.txn.types import read_only_txn, write_only_txn

    tsys = prepare_theorem_system(protocol, n_probes=2, **params)
    system = tsys.system
    if get_protocol(protocol).supports_wtx:
        script = [
            (tsys.cw, write_only_txn(dict(tsys.new_values), txid="Tw")),
            (tsys.probes[0], read_only_txn(tsys.objects, txid="Tr")),
        ]
    else:
        script = [
            (tsys.cw, write_only_txn({"X0": tsys.new_values["X0"]}, txid="Tw0")),
            (tsys.cw, write_only_txn({"X1": tsys.new_values["X1"]}, txid="Tw1")),
            (tsys.probes[0], read_only_txn(tsys.objects, txid="Tr")),
        ]
    return explore(
        system, script, max_depth=max_depth, max_states=max_states, checker=checker
    )
