"""Bounded model checking: the brute-force complement to the proof engine.

The proof-guided engine (:mod:`repro.core.induction`) knows *which*
adversary schedule exposes a protocol; this module instead enumerates
**every** adversary schedule of a small scenario and checks every
completed history for anomalies.  On a two-server scenario with one
multi-object write and one fast ROT it *proves* (within the scope) that
COPS-SNOW has no violating schedule and *finds* FastClaim's violating
schedules without being told where to look.

The search itself lives in :mod:`repro.engine` — a common frontier core
with DFS/BFS/random strategies, sleep-set partial-order reduction and a
parallel frontier; this module is the scenario-level wrapper: it invokes
the script, picks the adversary's process set, and forwards the knobs.
:class:`ExplorationResult` is re-exported from the engine so existing
callers keep importing it from here.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.engine import ExplorationResult, run as engine_run
from repro.protocols.base import System
from repro.txn.types import Transaction

__all__ = ["ExplorationResult", "explore", "explore_write_read_race"]


def explore(
    system: System,
    script: Sequence[Tuple[str, Transaction]],
    max_depth: int = 40,
    max_states: int = 50_000,
    first_violation_only: bool = True,
    checker: str = "causal",
    strategy: str = "dfs",
    por: bool = False,
    workers: int = 1,
    rng_seed: int = 0,
    incremental: Optional[bool] = None,
    checker_oracle: bool = False,
    per_worker_budget: bool = False,
) -> ExplorationResult:
    """Exhaustively explore every schedule of ``script`` on ``system``.

    ``script`` is a list of (client, transaction) pairs, all invoked up
    front; the adversary then chooses every interleaving of steps and
    deliveries.  Each maximal (quiescent) schedule's history is checked
    with ``checker`` — ``"causal"`` (Definition 1 anomalies),
    ``"read-atomic"`` (fractured reads) or ``"sessions"`` (the four
    session guarantees).  The weaker levels support the paper's closing
    question about the weakest consistency condition for which the
    impossibility holds: they let the explorer hunt for schedules where
    a "fast" protocol breaks read atomicity or a session guarantee,
    strictly weaker levels than causal consistency.

    ``strategy``, ``por`` and ``workers`` forward to the engine:
    sleep-set partial-order reduction keeps one representative per
    Mazurkiewicz trace (identical verdicts, far fewer states), and
    ``workers > 1`` runs the work-stealing frontier with a shared
    fingerprint claim set.  ``max_states`` is a global pool-wide budget;
    ``per_worker_budget=True`` restores the pre-stealing per-worker cap.
    DFS walks use the incremental delta checkers by default
    (``incremental=False`` forces the batch scan; ``checker_oracle=True``
    cross-checks every leaf against it).
    """
    sim = system.sim
    for client, txn in script:
        sim.invoke(client, txn)
    return engine_run(
        system,
        checker=checker,
        strategy=strategy,
        por=por,
        workers=workers,
        max_depth=max_depth,
        max_states=max_states,
        first_violation_only=first_violation_only,
        rng_seed=rng_seed,
        incremental=incremental,
        checker_oracle=checker_oracle,
        per_worker_budget=per_worker_budget,
    )


def explore_write_read_race(
    protocol: str,
    max_depth: int = 40,
    max_states: int = 50_000,
    checker: str = "causal",
    strategy: str = "dfs",
    por: bool = False,
    workers: int = 1,
    first_violation_only: bool = True,
    incremental: Optional[bool] = None,
    checker_oracle: bool = False,
    per_worker_budget: bool = False,
    **params,
) -> ExplorationResult:
    """The canonical scenario: the theorem's write racing a fast ROT.

    Builds the Figure-1 style configuration (initial values written and
    read by the writer client), then explores every interleaving of a
    multi-object write transaction with one read-only transaction.
    Protocols without write transactions use two single writes instead
    (a causal chain through the writing client).

    ``por=True`` requires the protocol's registry row to declare
    ``por_safe``; the synchronized-clock families (TrueTime, GST-style
    stability) branch on the global step counter and therefore fall
    outside the :func:`repro.sim.events.independent` relation's
    assumptions — the registry marks them ``por_safe=False`` and this
    wrapper refuses to reduce them.
    """
    from repro.core.setup import prepare_theorem_system
    from repro.protocols import get_protocol
    from repro.txn.types import read_only_txn, write_only_txn

    info = get_protocol(protocol)
    if por and not info.por_safe:
        raise ValueError(
            f"{protocol} is not declared POR-safe in the registry; "
            "run with por=False"
        )
    tsys = prepare_theorem_system(protocol, n_probes=2, **params)
    system = tsys.system
    if info.supports_wtx:
        script = [
            (tsys.cw, write_only_txn(dict(tsys.new_values), txid="Tw")),
            (tsys.probes[0], read_only_txn(tsys.objects, txid="Tr")),
        ]
    else:
        script = [
            (tsys.cw, write_only_txn({"X0": tsys.new_values["X0"]}, txid="Tw0")),
            (tsys.cw, write_only_txn({"X1": tsys.new_values["X1"]}, txid="Tw1")),
            (tsys.probes[0], read_only_txn(tsys.objects, txid="Tr")),
        ]
    return explore(
        system,
        script,
        max_depth=max_depth,
        max_states=max_states,
        first_violation_only=first_violation_only,
        checker=checker,
        strategy=strategy,
        por=por,
        workers=workers,
        incremental=incremental,
        checker_oracle=checker_oracle,
        per_worker_budget=per_worker_budget,
    )
