"""Theorem 2: the general case — m servers, N+1 objects, partial replication.

The appendix generalizes the induction (Lemmas 4–6): the necessary
message of round ``k`` may now come from *any* server — explicitly to
another server, or implicitly through ``c_w`` (a server messages
``c_w``, after which ``c_w`` messages a *different* server).  The splice
picks one server ``p`` that answers with written values while every
other server answers old; partial replication (no server stores all
objects) guarantees the resulting read is mixed.

The engine below mirrors :mod:`repro.core.induction` with the general
detector and role choice.  The two-server engine is kept separate on
purpose: it follows the main-body proof line by line, while this one
follows the appendix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.constructions import ConstructionError
from repro.core.induction import InductionConfig, try_splice_candidates
from repro.core.setup import SetupError, TheoremSystem, prepare_theorem_system
from repro.core.splicing import RecordedFragment, SpliceError
from repro.core.visibility import probe_read
from repro.core.witness import (
    CAUSAL_VIOLATION,
    INCONCLUSIVE,
    NO_MULTI_WRITE,
    STALLED,
    UNBOUNDED_VISIBILITY,
    TheoremVerdict,
)
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.trace import StepEvent
from repro.txn.client import UnsupportedTransaction


@dataclass
class GeneralMsDetector:
    """Watches for *any* server's necessary message (Lemma 4/6)."""

    cw: str
    servers: Tuple[str, ...]
    consumed_from: Set[str] = field(default_factory=set)
    found: Optional[str] = None
    sender: Optional[str] = None

    def observe(self, event) -> Optional[str]:
        if self.found is not None or not isinstance(event, StepEvent):
            return self.found
        server_set = set(self.servers)
        if event.pid == self.cw:
            for m in event.received:
                if m.src in server_set:
                    self.consumed_from.add(m.src)
            for m in event.sent:
                if m.dst in server_set:
                    others = self.consumed_from - {m.dst}
                    if others:
                        q = sorted(others)[0]
                        self.found = f"implicit: {q} -> {self.cw} -> {m.dst}"
                        self.sender = q
                        break
        elif event.pid in server_set:
            for m in event.sent:
                if m.dst in server_set and m.dst != event.pid:
                    self.found = f"explicit: {event.pid} -> {m.dst}"
                    self.sender = event.pid
                    break
        return self.found


def _pick_new_servers(
    tsys: TheoremSystem, visible_objs: Optional[Sequence[str]] = None
) -> List[str]:
    """Candidate ``p`` choices for the splice, best first.

    Prefer primaries of objects already observed as new (the claim-2
    case); in the claim-1 case any object-storing server works — the
    witness is self-validating, so candidates are simply tried in order.
    """
    ordered: List[str] = []
    if visible_objs:
        for obj in visible_objs:
            p = tsys.primary(obj)
            if p not in ordered:
                ordered.append(p)
    for obj in tsys.objects:
        p = tsys.primary(obj)
        if p not in ordered:
            ordered.append(p)
    return ordered


def run_general_induction(
    tsys: TheoremSystem, config: Optional[InductionConfig] = None
) -> TheoremVerdict:
    """The Lemma 6 induction for m servers / partial replication."""
    cfg = config or InductionConfig()
    sim = tsys.sim
    if tsys.c0 is None:
        raise ValueError("theorem system not prepared (no C0)")
    servers = tsys.servers
    protocol = tsys.system.info.name
    prev = tsys.c0
    invoked = False
    forced: List[str] = []

    for k in range(1, cfg.max_k + 1):
        sim.restore(prev)
        fragment = RecordedFragment([], [])
        log_mark, trace_mark = sim.log_mark(), sim.trace.mark()
        if not invoked:
            sim.invoke(tsys.cw, tsys.tw())
            invoked = True
        detector = GeneralMsDetector(cw=tsys.cw, servers=servers)
        for ev in sim.trace.events[trace_mark:]:
            detector.observe(ev)

        sched = RoundRobinScheduler()
        solo = (tsys.cw,) + tuple(servers)
        events_run = 0
        ms_desc: Optional[str] = None
        visible_all = False
        quiescent = False

        def capture() -> None:
            nonlocal log_mark, trace_mark
            fragment.extend(sim.log[log_mark:], sim.trace.events[trace_mark:])
            log_mark, trace_mark = sim.log_mark(), sim.trace.mark()

        def probe_now() -> Optional[Dict]:
            nonlocal log_mark, trace_mark
            capture()
            reads = probe_read(
                sim, tsys.probes[0], tsys.objects, tsys.service_pids, restore=True
            )
            log_mark, trace_mark = sim.log_mark(), sim.trace.mark()
            return reads

        last_reads: Optional[Dict] = None
        while events_run < cfg.solo_budget:
            progressed = sched.tick(sim, pids=solo)
            if progressed:
                events_run += 1
                ms_desc = detector.observe(sim.trace.events[-1])
                if ms_desc is not None:
                    break
            if not progressed or events_run % cfg.probe_every == 0:
                last_reads = probe_now()
                if last_reads is not None and all(
                    last_reads.get(o) == v for o, v in tsys.new_values.items()
                ):
                    visible_all = True
                    break
                if not progressed:
                    quiescent = True
                    break

        capture()

        if ms_desc is None and visible_all:
            return _try_splices(tsys, prev, fragment, k, "gamma", forced, None)
        if ms_desc is None and quiescent:
            return TheoremVerdict(
                protocol=protocol,
                outcome=STALLED,
                k_reached=k,
                detail="T_w stalled with invisible values (general model)",
                forced_messages=forced,
            )
        if ms_desc is None:
            return TheoremVerdict(
                protocol=protocol,
                outcome=INCONCLUSIVE,
                k_reached=k,
                detail=f"solo budget exhausted in round {k} (general model)",
                forced_messages=forced,
            )

        forced.append(f"k={k}: {ms_desc}")
        c_k = sim.snapshot()
        reads = probe_read(
            sim, tsys.probes[0], tsys.objects, tsys.service_pids,
            restore=True, snap=c_k,
        )
        visible_objs = [
            o for o, v in tsys.new_values.items() if reads is not None and reads.get(o) == v
        ]
        if visible_objs:
            return _try_splices(tsys, prev, fragment, k, "delta", forced, visible_objs)
        prev = c_k

    return TheoremVerdict(
        protocol=protocol,
        outcome=UNBOUNDED_VISIBILITY,
        k_reached=cfg.max_k,
        detail=(
            f"every round up to k={cfg.max_k} forced another necessary "
            "message (general model)"
        ),
        forced_messages=forced,
    )


def _try_splices(
    tsys: TheoremSystem,
    prev,
    fragment: RecordedFragment,
    k: int,
    construction: str,
    forced: List[str],
    visible_objs: Optional[Sequence[str]],
) -> TheoremVerdict:
    """Try each candidate ``p`` until a splice yields a mixed read."""
    return try_splice_candidates(
        tsys,
        prev,
        fragment,
        _pick_new_servers(tsys, visible_objs),
        k,
        construction,
        forced,
    )


def check_impossibility_general(
    protocol: str,
    objects: Sequence[str] = ("X0", "X1", "X2"),
    n_servers: int = 3,
    replication: int = 1,
    max_k: int = 8,
    **params,
) -> TheoremVerdict:
    """Theorem 2 driver: general topology, optional partial replication."""
    if replication >= n_servers:
        raise ValueError(
            "Theorem 2 requires partial replication: no server may store "
            "all objects (replication < n_servers)"
        )
    try:
        tsys = prepare_theorem_system(
            protocol,
            objects=objects,
            n_servers=n_servers,
            replication=replication,
            **params,
        )
    except SetupError as exc:
        return TheoremVerdict(
            protocol=protocol, outcome=STALLED, detail=f"setup failed: {exc}"
        )
    cw_client = tsys.system.client(tsys.cw)
    try:
        cw_client.validate(tsys.tw())
    except UnsupportedTransaction as exc:
        return TheoremVerdict(
            protocol=protocol,
            outcome=NO_MULTI_WRITE,
            detail=str(exc),
        )
    return run_general_induction(tsys, InductionConfig(max_k=max_k))
