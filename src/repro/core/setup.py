"""Building the theorem's initial configurations (Figure 1).

From the initial configuration ``Q_in``:

1. each initializing client ``c_in_i`` executes the write-only
   transaction ``T_in_i = (w(X_i) x_in_i)``, and the system is driven to
   quiescence — reaching ``Q_0``, where all initial values are visible;
2. the writing client ``c_w`` executes the fast read-only transaction
   ``T_in_r`` reading every object — because the initial values are
   visible it returns them, establishing the causal edge
   ``T_in_i <c T_in_r <c T_w`` the proof leans on;
3. the system is driven until no message is in transit — ``C_0``.

The returned :class:`TheoremSystem` also carries the probe-client pool
used by the visibility probes and the spliced constructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.visibility import values_visible
from repro.protocols.base import System, build_system
from repro.sim.executor import Configuration
from repro.sim.scheduler import RoundRobinScheduler
from repro.txn.client import UnsupportedTransaction
from repro.txn.types import ObjectId, Transaction, Value, write_only_txn


class SetupError(RuntimeError):
    """The protocol could not even establish the initial configuration."""


@dataclass
class TheoremSystem:
    """A system instrumented for the impossibility engine."""

    system: System
    cw: str
    init_clients: Tuple[str, ...]
    probes: Tuple[str, ...]
    init_values: Dict[ObjectId, Value]
    new_values: Dict[ObjectId, Value]
    c0: Optional[Configuration] = None

    @property
    def sim(self):
        return self.system.sim

    @property
    def servers(self) -> Tuple[str, ...]:
        return self.system.servers

    @property
    def service_pids(self) -> Tuple[str, ...]:
        """Servers plus auxiliary processes (probe schedulers need both)."""
        return self.system.service_pids

    @property
    def objects(self) -> Tuple[ObjectId, ...]:
        return self.system.config.objects

    def tw(self) -> Transaction:
        """The write-only multi-object transaction of the proof."""
        return write_only_txn(self.new_values, txid="Tw")

    def primary(self, obj: ObjectId) -> str:
        return self.system.config.placement[obj][0]


def prepare_theorem_system(
    protocol: str,
    objects: Sequence[ObjectId] = ("X0", "X1"),
    n_servers: int = 2,
    n_probes: int = 4,
    placement: Optional[Mapping[ObjectId, Tuple[str, ...]]] = None,
    replication: int = 1,
    max_events: int = 100_000,
    **params: Any,
) -> TheoremSystem:
    """Build a system and drive it to the configuration ``C_0``."""
    objects = tuple(objects)
    init_clients = tuple(f"cin{i}" for i in range(len(objects)))
    probes = tuple(f"cr{i}" for i in range(n_probes))
    clients = init_clients + ("cw",) + probes
    system = build_system(
        protocol,
        objects=objects,
        n_servers=n_servers,
        clients=clients,
        placement=placement,
        replication=replication,
        **params,
    )
    init_values = {obj: f"{obj}:init" for obj in objects}
    new_values = {obj: f"{obj}:new" for obj in objects}

    tsys = TheoremSystem(
        system=system,
        cw="cw",
        init_clients=init_clients,
        probes=probes,
        init_values=init_values,
        new_values=new_values,
    )

    sched = RoundRobinScheduler()
    # T_in_i: single-object initial writes (every protocol supports these)
    for i, obj in enumerate(objects):
        txn = write_only_txn({obj: init_values[obj]}, txid=f"Tin{i}")
        system.execute(init_clients[i], txn, scheduler=sched, max_events=max_events)
    system.settle(max_events=max_events)

    if not values_visible(system.sim, probes[-1], init_values, system.service_pids):
        raise SetupError(
            f"{protocol}: initial values not visible after initialization "
            "(minimal progress violated during setup)"
        )

    # T_in_r by cw: reads all objects, must return the initial values
    from repro.txn.types import read_only_txn

    rec = system.execute(
        "cw", read_only_txn(objects, txid="Tinr"), scheduler=sched, max_events=max_events
    )
    for obj in objects:
        if rec.reads[obj] != init_values[obj]:
            raise SetupError(
                f"{protocol}: T_in_r returned {rec.reads[obj]!r} for {obj}, "
                f"expected the visible initial value {init_values[obj]!r}"
            )
    system.settle(max_events=max_events)
    if not system.sim.network.idle():
        raise SetupError(f"{protocol}: messages still in transit at C0")

    tsys.c0 = system.sim.snapshot()
    return tsys
