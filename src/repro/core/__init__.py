"""The paper's impossibility proof, executable.

Pipeline: :func:`~repro.core.theorem.check_impossibility` (Theorem 1,
two servers) and
:func:`~repro.core.general.check_impossibility_general` (Theorem 2,
m servers / partial replication) drive, per protocol:

1. :mod:`~repro.core.properties` — measured fast-ROT verification;
2. :mod:`~repro.core.setup` — the Figure 1 initialization to ``C_0``;
3. :mod:`~repro.core.induction` / :mod:`~repro.core.general` — the
   Lemma 3 / Lemma 6 induction, using
   :mod:`~repro.core.visibility` (Definition 2 probes),
   :mod:`~repro.core.constructions` (Constructions 1–2) and
   :mod:`~repro.core.splicing` (β_new/ρ_new) to assemble the γ/δ
   executions whose mixed reads are the concrete Lemma 1 contradictions.
"""

from repro.core.constructions import (
    ConstructionError,
    SigmaOldResult,
    finish_with_new,
    run_sigma_old,
)
from repro.core.general import (
    GeneralMsDetector,
    check_impossibility_general,
    run_general_induction,
)
from repro.core.induction import (
    InductionConfig,
    MsDetector,
    build_splice_witness,
    run_induction,
)
from repro.core.properties import DEFAULT_FAST_SPEC, FastRotReport, measure_fast_rot
from repro.core.setup import SetupError, TheoremSystem, prepare_theorem_system
from repro.core.splicing import RecordedFragment, SpliceError, splice_new
from repro.core.theorem import check_all, check_impossibility
from repro.core.visibility import FrozenScheduler, probe_read, values_visible
from repro.core.witness import (
    CAUSAL_VIOLATION,
    INCONCLUSIVE,
    NO_MULTI_WRITE,
    NOT_FAST,
    OUTCOMES,
    STALLED,
    UNBOUNDED_VISIBILITY,
    MixedReadWitness,
    TheoremVerdict,
)

__all__ = [
    "ConstructionError",
    "SigmaOldResult",
    "finish_with_new",
    "run_sigma_old",
    "GeneralMsDetector",
    "check_impossibility_general",
    "run_general_induction",
    "InductionConfig",
    "MsDetector",
    "build_splice_witness",
    "run_induction",
    "DEFAULT_FAST_SPEC",
    "FastRotReport",
    "measure_fast_rot",
    "SetupError",
    "TheoremSystem",
    "prepare_theorem_system",
    "RecordedFragment",
    "SpliceError",
    "splice_new",
    "check_all",
    "check_impossibility",
    "FrozenScheduler",
    "probe_read",
    "values_visible",
    "CAUSAL_VIOLATION",
    "INCONCLUSIVE",
    "NO_MULTI_WRITE",
    "NOT_FAST",
    "OUTCOMES",
    "STALLED",
    "UNBOUNDED_VISIBILITY",
    "MixedReadWitness",
    "TheoremVerdict",
]
