"""Constructions 1 and 2 of the paper, executable (Figure 2).

``run_sigma_old`` plays the first half of Construction 1: a fresh client
``c_r`` invokes the fast read-only transaction ``T_r`` in one
computation step; the adversary delivers its request to every *old*
server first, each of which must answer within a single step
(non-blocking) — the paper's σ_old prefix, generalized from one old
server (Theorem 1) to "every server except p" (Theorem 2's Lemma 4).

``finish_with_new`` plays σ_new plus the closing delivery schedule: the
withheld request finally reaches the *new* server ``p`` (which by then
has executed the spliced β_new and therefore answers with the written
value), all responses are delivered, and ``c_r`` completes ``T_r``.

The two halves sandwich a replayed ``β_new`` to build the paper's γ (or
δ, with ρ_new in the middle).  The read values that come out the other
end are the contradiction: old from the servers that answered before
the splice, new from ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.executor import Simulation
from repro.sim.messages import Message, ProcessId
from repro.sim.trace import StepEvent
from repro.txn.client import ClientBase
from repro.txn.types import ObjectId, TxnRecord, Value, read_only_txn


class ConstructionError(RuntimeError):
    """The protocol deviated from fast-ROT behaviour mid-construction.

    Raised when the client needs more than one step to issue all its
    read requests, or a server fails to respond within the step that
    received the request — i.e. the protocol is not actually fast, which
    the engine reports as a NOT_FAST diagnostic.
    """


@dataclass
class SigmaOldResult:
    reader: ProcessId
    txid: str
    #: requests still in transit, per destination server
    pending_requests: Dict[ProcessId, Message]
    #: old servers that already replied (their responses are in transit)
    replied: Tuple[ProcessId, ...]


def run_sigma_old(
    sim: Simulation,
    reader: ProcessId,
    objects: Sequence[ObjectId],
    old_servers: Sequence[ProcessId],
    new_servers: Sequence[ProcessId],
    txid: Optional[str] = None,
) -> SigmaOldResult:
    """Execute σ_old from the current configuration (no snapshotting)."""
    client = sim.processes[reader]
    assert isinstance(client, ClientBase)
    txn = read_only_txn(objects, txid=txid)
    sim.invoke(reader, txn)
    ev = sim.step(reader)
    requests = {m.dst: m for m in ev.sent}
    involved = set(old_servers) | set(new_servers)
    missing = involved - set(requests)
    if missing:
        raise ConstructionError(
            f"fast ROT must contact all involved servers in one step; "
            f"{reader} did not message {sorted(missing)}"
        )
    replied: List[ProcessId] = []
    for server in old_servers:
        sim.deliver_msg(requests[server])
        sev = sim.step(server)
        if not any(m.dst == reader for m in sev.sent):
            raise ConstructionError(
                f"server {server} did not respond to {reader}'s read in the "
                f"step that received it (blocking)"
            )
        replied.append(server)
    pending = {s: requests[s] for s in new_servers}
    return SigmaOldResult(
        reader=reader,
        txid=txn.txid,
        pending_requests=pending,
        replied=tuple(replied),
    )


def finish_with_new(
    sim: Simulation,
    sigma: SigmaOldResult,
    max_client_steps: int = 8,
) -> TxnRecord:
    """Deliver the withheld requests to the new server(s), collect all
    responses, and let the reader complete ``T_r``."""
    reader = sigma.reader
    for server, request in sigma.pending_requests.items():
        sim.deliver_msg(request)
        sev = sim.step(server)
        if not any(m.dst == reader for m in sev.sent):
            raise ConstructionError(
                f"server {server} did not respond to {reader}'s read in the "
                f"step that received it (blocking)"
            )
    client = sim.processes[reader]
    assert isinstance(client, ClientBase)
    before = len(client.completed)
    for _ in range(max_client_steps):
        for msg in sim.network.pending(dst=reader):
            sim.deliver_msg(msg)
        sim.step(reader)
        if len(client.completed) > before:
            return client.completed[-1]
        if client.current is None:
            break
    raise ConstructionError(
        f"{reader} did not complete its fast ROT after receiving all "
        f"responses (needed more than {max_client_steps} steps)"
    )
