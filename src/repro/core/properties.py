"""Measuring whether a protocol's ROTs are fast (Definition 4/5).

The engine never trusts a protocol's claim: it runs a seeded concurrent
workload on a fresh deployment of the protocol and measures, from the
trace, the three sub-properties for every read-only transaction —
one-roundtrip, one-value, non-blocking — exactly as
:mod:`repro.analysis.metrics` defines them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import TxnStats, analyze_transactions
from repro.protocols.base import build_system
from repro.workloads.generators import WorkloadSpec, run_workload


@dataclass
class FastRotReport:
    protocol: str
    n_rots: int
    one_round: bool
    one_value: bool
    nonblocking: bool
    max_rounds: int
    max_values_per_object: int
    n_blocked: int
    max_hops: int = 2
    detail: str = ""

    @property
    def fast(self) -> bool:
        return self.one_round and self.one_value and self.nonblocking and self.n_rots > 0

    def failing_properties(self) -> List[str]:
        out = []
        if not self.one_round:
            out.append(
                f"one-roundtrip (measured up to {self.max_rounds} client "
                f"rounds, {self.max_hops} message hops)"
            )
        if not self.one_value:
            out.append(
                f"one-value (measured up to {self.max_values_per_object} values "
                "per object)"
            )
        if not self.nonblocking:
            out.append(f"non-blocking ({self.n_blocked} deferred replies)")
        return out

    def describe(self) -> str:
        if self.fast:
            return f"{self.protocol}: ROTs measured fast over {self.n_rots} ROTs"
        return (
            f"{self.protocol}: ROTs not fast — gives up "
            + "; ".join(self.failing_properties())
        )


#: the default probe workload: enough concurrent writes to exercise
#: second rounds, blocking waits and readers checks
DEFAULT_FAST_SPEC = WorkloadSpec(
    n_txns=60, read_ratio=0.6, read_size=(2, 3), write_size=(1, 2), seed=7
)


def measure_fast_rot(
    protocol: str,
    spec: Optional[WorkloadSpec] = None,
    objects: Sequence[str] = ("X0", "X1", "X2", "X3"),
    n_servers: int = 2,
    **params: Any,
) -> FastRotReport:
    """Deploy ``protocol`` fresh, run the probe workload, measure ROTs."""
    spec = spec or DEFAULT_FAST_SPEC
    system = build_system(
        protocol, objects=objects, n_servers=n_servers, **params
    )
    history = run_workload(system, spec)
    stats = analyze_transactions(system.sim.trace, history, servers=system.servers)
    rots = [s for s in stats.values() if s.read_only]
    max_rounds = max((s.rounds for s in rots), default=0)
    max_hops = max((s.hops for s in rots), default=0)
    max_vpo = max((s.max_values_per_object for s in rots), default=0)
    any_unrequested = any(s.unrequested_values for s in rots)
    n_blocked = sum(1 for s in rots if s.blocked)
    return FastRotReport(
        protocol=protocol,
        n_rots=len(rots),
        # Definition 4 is literal request/reply: one client send phase AND
        # direct server replies (hop depth 2) — indirection through a
        # sequencer is not a one-roundtrip read.
        one_round=max_rounds <= 1 and max_hops <= 2,
        one_value=max_vpo <= 1 and not any_unrequested,
        nonblocking=n_blocked == 0,
        max_rounds=max_rounds,
        max_hops=max_hops,
        max_values_per_object=max_vpo + (1 if any_unrequested else 0),
        n_blocked=n_blocked,
    )
