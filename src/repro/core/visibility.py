"""Value visibility (Definitions 2 and 6) as executable probes.

``x`` is visible in configuration ``C`` when *every* legal execution
from ``C`` containing just one fresh read-only transaction returns ``x``.
The probe runs the strongest single refuting adversary: it freezes every
message already in transit at ``C`` (arbitrary delay) and lets only the
prober, the servers, and messages sent after the probe started move.  If
even this maximally-starved execution returns the new value, the value
is declared visible; any stale return refutes visibility outright.

The probe runs on a snapshot and restores afterwards, implementing the
``RC(C, α)`` branching the proof needs.  Probe results are heuristic in
one direction only (declaring visible), and every use in the engine is
later self-validated by the spliced execution's actual read values.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

from repro.sim.executor import Configuration, Simulation
from repro.sim.messages import Message, ProcessId
from repro.sim.scheduler import RoundRobinScheduler, SchedulerStalled
from repro.txn.client import ClientBase
from repro.txn.types import ObjectId, Transaction, Value, read_only_txn


class FrozenScheduler(RoundRobinScheduler):
    """Round-robin adversary that never delivers a frozen message."""

    def __init__(self, frozen_msg_ids: Iterable[int]):
        super().__init__()
        self.frozen: Set[int] = set(frozen_msg_ids)

    @staticmethod
    def _filter_frozen(msgs, frozen):
        return [m for m in msgs if m.msg_id not in frozen]

    def _deliverable(self, sim, pids):
        msgs = super()._deliverable(sim, pids)
        return [m for m in msgs if m.msg_id not in self.frozen]


def probe_read(
    sim: Simulation,
    probe_client: ProcessId,
    objects: Sequence[ObjectId],
    servers: Sequence[ProcessId],
    max_events: int = 20_000,
    restore: bool = True,
    snap: Optional[Configuration] = None,
) -> Optional[Dict[ObjectId, Value]]:
    """Run a fresh ROT from the current configuration under the frozen
    adversary; return its reads, or ``None`` if it cannot complete.

    The configuration is restored afterwards unless ``restore=False``.
    A caller that already holds a snapshot of the *current* configuration
    may pass it as ``snap`` to skip the probe's own snapshot (the fast
    fork pattern: one snapshot, many branches).
    """
    if snap is None and restore:
        snap = sim.snapshot()
    frozen = {m.msg_id for m in sim.network.pending()}
    client = sim.processes[probe_client]
    assert isinstance(client, ClientBase)
    before = len(client.completed)
    txn = read_only_txn(objects)
    sim.invoke(probe_client, txn)
    sched = FrozenScheduler(frozen)
    pids = (probe_client,) + tuple(servers)
    result: Optional[Dict[ObjectId, Value]] = None
    try:
        sched.run(
            sim,
            pids=pids,
            until=lambda s: len(client.completed) > before,
            max_events=max_events,
        )
        result = dict(client.completed[-1].reads)
    except SchedulerStalled:
        result = None
    finally:
        if restore:
            sim.restore(snap)
    return result


def values_visible(
    sim: Simulation,
    probe_client: ProcessId,
    expected: Dict[ObjectId, Value],
    servers: Sequence[ProcessId],
    max_events: int = 20_000,
) -> bool:
    """Whether all of ``expected`` are returned by the frozen-adversary probe."""
    reads = probe_read(
        sim, probe_client, tuple(expected), servers, max_events=max_events
    )
    if reads is None:
        return False
    return all(reads.get(obj) == val for obj, val in expected.items())
