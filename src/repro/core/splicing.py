"""The β → β_new (and ρ → ρ_new) subsequence machinery.

Given a recorded solo fragment β (commands and trace events in lockstep,
as produced by one induction round), the splice computes the paper's

* ``β'_p`` — the shortest prefix of β containing every message ``c_w``
  sends to the *new* server ``p`` (the one that will answer with the
  written value);
* ``β_p``  — ``β'_p`` with every step of the other servers removed;
* ``β_s``  — the remaining suffix restricted to ``p``'s steps (and the
  deliveries addressed to ``p``);
* ``β_new = β_p · β_s``.

Replaying ``β_new`` from ``RC(C_{k-1}, σ_old)`` is the executable form
of the paper's legality argument: under the claim's premises (no
server→server message from the removed side, no implicit message via
``c_w``) every delivery surviving the filter addresses a message that
exists, and the configurations reached are indistinguishable to ``c_w``
and ``p`` from the unspliced ones.  A :class:`SpliceError` therefore
marks a broken premise, not an engine fault — it is surfaced as a
diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.sim.messages import ProcessId
from repro.sim.replay import Command, DeliverCmd, InvokeCmd, StepCmd
from repro.sim.trace import StepEvent, TraceEvent


class SpliceError(RuntimeError):
    """A splice premise did not hold (see module docstring)."""


@dataclass
class RecordedFragment:
    """A command list with its aligned trace events (one event per command)."""

    commands: List[Command]
    events: List[TraceEvent]
    # incremental send index: (src, dst) -> index just past src's last
    # send to dst, maintained lazily so that trying several splice roles
    # against one fragment scans its events once, not once per role
    _send_scan: int = field(default=0, init=False, repr=False, compare=False)
    _last_send: Dict[Tuple[ProcessId, ProcessId], int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.commands) != len(self.events):
            raise ValueError(
                f"misaligned fragment: {len(self.commands)} commands vs "
                f"{len(self.events)} events"
            )

    def __len__(self) -> int:
        return len(self.commands)

    def extend(self, commands: Sequence[Command], events: Sequence[TraceEvent]) -> None:
        self.commands.extend(commands)
        self.events.extend(events)
        if len(self.commands) != len(self.events):
            raise ValueError("misaligned fragment extension")

    def last_send_boundary(self, src: ProcessId, dst: ProcessId) -> int:
        """Index just past the last step where ``src`` sent to ``dst``.

        Returns 0 when the fragment contains no such send.
        """
        while self._send_scan < len(self.events):
            ev = self.events[self._send_scan]
            self._send_scan += 1
            if isinstance(ev, StepEvent):
                for m in ev.sent:
                    self._last_send[(ev.pid, m.dst)] = self._send_scan
        return self._last_send.get((src, dst), 0)


def _keep_filter(
    commands: Sequence[Command], keep: Set[ProcessId]
) -> List[Command]:
    """Steps/invokes of kept processes; deliveries addressed to them."""
    out: List[Command] = []
    for c in commands:
        if isinstance(c, StepCmd):
            if c.pid in keep:
                out.append(c)
        elif isinstance(c, InvokeCmd):
            if c.pid in keep:
                out.append(c)
        elif isinstance(c, DeliverCmd):
            if c.dst in keep:
                out.append(c)
    return out


def splice_new(
    fragment: RecordedFragment,
    cw: ProcessId,
    new_server: ProcessId,
    servers: Sequence[ProcessId],
) -> List[Command]:
    """Compute ``β_new`` for the given roles (see module docstring)."""
    if new_server not in servers:
        raise ValueError(f"{new_server} is not a server")
    # β'_p: shortest prefix containing all cw → new_server sends
    split = fragment.last_send_boundary(cw, new_server)
    prefix = fragment.commands[:split]
    suffix = fragment.commands[split:]
    beta_p = _keep_filter(prefix, {cw, new_server})
    beta_s = _keep_filter(suffix, {new_server})
    return beta_p + beta_s
