"""repro.engine — the unified schedule-space exploration engine.

Public surface:

* :func:`repro.engine.core.run` — explore a prepared system with a
  strategy (``dfs``/``bfs``/``random``), optional sleep-set partial-order
  reduction, and optional parallel frontier workers;
* :class:`repro.engine.core.ExplorationResult` — the result record,
  extending the repo-wide :class:`repro.engine.outcome.SearchOutcome`
  budget vocabulary;
* the typed event model itself lives in :mod:`repro.sim.events` (the sim
  layer owns what an event *is*; the engine owns how the space of event
  sequences is searched).
"""

from repro.engine.core import (
    STRATEGIES,
    CheckerSpec,
    ExplorationResult,
    SearchNode,
    SerialSearch,
    resolve_checker,
    run,
)
from repro.engine.outcome import SearchOutcome

__all__ = [
    "STRATEGIES",
    "CheckerSpec",
    "ExplorationResult",
    "SearchNode",
    "SearchOutcome",
    "SerialSearch",
    "resolve_checker",
    "run",
]
