"""A cross-process seen-set of canonical fingerprints, claim-once.

The work-stealing frontier (:mod:`repro.engine.parallel`) lets every
worker consult one *global* dedup set before expanding a configuration,
instead of each worker re-expanding fingerprints its siblings already
covered.  The set stores the engine's 16-byte
:meth:`~repro.sim.executor.Simulation.fingerprint` digests and supports
exactly one operation:

``claim(fp) -> bool``
    Atomically insert-if-absent.  ``True`` means the caller now *owns*
    the fingerprint (it is the one worker that expands it); ``False``
    means some claimer — possibly in another process — got there first
    (the caller records a dedup and prunes).  The claim is the whole
    protocol: there is no separate lookup, so the check and the insert
    cannot race apart.

Two implementations behind the same interface:

* :class:`SharedSeenSet` — an open-addressing hash table in one
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  Slots
  are write-once (16 zero bytes = empty; a slot once written never
  changes), probing is linear from ``fp[:8] mod slots``, and claims are
  serialized per table *region* by a small array of striped locks: a
  claimer holds only the lock of the region its probe is currently in,
  so two claims contend only when their probes overlap the same region.
  Plain reads of shared memory without barriers are not safely ordered
  in Python, so there is deliberately **no** lock-free read fast path —
  the region lock is a single semaphore acquire (~1µs) against search
  steps that cost hundreds of µs.
* :class:`DiskSeenSet` — an sqlite-backed table (stdlib ``sqlite3``,
  ``INSERT OR IGNORE`` under sqlite's own cross-process locking) for
  searches whose fingerprint population would not fit in RAM.  Much
  slower per claim, unbounded capacity.

:func:`make_seen_set` picks between them from the expected population
and a memory budget.  Both are picklable: sending one to a worker
process re-attaches to the same underlying segment/file, so the parent
constructs the set once and ships it inside the worker bootstrap.

Soundness under POR: a fingerprint in this set means "some worker
expanded this configuration **with an empty sleep set**" — the one kind
of visit whose coverage is universal (the sleep-subset rule ``prior ⊆
current`` holds for every later visit because ``∅ ⊆ anything``).
Visits with non-empty sleep sets never claim here and fall back to the
worker-local sleep-aware seen dict; see ``docs/model.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import sqlite3
import tempfile
from typing import List, Optional, Tuple

#: fingerprint width: blake2b(digest_size=16) everywhere in the repo
FP_BYTES = 16

#: the all-zeroes digest doubles as the empty-slot marker; the (one)
#: real fingerprint equal to it is tracked by a dedicated header byte
_ZERO_FP = b"\x00" * FP_BYTES

#: number of striped region locks in a SharedSeenSet
_N_LOCKS = 64

#: default in-memory budget for the shared table before spilling to disk
DEFAULT_MEM_LIMIT = 256 * 1024 * 1024


def _attach_shm(name: str):
    """Attach to an existing segment without re-registering it for
    unlink (the creator owns the segment's lifetime; a worker attach
    that also registered it would double-unlink at exit)."""
    from multiprocessing import shared_memory

    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return shm


class SharedSeenSet:
    """Write-once open-addressing claim set in shared memory.

    Layout: one header byte (the claim bit for the all-zeroes
    fingerprint) followed by ``slots`` fixed 16-byte slots.  A slot is
    empty while all-zero and is written exactly once, under the lock of
    the table region it belongs to; claimers hold one region lock at a
    time and re-acquire as their probe crosses regions, so claims of
    the same fingerprint are serialized at the slot that decides them.

    ``hits``/``inserts``/``overflows`` are *local* tallies of this
    process's claims (each worker folds its own into its result); the
    table itself holds no counters, so no shared cacheline is bumped on
    every claim.
    """

    def __init__(self, capacity_hint: int, *, ctx=None):
        if ctx is None:
            ctx = multiprocessing.get_context()
        slots = 1024
        while slots < 2 * max(capacity_hint, 1):
            slots *= 2
        from multiprocessing import shared_memory

        self.slots = slots
        self.shm = shared_memory.SharedMemory(
            create=True, size=1 + slots * FP_BYTES
        )
        self.shm.buf[: 1 + slots * FP_BYTES] = bytes(1 + slots * FP_BYTES)
        self.locks: List = [ctx.Lock() for _ in range(_N_LOCKS)]
        self._owner = True
        self.hits = 0
        self.inserts = 0
        self.overflows = 0

    # -- pickling: workers re-attach to the same segment -------------------

    def __getstate__(self):
        return (self.shm.name, self.slots, self.locks)

    def __setstate__(self, state):
        name, slots, locks = state
        self.slots = slots
        self.locks = locks
        self.shm = _attach_shm(name)
        self._owner = False
        self.hits = 0
        self.inserts = 0
        self.overflows = 0

    # -- the claim protocol ------------------------------------------------

    def _region(self, slot: int) -> int:
        return (slot * _N_LOCKS) // self.slots

    def _probe(self, fp: bytes, insert: bool) -> str:
        """Walk the probe sequence under the striped locks.

        Returns ``"present"`` / ``"inserted"`` / ``"absent"`` /
        ``"full"``.  Hand-over-hand locking with a held-flag: the flag
        is cleared *before* the old lock is released and set again only
        after the next lock is acquired, so the ``finally`` releases
        exactly the lock this frame holds — an exception anywhere in
        the swap window can leak a lock at worst, never release one
        that another claimer holds (which would corrupt the semaphore
        count for every process sharing the table).
        """
        slots = self.slots
        slot = int.from_bytes(fp[:8], "little") % slots
        region = self._region(slot)
        lock = self.locks[region]
        held = False
        try:
            lock.acquire()
            held = True
            for _ in range(slots):
                r = self._region(slot)
                if r != region:
                    # probe crossed into the next region: swap locks
                    held = False
                    lock.release()
                    region, lock = r, self.locks[r]
                    lock.acquire()
                    held = True
                off = 1 + slot * FP_BYTES
                cur = bytes(self.shm.buf[off : off + FP_BYTES])
                if cur == fp:
                    return "present"
                if cur == _ZERO_FP:
                    if insert:
                        self.shm.buf[off : off + FP_BYTES] = fp
                        return "inserted"
                    return "absent"
                slot = (slot + 1) % slots
            return "full"
        finally:
            if held:
                lock.release()

    def claim(self, fp: bytes) -> bool:
        """Insert-if-absent; True iff this call inserted ``fp``."""
        if len(fp) != FP_BYTES:
            raise ValueError(f"fingerprint must be {FP_BYTES} bytes")
        if fp == _ZERO_FP:
            # the header byte, guarded by region-0's lock
            with self.locks[0]:
                if self.shm.buf[0]:
                    self.hits += 1
                    return False
                self.shm.buf[0] = 1
                self.inserts += 1
                return True
        outcome = self._probe(fp, insert=True)
        if outcome == "present":
            self.hits += 1
            return False
        if outcome == "full":
            # table full: treat as freshly claimed (the caller expands —
            # dedup is lost, soundness is not) and record the overflow
            self.overflows += 1
        self.inserts += 1
        return True

    def __contains__(self, fp: bytes) -> bool:
        """Membership without claiming: a read-only locked probe.

        Never writes the table and never perturbs the tallies, so it is
        safe to call concurrently with claimers in other processes.
        """
        if len(fp) != FP_BYTES:
            raise ValueError(f"fingerprint must be {FP_BYTES} bytes")
        if fp == _ZERO_FP:
            with self.locks[0]:
                return bool(self.shm.buf[0])
        return self._probe(fp, insert=False) == "present"

    def stats(self) -> Tuple[int, int, int]:
        return (self.hits, self.inserts, self.overflows)

    def close(self) -> None:
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - double close
            pass

    def unlink(self) -> None:
        """Free the segment (creator only, after workers exited)."""
        self.close()
        if self._owner:
            try:
                self.shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass


class DiskSeenSet:
    """Sqlite-backed claim set for populations larger than RAM.

    One ``INSERT OR IGNORE`` per claim under sqlite's own file locking
    (correct across processes, WAL mode for claim/claim concurrency).
    Connections are opened lazily *per process* — a connection must
    never cross a fork.
    """

    def __init__(self, path: Optional[str] = None):
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-seen-", suffix=".db")
            os.close(fd)
            self._owner = True
        else:
            self._owner = False
        self.path = path
        self.hits = 0
        self.inserts = 0
        self.overflows = 0
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        # create the schema eagerly so attaching workers find it
        conn = self._connect()
        conn.execute(
            "CREATE TABLE IF NOT EXISTS seen (fp BLOB PRIMARY KEY) WITHOUT ROWID"
        )
        conn.commit()

    def __getstate__(self):
        return self.path

    def __setstate__(self, path):
        self.path = path
        self._owner = False
        self.hits = 0
        self.inserts = 0
        self.overflows = 0
        self._conn = None
        self._conn_pid = None

    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            self._conn = sqlite3.connect(self.path, timeout=60.0)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn_pid = pid
        return self._conn

    def claim(self, fp: bytes) -> bool:
        conn = self._connect()
        cur = conn.execute(
            "INSERT OR IGNORE INTO seen (fp) VALUES (?)", (fp,)
        )
        conn.commit()
        if cur.rowcount == 1:
            self.inserts += 1
            return True
        self.hits += 1
        return False

    def __contains__(self, fp: bytes) -> bool:
        cur = self._connect().execute(
            "SELECT 1 FROM seen WHERE fp = ?", (fp,)
        )
        return cur.fetchone() is not None

    def stats(self) -> Tuple[int, int, int]:
        return (self.hits, self.inserts, self.overflows)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def unlink(self) -> None:
        self.close()
        if self._owner:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(self.path + suffix)
                except OSError:
                    pass


def make_seen_set(
    capacity_hint: int,
    *,
    ctx=None,
    mem_limit: int = DEFAULT_MEM_LIMIT,
):
    """The right claim set for an expected fingerprint population.

    A population whose 2x-slack table fits in ``mem_limit`` gets the
    shared-memory table; anything larger spills to the disk-backed
    store (slower per claim, no capacity ceiling).
    """
    slots = 1024
    while slots < 2 * max(capacity_hint, 1):
        slots *= 2
    if slots * FP_BYTES <= mem_limit:
        return SharedSeenSet(capacity_hint, ctx=ctx)
    return DiskSeenSet()
