"""The unified exploration engine: strategies, budgets, reduction.

This package owns schedule-space exploration end to end.  The previous
layout had three divergent drivers — a recursive DFS in
``core/explore.py``, the chaos adversaries' hand-rolled enumeration in
``sim/adversaries.py``, and a memoized DFS in ``consistency/search.py``
— each with its own budget accounting.  The engine replaces them with
one frontier/strategy core over a common :class:`SearchNode`:

* **Strategies** — ``"dfs"`` (the reference order, identical to the old
  recursive explorer), ``"bfs"`` (shortest-counterexample order) and
  ``"random"`` (seeded random walks, no dedup) all share the seen-set,
  the state/depth budgets and the truncation accounting implemented
  here, once.
* **Partial-order reduction** (``por=True``) — driven by the
  :func:`repro.sim.events.independent` relation, in two coupled parts.
  The seen-set keys on the *trace-canonical* fingerprint
  (``Simulation.fingerprint(canonical=True)``), under which the two
  sides of every commuting diamond are the same state — that quotient,
  one representative per Mazurkiewicz trace, is where the state-count
  reduction comes from.  On top of it, *sleep sets* prune the redundant
  sibling orders so merged states are mostly not even generated.
  Soundness: sleep sets never prune a trace entirely, only redundant
  interleavings of commuting events, so every reachable *quiescent*
  configuration (and hence every checked history and every verdict) is
  still reached; combined with the seen-set, a revisited configuration
  is only skipped when a previous visit had a subset sleep set (i.e.
  explored at least as much).  See ``docs/model.md``.
* **Parallel frontier** (``workers=N``) — :mod:`repro.engine.parallel`
  fans DFS-preorder subtree roots out to ``multiprocessing`` workers;
  snapshots are self-contained bytes and fingerprints are
  hash-seed-independent, so results merge deterministically.

The engine applies events exclusively through
:meth:`repro.sim.events.Event.apply`; ``repro.lint`` rule RL405 keeps
every other layer honest about that.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.engine.outcome import SearchOutcome
from repro.sim.events import Event, Step, enabled_events, independent
from repro.sim.executor import Configuration, SimCounters, Simulation
from repro.sim.messages import ProcessId

STRATEGIES = ("dfs", "bfs", "random")

_EMPTY: FrozenSet[Event] = frozenset()


def _wall() -> float:
    """Host wall-clock, for ``checker_seconds`` instrumentation only.

    The value never feeds simulated time, verdicts or fingerprints — it
    measures the real cost of consistency checking so benchmarks can
    compare the delta checkers against the batch scan.
    """
    # repro-lint: disable=RL101 — host-side cost instrumentation; the
    # simulation never observes this value
    return time.perf_counter()


@dataclass
class SearchNode:
    """One frontier entry: a configuration plus how we got there."""

    snapshot: Configuration
    fingerprint: bytes
    trail: Tuple[Event, ...]
    depth: int
    #: sleep set: events whose exploration from this node is already
    #: covered by a sibling branch (empty unless POR is on)
    sleep: FrozenSet[Event] = _EMPTY
    #: global DFS-preorder ordinal: the index path through each
    #: ancestor's explorable-children list (parallel merge key — the
    #: lexicographically smallest violating key is the serial DFS's
    #: first violation)
    key: Tuple[int, ...] = ()


@dataclass
class ExplorationResult(SearchOutcome):
    """Outcome of a (possibly reduced, possibly parallel) exploration.

    Extends the repo-wide :class:`SearchOutcome` budget vocabulary:
    ``steps`` mirrors ``states_visited`` and ``exhausted`` reports a
    spent state budget.  ``states_visited`` counts configurations
    actually *expanded*; revisits pruned by the seen-set are counted
    separately in ``states_deduped`` (the old explorer counted a node
    before the seen check, inflating ``states_visited`` by the number of
    revisits).
    """

    protocol: str = ""
    states_visited: int = 0     #: configurations expanded
    states_deduped: int = 0     #: revisits pruned by the seen-fingerprint set
    schedules_completed: int = 0
    truncated: int = 0          #: branches cut by the depth or state budget
    violations: List[Tuple[List[str], List]] = field(default_factory=list)
    #: snapshot/restore cost accounting for the run (see SimCounters)
    counters: Optional[SimCounters] = None
    strategy: str = "dfs"
    por: bool = False
    workers: int = 1
    #: a ``workers > 1`` request answered serially because the fan-out
    #: could not pay for itself (tiny scope or too few subtree roots —
    #: see :mod:`repro.engine.parallel`)
    auto_serial: bool = False
    #: parallel runs: subtree roots the seeding walk shipped to the pool
    #: (the work-stealing deque's initial population)
    roots_shipped: int = 0
    #: parallel runs: states the whole pool deduped against the *shared*
    #: fingerprint claim set (cross-worker dedup; worker-local seen-set
    #: dedup stays inside ``states_deduped`` alongside it)
    shared_seen_hits: int = 0
    #: leaves whose history was given a verdict
    checks: int = 0
    #: wall-clock spent in checker work (delta consumption + verdicts for
    #: the incremental path; history extraction + scan for the batch path)
    checker_seconds: float = 0.0
    incremental: bool = False

    @property
    def violation_found(self) -> bool:
        return bool(self.violations)

    @property
    def conclusive(self) -> bool:
        """No budget cut any branch: the verdict covers the whole scope."""
        return not self.exhausted and self.truncated == 0

    def describe(self) -> str:
        knobs = self.strategy + ("+por" if self.por else "")
        if self.workers > 1:
            knobs += f"+workers={self.workers}"
            if self.auto_serial:
                knobs += "(auto-serial)"
        head = (
            f"{self.protocol} [{knobs}]: explored {self.states_visited} states "
            f"({self.states_deduped} deduped), "
            f"{self.schedules_completed} complete schedules, "
            f"{self.truncated} truncated"
        )
        if not self.violations:
            lines = [head + " — no causal violation in scope"]
        else:
            sched, anomalies = self.violations[0]
            lines = [head + f" — {len(self.violations)} violating schedule(s)"]
            lines.append("  first violating schedule:")
            for s in sched:
                lines.append(f"    {s}")
            for a in anomalies[:2]:
                lines.append(f"  anomaly: {a.describe()}")
        if self.counters is not None:
            lines.append(f"  cost: {self.counters.describe()}")
        if self.workers > 1 and not self.auto_serial and self.counters is not None:
            c = self.counters
            lines.append(
                f"  steal: {self.roots_shipped} roots shipped, "
                f"{c.publishes} published, {c.steals} stolen, "
                f"{c.idle_waits} idle waits; shared seen-set "
                f"{c.shared_seen_hits} hits / {c.shared_seen_inserts} inserts"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckerSpec:
    """A checker resolved to its batch scan and incremental factory.

    ``batch`` is the whole-history anomaly scan (the reference oracle);
    ``incremental`` constructs a fresh
    :class:`~repro.consistency.incremental.IncrementalChecker` whose
    verdicts are bit-identical to ``batch`` on the same records.  The
    DFS strategies consume committed-record deltas through the
    incremental checker by default; ``incremental=None`` means the
    checker has no delta form and always runs batch.
    """

    name: str
    batch: Callable
    incremental: Optional[Callable] = None


def resolve_checker(checker: str) -> CheckerSpec:
    """Map a checker name to its batch scan + incremental factory."""
    if checker == "causal":
        from repro.consistency.causal import find_causal_anomalies
        from repro.consistency.incremental import IncrementalCausalChecker

        return CheckerSpec("causal", find_causal_anomalies, IncrementalCausalChecker)
    if checker == "read-atomic":
        from repro.consistency.atomicity import find_fractured_reads
        from repro.consistency.incremental import IncrementalReadAtomicChecker

        return CheckerSpec(
            "read-atomic", find_fractured_reads, IncrementalReadAtomicChecker
        )
    if checker == "sessions":
        from repro.consistency.incremental import IncrementalSessionChecker
        from repro.consistency.sessions import check_sessions

        return CheckerSpec("sessions", check_sessions, IncrementalSessionChecker)
    raise ValueError(f"unknown checker {checker!r}")


def clients_done(sim: Simulation, clients: Sequence[ProcessId]) -> bool:
    """Every client idle: no active transaction, nothing pending."""
    from repro.txn.client import ClientBase

    for c in clients:
        p = sim.processes[c]
        if not isinstance(p, ClientBase) or p.current is not None or p.pending:
            return False
    return True


class SerialSearch:
    """One search over one live simulation, any serial strategy.

    Owns the seen-set, budgets and truncation accounting.  The caller
    provides the simulation positioned at the root configuration; the
    search mutates it freely (snapshot/restore discipline) and leaves it
    in an unspecified configuration.
    """

    def __init__(
        self,
        sim: Simulation,
        pids: Sequence[ProcessId],
        clients: Sequence[ProcessId],
        result: ExplorationResult,
        checker: "CheckerSpec | Callable",
        max_depth: int,
        max_states: int,
        first_violation_only: bool,
        por: bool,
        rng_seed: int = 0,
        trail_prefix: Tuple[str, ...] = (),
        incremental: bool = False,
        oracle: bool = False,
        ctx=None,
        canonical_keys: bool = False,
    ):
        self.sim = sim
        self.pids = tuple(pids)
        self.clients = tuple(clients)
        self.result = result
        if not isinstance(checker, CheckerSpec):  # bare batch callable
            checker = CheckerSpec(getattr(checker, "__name__", "?"), checker)
        self.checker = checker
        self.max_depth = max_depth
        self.max_states = max_states
        self.first_violation_only = first_violation_only
        self.por = por
        self.rng_seed = rng_seed
        #: labels prepended to violation schedules (parallel subtree roots)
        self.trail_prefix = trail_prefix
        #: key the seen-set canonically even without POR (parallel mode,
        #: POR-safe protocols only).  The strict fingerprint deliberately
        #: excludes the event/message counters, so two strict-equal
        #: states can still differ in *future fingerprint identity* —
        #: under a cross-worker claim set that would make the explored
        #: region depend on which worker claimed first.  The canonical
        #: print is counter-blind *and* a bisimulation for POR-safe
        #: protocols, so the claimed quotient is schedule-independent.
        self.canonical_keys = canonical_keys
        #: worker context for the work-stealing pool (None when serial):
        #: duck-typed provider of the global state budget, the shared
        #: fingerprint claim set, subtree publication and first-violation
        #: pruning — see ``repro.engine.parallel.WorkerContext``
        self.ctx = ctx
        self.abort = False      # first violation found: stop everything
        self.exhausted = False  # state budget spent: stop everything
        # DFS-preorder ordinal of the current node: the index path taken
        # through each ancestor's explorable-children list.  Prefixed by
        # ctx.prefix (the task's own ordinal) it is a *global* preorder
        # key — violations sort by it so the parallel merge can pick the
        # serial DFS's first violation regardless of worker timing.
        self._path: List[int] = []
        #: per-violation global ordinal keys, parallel to the slice of
        #: ``result.violations`` this search appended (parallel mode)
        self.violation_keys: List[Tuple[int, ...]] = []
        # fingerprint -> sleep sets it was visited with.  A revisit is
        # skippable iff some previous visit slept on a *subset* of what
        # we would sleep on now (it explored at least as much).  Without
        # POR every sleep set is empty and this degenerates to a set.
        self._seen: dict = {}
        self._trail: List[Event] = []
        # Incremental checking (DFS-shaped walks only: the checker's
        # checkpoint/rollback runs in lockstep with apply/restore, which
        # needs the stack discipline).  The checker is primed here from
        # the sim's *current* configuration — for a parallel subtree
        # root that one advance rebuilds the whole prefix state, after
        # which the subtree is pure delta work.
        self.incremental = bool(incremental and checker.incremental is not None)
        self.oracle = oracle
        self._checker = None
        self._consumed: Dict[str, int] = {}
        self._client_set = frozenset(self.clients)
        if self.incremental:
            from repro.txn.history import committed_deltas

            t0 = _wall()
            self._checker = checker.incremental()
            self._consumed, fresh = committed_deltas(sim, self.clients, {})
            if fresh:
                self._checker.advance(fresh)
            result.checker_seconds += _wall() - t0

    # -- incremental checker lockstep --------------------------------------

    def _delta_collect(self, pid: ProcessId) -> Optional[tuple]:
        """After a client step: collect newly-committed records.

        Commits only happen inside ``Simulation.step`` of a client (a
        delivery just parks the message in the income buffer), so the
        DFS loops call this for client-step edges only, and only ``pid``
        can have committed.  Returns ``(rollback token, fresh records)``
        for :meth:`_delta_rollback`, or None when the step did not
        commit.

        Collecting does **not** consume: the fresh records ride into the
        recursive call and are consumed only once the child survives its
        dedup/budget checks (or is a checked leaf), so subtrees that die
        unexplored never pay checker work.  A consumed delta is shared
        by the whole surviving subtree — every leaf verdict in it is
        then just :meth:`IncrementalChecker.anomalies` on maintained
        state.
        """
        from repro.txn.history import committed_deltas

        consumed = self._consumed
        if len(self.sim.processes[pid].completed) == consumed.get(pid, 0):
            return None
        token = (self._checker.checkpoint(), consumed)
        self._consumed, fresh = committed_deltas(
            self.sim, self.clients, consumed
        )
        return (token, fresh)

    def _delta_consume(self, fresh: tuple) -> None:
        t0 = _wall()
        self._checker.advance(fresh)
        self.result.checker_seconds += _wall() - t0

    def _delta_rollback(self, token: tuple) -> None:
        self._checker.rollback(token[0])
        self._consumed = token[1]

    def _fingerprint(self, snap: Configuration) -> bytes:
        """The seen-set key for the current configuration.

        POR keys on the trace-canonical fingerprint so commuting
        interleavings merge; without POR the strict (msg_id-covering)
        fingerprint keeps parity with the pre-engine explorer —
        except under ``canonical_keys`` (parallel workers on POR-safe
        protocols), where canonical keying keeps the cross-worker
        claimed quotient deterministic.
        """
        return self.sim.fingerprint(
            snap, canonical=self.por or self.canonical_keys
        )

    # -- seen-set ---------------------------------------------------------

    def _covered(self, fp: bytes, sleep: FrozenSet[Event]) -> bool:
        prior = self._seen.get(fp)
        if prior is None:
            return False
        if not self.por:
            return True
        return any(s <= sleep for s in prior)

    def _remember(self, fp: bytes, sleep: FrozenSet[Event]) -> None:
        if not self.por:
            self._seen[fp] = True
            return
        prior = self._seen.setdefault(fp, [])
        prior[:] = [s for s in prior if not (sleep <= s)]
        prior.append(sleep)

    def seen_states(self) -> int:
        return len(self._seen)

    def universal_fingerprints(self):
        """Fingerprints whose visits cover *every* later visit.

        A visit with an empty sleep set explored every outgoing event,
        so the sleep-subset rule (``prior ⊆ current``) covers any later
        visit of the same fingerprint (``∅ ⊆ anything``).  These are
        exactly the entries the parallel driver may publish into the
        cross-worker claim set.  Without POR every visit qualifies.
        """
        if not self.por:
            return list(self._seen)
        return [fp for fp, priors in self._seen.items() if frozenset() in priors]

    # -- budget ------------------------------------------------------------

    def _count_state(self) -> bool:
        """Count one expanded state against the budget; False = stop.

        Serial searches keep the historical local semantics (count, then
        exhaust when the count passes ``max_states``).  Under a worker
        context with a *global* budget the state is counted only if the
        shared counter grants it, so the pool's total ``states_visited``
        can never exceed the requested cap no matter how many workers
        run (the documented pre-stealing behaviour — N workers, N× the
        cap — survives behind ``per_worker_budget=True``).
        """
        r = self.result
        ctx = self.ctx
        if ctx is not None and ctx.budget is not None:
            if not ctx.budget.take():
                self.exhausted = True
                r.truncated += 1
                return False
            r.states_visited += 1
            return True
        r.states_visited += 1
        if r.states_visited > self.max_states:
            self.exhausted = True
            r.truncated += 1
            return False
        return True

    def _shared_covered(self, fp: bytes, sleep: FrozenSet[Event]) -> bool:
        """Consult (and claim in) the cross-worker fingerprint set.

        Only visits with an *empty* sleep set participate — their
        coverage is universal under the sleep-subset rule, so a hit is
        sound for any later visitor; a non-empty-sleep visit neither
        claims nor trusts the shared set and falls back to the local
        sleep-aware seen dict (see docs/model.md).  A losing claim is a
        cross-worker dedup; a winning claim makes this worker the one
        expander of the fingerprint.
        """
        ctx = self.ctx
        if ctx is None or ctx.seen is None or sleep:
            return False
        c = self.sim.counters
        if ctx.seen.claim(fp):
            c.shared_seen_inserts += 1
            return False
        c.shared_seen_hits += 1
        return True

    # -- leaves -----------------------------------------------------------

    def _check_leaf(self) -> None:
        from repro.txn.history import build_history

        r = self.result
        r.schedules_completed += 1
        r.checks += 1
        t0 = _wall()
        if self.incremental:
            anomalies = self._checker.anomalies()
        else:
            hist = build_history(self.sim, clients=self.clients)
            anomalies = self.checker.batch(hist)
        r.checker_seconds += _wall() - t0
        if self.oracle and self.incremental:
            hist = build_history(self.sim, clients=self.clients)
            expect = self.checker.batch(hist)
            if anomalies != expect:
                raise AssertionError(
                    f"incremental {self.checker.name} verdict diverged "
                    f"from the batch oracle:\n  incremental: {anomalies!r}"
                    f"\n  batch:       {expect!r}"
                )
        if anomalies:
            labels = list(self.trail_prefix) + [e.label for e in self._trail]
            r.violations.append((labels, anomalies))
            if self.ctx is not None:
                key = self.ctx.prefix + tuple(self._path)
                self.violation_keys.append(key)
                self.ctx.report_violation(key)
            if self.first_violation_only:
                # within one task DFS preorder *is* key order, so the
                # first violation found is the task's minimal one
                self.abort = True

    def _child_sleep(
        self, sleep: FrozenSet[Event], prior: List[Event], event: Event
    ) -> FrozenSet[Event]:
        if not self.por:
            return _EMPTY
        return frozenset(
            x for x in sleep.union(prior) if independent(x, event)
        )

    # -- DFS (the reference strategy) -------------------------------------

    def run_dfs(self, depth: int = 0, sleep: FrozenSet[Event] = _EMPTY) -> None:
        """Depth-first from the sim's current configuration."""
        self._dfs(depth, sleep, ())

    def _dfs(
        self, depth: int, sleep: FrozenSet[Event], fresh: Sequence
    ) -> None:
        r = self.result
        ctx = self.ctx
        if ctx is not None and ctx.pruned(self._path):
            # a violation with a smaller global ordinal already exists:
            # nothing below this node can beat it (keys only grow here)
            return
        events = enabled_events(self.sim, self.pids)
        if not events:
            if not self._count_state():
                return
            if clients_done(self.sim, self.clients):
                if fresh:
                    self._delta_consume(fresh)
                self._check_leaf()
            return  # stuck without finishing: not a legal maximal run
        # one snapshot per node: every child branch mutates the live sim
        # and restores from this same (immutable) snapshot afterwards;
        # fingerprinting right after attaches the per-process dumps so
        # each child restore re-primes the fingerprint cache.
        snap = self.sim.snapshot()
        fp = self._fingerprint(snap)
        if self._covered(fp, sleep):
            r.states_deduped += 1
            return
        if self._shared_covered(fp, sleep):
            # another worker owns this fingerprint; remember it locally
            # so later intra-worker revisits dedup without the lock
            r.states_deduped += 1
            self._remember(fp, sleep)
            return
        self._remember(fp, sleep)
        if not self._count_state():
            return
        if depth >= self.max_depth:
            r.truncated += 1
            return
        if fresh:
            # the node survived its dedup and budget checks: consume the
            # records committed on the entering edge; the whole subtree
            # shares the result
            self._delta_consume(fresh)
        explorable = (
            [e for e in events if e not in sleep] if self.por else events
        )
        prior: List[Event] = []
        for i, e in enumerate(explorable):
            child_sleep = self._child_sleep(sleep, prior, e)
            if (
                ctx is not None
                and i > 0
                and depth + 1 < self.max_depth
                and ctx.want_publish(depth + 1)
            ):
                # the deque is hungry: ship this child subtree (snapshot
                # + trail + depth + sleep + global ordinal) back to the
                # pool instead of exploring it here — a later sibling of
                # work in progress, so local progress is never blocked.
                # Not counted: the worker that expands it counts it.
                e.apply(self.sim)
                self._trail.append(e)
                ctx.publish(
                    self.sim.snapshot(),
                    depth + 1,
                    child_sleep,
                    self.trail_prefix
                    + tuple(ev.label for ev in self._trail),
                    ctx.prefix + tuple(self._path) + (i,),
                )
                self._trail.pop()
                self.sim.restore(snap)
                prior.append(e)
                continue
            e.apply(self.sim)
            self._trail.append(e)
            self._path.append(i)
            # collect in lockstep with apply; rollback in lockstep with
            # restore — backtracking reuses the parent's checker state
            # instead of recomputing it.  None on non-commit edges.
            ck = (
                self._delta_collect(e.pid)
                if self.incremental
                and e.__class__ is Step
                and e.pid in self._client_set
                else None
            )
            self._dfs(depth + 1, child_sleep, ck[1] if ck else ())
            if ck is not None:
                self._delta_rollback(ck[0])
            self._path.pop()
            self._trail.pop()
            self.sim.restore(snap)
            prior.append(e)
            if self.abort:
                return
            if self.exhausted:
                r.truncated += len(explorable) - 1 - i  # cut siblings
                return

    # -- frontier seeding (parallel mode) ---------------------------------

    def collect_frontier(
        self, cutoff: int, depth: int = 0, sleep: FrozenSet[Event] = _EMPTY
    ) -> List[SearchNode]:
        """DFS-preorder roots at ``cutoff`` depth, leaves checked en route.

        Identical to :meth:`run_dfs` above the cutoff; a node *at* the
        cutoff is snapshotted and returned instead of expanded (and not
        counted — the worker that expands it counts it).
        """
        roots: List[SearchNode] = []
        self._seed(cutoff, depth, sleep, roots, ())
        return roots

    def _seed(
        self,
        cutoff: int,
        depth: int,
        sleep: FrozenSet[Event],
        roots: List[SearchNode],
        fresh: Sequence,
    ) -> None:
        r = self.result
        events = enabled_events(self.sim, self.pids)
        if not events:
            if not self._count_state():
                return
            if clients_done(self.sim, self.clients):
                if fresh:
                    self._delta_consume(fresh)
                self._check_leaf()
            return
        snap = self.sim.snapshot()
        fp = self._fingerprint(snap)
        if self._covered(fp, sleep):
            r.states_deduped += 1
            return
        if depth >= cutoff or depth >= self.max_depth:
            # a subtree root: remembered (so a duplicate reached later in
            # the seeding walk is pruned exactly as the serial DFS would)
            # but not counted — its worker counts it on entry.
            self._remember(fp, sleep)
            roots.append(
                SearchNode(
                    snap, fp, tuple(self._trail), depth, sleep,
                    key=tuple(self._path),
                )
            )
            return
        self._remember(fp, sleep)
        if not self._count_state():
            return
        if fresh:
            self._delta_consume(fresh)
        explorable = (
            [e for e in events if e not in sleep] if self.por else events
        )
        prior: List[Event] = []
        for i, e in enumerate(explorable):
            child_sleep = self._child_sleep(sleep, prior, e)
            e.apply(self.sim)
            self._trail.append(e)
            self._path.append(i)
            ck = (
                self._delta_collect(e.pid)
                if self.incremental
                and e.__class__ is Step
                and e.pid in self._client_set
                else None
            )
            self._seed(cutoff, depth + 1, child_sleep, roots, ck[1] if ck else ())
            if ck is not None:
                self._delta_rollback(ck[0])
            self._path.pop()
            self._trail.pop()
            self.sim.restore(snap)
            prior.append(e)
            if self.abort:
                return
            if self.exhausted:
                r.truncated += len(explorable) - 1 - i
                return

    # -- BFS ---------------------------------------------------------------

    def run_bfs(self, depth: int = 0, sleep: FrozenSet[Event] = _EMPTY) -> None:
        """Breadth-first from the sim's current configuration.

        Finds shortest counterexamples first.  Children are deduped at
        generation time so the frontier never holds duplicate snapshots.
        """
        from collections import deque

        r = self.result
        sim = self.sim
        snap = sim.snapshot()
        fp = self._fingerprint(snap)
        self._remember(fp, sleep)
        frontier = deque(
            [SearchNode(snap, fp, tuple(self._trail), depth, sleep)]
        )
        while frontier:
            node = frontier.popleft()
            sim.restore(node.snapshot)
            events = enabled_events(sim, self.pids)
            if not self._count_state():
                r.truncated += len(frontier)
                return
            if not events:
                if clients_done(sim, self.clients):
                    self._trail = list(node.trail)
                    self._check_leaf()
                    if self.abort:
                        return
                continue
            if node.depth >= self.max_depth:
                r.truncated += 1
                continue
            explorable = (
                [e for e in events if e not in node.sleep]
                if self.por
                else events
            )
            prior: List[Event] = []
            for e in explorable:
                child_sleep = self._child_sleep(node.sleep, prior, e)
                e.apply(sim)
                child_snap = sim.snapshot()
                child_fp = self._fingerprint(child_snap)
                if self._covered(child_fp, child_sleep) or self._shared_covered(
                    child_fp, child_sleep
                ):
                    r.states_deduped += 1
                else:
                    self._remember(child_fp, child_sleep)
                    frontier.append(
                        SearchNode(
                            child_snap,
                            child_fp,
                            node.trail + (e,),
                            node.depth + 1,
                            child_sleep,
                        )
                    )
                sim.restore(node.snapshot)
                prior.append(e)

    # -- random walks -------------------------------------------------------

    def run_random(self, depth: int = 0, sleep: FrozenSet[Event] = _EMPTY) -> None:
        """Seeded random walks to quiescence, until the state budget.

        No dedup (the budget bounds work, not coverage) and no POR — a
        walk keeps one interleaving per attempt anyway.  Deterministic
        given ``rng_seed``.
        """
        r = self.result
        sim = self.sim
        rng = random.Random(self.rng_seed)
        root = sim.snapshot()
        base_trail = list(self._trail)
        while not self.abort and r.states_visited < self.max_states:
            sim.restore(root)
            self._trail = list(base_trail)
            d = depth
            while True:
                events = enabled_events(sim, self.pids)
                if not events:
                    if clients_done(sim, self.clients):
                        self._check_leaf()
                    break
                if d >= self.max_depth:
                    r.truncated += 1
                    break
                e = rng.choice(events)
                e.apply(sim)
                self._trail.append(e)
                r.states_visited += 1
                d += 1
                if r.states_visited >= self.max_states:
                    self.exhausted = True
                    r.truncated += 1
                    break

    def run(self, strategy: str, depth: int = 0, sleep: FrozenSet[Event] = _EMPTY) -> None:
        if strategy != "dfs":
            # BFS and random walks jump between non-ancestor
            # configurations, which the trail-based checker rollback
            # cannot follow — they keep the batch scan
            self.incremental = False
        self.result.incremental = self.incremental
        if strategy == "dfs":
            self.run_dfs(depth, sleep)
        elif strategy == "bfs":
            self.run_bfs(depth, sleep)
        elif strategy == "random":
            self.run_random(depth, sleep)
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )


def run(
    system,
    *,
    checker: str = "causal",
    strategy: str = "dfs",
    por: bool = False,
    workers: int = 1,
    max_depth: int = 40,
    max_states: int = 50_000,
    first_violation_only: bool = True,
    rng_seed: int = 0,
    incremental: Optional[bool] = None,
    checker_oracle: bool = False,
    per_worker_budget: bool = False,
) -> ExplorationResult:
    """Explore every schedule of ``system``'s current configuration.

    The caller has already invoked the scenario's transactions; the
    engine enumerates adversary schedules from here.  ``strategy`` is
    one of ``"dfs"`` / ``"bfs"`` / ``"random"``; ``por=True`` switches on
    sleep-set partial-order reduction; ``workers > 1`` runs the
    work-stealing frontier (see :mod:`repro.engine.parallel`).
    ``max_states`` is a *global* budget — the pool's total
    ``states_visited`` never exceeds it regardless of ``workers``;
    ``per_worker_budget=True`` restores the pre-stealing per-worker
    budget (each worker gets the full cap — kept for benchmark
    comparisons against the old pool).

    ``incremental=None`` (the default) uses the delta checkers on DFS
    walks and the batch scan elsewhere; ``False`` forces the batch scan
    everywhere, ``True`` requests the delta checkers (still a no-op for
    BFS/random, whose configuration jumps the checker rollback cannot
    follow).  ``checker_oracle=True`` additionally runs the batch scan
    at every leaf and raises if the verdicts are not bit-identical.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    spec = resolve_checker(checker)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    por = por and strategy != "random"
    use_inc = (
        (incremental if incremental is not None else True)
        and strategy == "dfs"
        and spec.incremental is not None
    )
    result = ExplorationResult(
        protocol=system.info.name,
        strategy=strategy,
        por=por,
        workers=workers,
    )
    sim = system.sim
    pids = tuple(system.clients) + tuple(system.service_pids)
    if workers > 1:
        from repro.engine.parallel import run_parallel

        return run_parallel(
            system,
            checker=checker,
            strategy=strategy,
            por=por,
            workers=workers,
            max_depth=max_depth,
            max_states=max_states,
            first_violation_only=first_violation_only,
            rng_seed=rng_seed,
            result=result,
            incremental=use_inc,
            oracle=checker_oracle,
            per_worker_budget=per_worker_budget,
        )
    search = SerialSearch(
        sim,
        pids,
        system.clients,
        result,
        spec,
        max_depth,
        max_states,
        first_violation_only,
        por,
        rng_seed=rng_seed,
        incremental=use_inc,
        oracle=checker_oracle,
    )
    search.run(strategy)
    result.exhausted = search.exhausted
    result.steps = result.states_visited
    result.counters = replace(sim.counters)
    return result
