"""The shared budget/result vocabulary for every search in the repo.

Both schedule-space exploration (:mod:`repro.engine.core`) and the
serialization search behind the exact consistency checkers
(:mod:`repro.consistency.search`) are bounded searches: they either run
to completion or hit an explicit budget.  :class:`SearchOutcome` is the
common base — ``steps`` counts the units of work actually performed,
``exhausted`` records that a budget stopped the search early, and
``conclusive`` is the derived judgement a caller may rely on ("a negative
answer means *no*, not *not found yet*").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SearchOutcome:
    """Base result of any budgeted search."""

    #: units of work performed (expanded states, placement attempts, ...)
    steps: int = 0
    #: True when a budget (states, steps, ...) stopped the search early
    exhausted: bool = False

    @property
    def conclusive(self) -> bool:
        """Whether the search's answer is definitive rather than truncated."""
        return not self.exhausted
