"""The work-stealing parallel frontier with a shared canonical seen-set.

Parallelising the explorer is only possible because of two PR-1
invariants: configuration snapshots are *self-contained* (a worker
re-materializes a private simulation from the shipped snapshot alone —
after PR 5 they are cheap per-component delta blobs, which is what makes
shipping subtree roots mid-run affordable) and fingerprints are
*hash-seed-independent* (every worker computes the same 16 bytes for the
same configuration, so one cross-process seen-set is meaningful).

The scheme replaces the old ship-once pool (fan the seeding frontier out
exactly once, merge at the end) with three cooperating pieces:

* **A shared deque of subtree roots.**  The parent runs the ordinary
  serial search truncated at a shallow cutoff, collects the DFS-preorder
  frontier, and enqueues every root (delta snapshot + trail + depth +
  sleep set + *ordinal*).  Long-lived workers pull roots until the deque
  drains; a worker whose queue-side supply runs low is fed by…
* **Publication (the "steal" half).**  A worker that sees the deque
  hungrier than the pool (fewer queued roots than workers) publishes the
  later siblings of its in-progress work back to the deque — snapshot,
  trail, depth, sleep set, ordinal — instead of exploring them locally.
  A heavy subtree is therefore *split across the pool while it runs*
  rather than pinning one core, which is the whole point: the old pool's
  wall-clock was the weight of the heaviest subtree.
* **A shared canonical-fingerprint seen-set** (:mod:`repro.engine.seenset`):
  an open-addressing claim table in ``multiprocessing.shared_memory``
  (spilling to a disk-backed sqlite store for populations larger than
  RAM), consulted by every worker before expansion.  A fingerprint is
  claimed exactly once pool-wide, so a configuration reachable from two
  shipped roots is expanded once — not once per root as the old pool
  did; ``states_visited`` can no longer exceed the serial count.  POR
  soundness: only visits with an **empty sleep set** claim or trust the
  shared set (their coverage is universal under the sleep-subset rule
  ``prior ⊆ current``); non-empty-sleep visits use the worker-local
  sleep-aware seen dict, exactly the serial rule.

**Determinism.**  Every task and every violation carries a global
DFS-preorder *ordinal* — the index path through each ancestor's
explorable-children list, rooted at the seeding walk.  The merge is a
sort: violations order by ordinal, and with ``first_violation_only`` the
winner is the lowest ordinal regardless of which worker found it first
in wall-clock — bit-identical to the serial DFS's first violation, since
preorder *is* ordinal order.  Workers prune any subtree whose ordinal
prefix exceeds the best known violation, so the speculative overshoot
stays bounded.  Counts merge by summation: with the shared claim set
each fingerprint is expanded exactly once pool-wide, so on exhaustive
runs (no budget/depth truncation) the totals are schedule-independent —
without POR they equal the serial run's exactly; with POR a
fingerprint revisited under incomparable sleep sets may land in two
workers' local dicts, so ``states_visited`` may (rarely) differ from
serial by a handful of re-expansions, never anomalies or verdicts.

**Budget.**  ``max_states`` is a *global* budget: workers draw chunks
from one shared counter, so ``workers=N`` can no longer visit N× the
requested cap (the old per-worker behaviour survives behind
``per_worker_budget=True`` for benchmark comparisons).  When the global
budget binds, *which* states were visited is scheduling-dependent — the
run is truncated either way (``exhausted``); bit-identity claims apply
to exhaustive runs, same as the depth budget.

Two guards keep the fan-out from costing more than it saves:

* **Root dedup** — before shipping, roots are deduped by *canonical*
  fingerprint (same sleep-subset rule as the seen-set); without POR the
  canonical prints are recomputed in one restore sweep ordered by
  snapshot sharing (:func:`sweep_order`) so the recompute cost is one
  delta-restore chain, not ``O(roots × full restore)``.
* **Auto-serial fallback** — a ``workers > 1`` request is answered
  serially (``result.auto_serial``) when the fan-out cannot pay for pool
  spin-up: a deterministic serial probe capped at
  :data:`SERIAL_PROBE_STATES` (overridable via the
  ``SERIAL_PROBE_STATES`` environment variable; CI sets ``0`` to force
  the pool) settles trivially small scopes outright, and a seeding walk
  that finds fewer than ``workers + 1`` roots falls back to one full
  serial search.  Both produce the serial result *by construction*.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.core import ExplorationResult, SerialSearch, resolve_checker
from repro.engine.seenset import make_seen_set
from repro.sim.executor import SimCounters, Simulation

#: target number of subtree roots per worker for the *initial* seeding
#: (stealing rebalances later, so this only needs to cover start-up)
ROOTS_PER_WORKER = 4

#: never seed deeper than this: each extra level multiplies seeding work
MAX_CUTOFF = 10

#: the auto-serial probe budget: a scope that a serial search finishes
#: within this many states is cheaper to answer serially than to ship to
#: a pool (process spin-up alone dwarfs the work).  Set to 0 to disable
#: the probe (tests and the CI steal-path smoke arm use this to force
#: the pool path); the SERIAL_PROBE_STATES environment variable
#: overrides the default at import time.
SERIAL_PROBE_STATES = int(os.environ.get("SERIAL_PROBE_STATES", "4096"))

#: a worker publishes later siblings back to the deque only after this
#: many locally-expanded states since its previous publication — the
#: deque stays fed without shattering the endgame into per-node tasks
PUBLISH_INTERVAL = 4

#: how long an idle worker sleeps on an empty deque before re-checking
#: (each timeout is one ``idle_waits`` tick in the merged counters)
IDLE_TICK = 0.05

#: byte budget for an encoded ordinal inside the shared best-violation
#: cell (2 bytes per tree level — far above any reachable depth)
_KEY_BYTES = 512


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _encode_key(key: Sequence[int]) -> bytes:
    """Ordinal tuple -> bytes whose lexicographic order is preorder.

    Fixed 2 bytes per level, big-endian: byte-wise comparison then
    matches tuple comparison, and a shorter key that is a prefix of a
    longer one sorts first — ancestors before descendants, exactly
    DFS preorder.
    """
    return b"".join(i.to_bytes(2, "big") for i in key)


class GlobalBudget:
    """The shared ``max_states`` counter, drawn down in chunks.

    Workers take states in chunks of :data:`CHUNK` to keep the shared
    lock off the per-state hot path; unused chunk remainders are
    returned on worker exit, so the pool can undershoot the cap by at
    most ``workers × CHUNK`` in a truncated run and by nothing in an
    exhaustive one.  The pool's total ``states_visited`` can never
    *exceed* the cap: a state is only counted after a successful take.
    """

    CHUNK = 32

    def __init__(self, total: int, ctx):
        self._remaining = ctx.Value("q", max(total, 0))
        self._local = 0

    def take(self) -> bool:
        if self._local > 0:
            self._local -= 1
            return True
        with self._remaining.get_lock():
            grant = min(self.CHUNK, self._remaining.value)
            self._remaining.value -= grant
        if grant == 0:
            return False
        self._local = grant - 1
        return True

    def release_local(self) -> None:
        if self._local:
            with self._remaining.get_lock():
                self._remaining.value += self._local
            self._local = 0

    def __getstate__(self):
        return self._remaining

    def __setstate__(self, state):
        self._remaining = state
        self._local = 0


class BestViolation:
    """The pool-wide lowest violation ordinal (first-violation pruning).

    ``offer`` lowers it, ``beats`` answers "is everything under this
    ordinal prefix already beaten?".  A raw flag makes the common case —
    no violation anywhere yet — a lock-free single-byte read.
    """

    def __init__(self, ctx):
        self._arr = ctx.Array("B", 2 + _KEY_BYTES)
        self._flag = ctx.RawValue("b", 0)

    def _read(self) -> Optional[bytes]:
        n = (self._arr[0] << 8) | self._arr[1]
        if n == 0:
            return None
        return bytes(self._arr[2 : 2 + n])

    def offer(self, enc: bytes) -> None:
        enc = enc[:_KEY_BYTES]
        with self._arr.get_lock():
            cur = self._read()
            if cur is None or enc < cur:
                self._arr[0] = len(enc) >> 8
                self._arr[1] = len(enc) & 0xFF
                self._arr[2 : 2 + len(enc)] = enc
                self._flag.value = 1

    def beats(self, enc: bytes) -> bool:
        if not self._flag.value:  # no violation reported anywhere yet
            return False
        with self._arr.get_lock():
            cur = self._read()
        return cur is not None and cur <= enc

    def __getstate__(self):
        return (self._arr, self._flag)

    def __setstate__(self, state):
        self._arr, self._flag = state


class WorkerContext:
    """Per-worker bundle of the pool's shared machinery.

    Duck-typed against :class:`repro.engine.core.SerialSearch`'s ``ctx``
    hooks: the global state budget (``budget.take``), the cross-worker
    claim set (``seen.claim``), sibling publication back to the deque
    (``want_publish``/``publish``), first-violation ordinal pruning
    (``pruned``/``report_violation``) and the current task's global
    ordinal ``prefix``.
    """

    def __init__(
        self,
        worker_id: int,
        workers: int,
        task_q,
        outstanding,
        seen,
        budget: Optional[GlobalBudget],
        best: Optional[BestViolation],
        counters: SimCounters,
    ):
        self.worker_id = worker_id
        self.workers = workers
        self.task_q = task_q
        self.outstanding = outstanding
        self.seen = seen
        self.budget = budget
        self.best = best
        self.counters = counters
        self.prefix: Tuple[int, ...] = ()
        self._since_publish = 0

    # -- budget/seen are consumed directly by SerialSearch -----------------

    def _hungry(self) -> bool:
        try:
            return self.task_q.qsize() < self.workers
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return False

    def want_publish(self, depth: int) -> bool:
        self._since_publish += 1
        if self._since_publish < PUBLISH_INTERVAL:
            return False
        if not self._hungry():
            return False
        self._since_publish = 0
        return True

    def publish(
        self,
        snapshot,
        depth: int,
        sleep,
        trail_labels: Tuple[str, ...],
        key: Tuple[int, ...],
    ) -> None:
        payload = pickle.dumps(
            {
                "root": snapshot,
                "depth": depth,
                "sleep": sleep,
                "trail_prefix": trail_labels,
                "key": key,
            }
        )
        with self.outstanding.get_lock():
            self.outstanding.value += 1
        self.task_q.put((_encode_key(key), self.worker_id, payload))
        self.counters.publishes += 1

    def pruned(self, path: Sequence[int]) -> bool:
        if self.best is None:
            return False
        return self.best.beats(_encode_key(self.prefix) + _encode_key(path))

    def report_violation(self, key: Tuple[int, ...]) -> None:
        if self.best is not None:
            self.best.offer(_encode_key(key))


class _SeedingContext:
    """The parent's seeding-walk context: record violation ordinals only.

    The seeding walk is serial — no budget, no shared set, no stealing —
    but its leaf violations must carry ordinals so they merge into the
    same global preorder as the workers'.
    """

    prefix: Tuple[int, ...] = ()
    seen = None
    budget = None

    def want_publish(self, depth: int) -> bool:
        return False

    def pruned(self, path) -> bool:
        return False

    def report_violation(self, key) -> None:
        pass


def _task_done(outstanding, task_q, workers: int) -> None:
    """Retire one task; the retirer of the last task releases the pool."""
    with outstanding.get_lock():
        outstanding.value -= 1
        if outstanding.value == 0:
            for _ in range(workers):
                task_q.put(None)


def _worker_main(
    worker_id: int,
    boot_payload: bytes,
    task_q,
    result_q,
    outstanding,
    seen,
    budget: Optional[GlobalBudget],
    best: Optional[BestViolation],
) -> None:
    """One long-lived worker: pull, explore, publish, repeat."""
    boot = pickle.loads(boot_payload)
    sim = Simulation([])
    sim.snapshot_mode = boot["snapshot_mode"]
    spec = resolve_checker(boot["checker"])
    first_violation_only = boot["first_violation_only"]
    ctx = WorkerContext(
        worker_id,
        boot["workers"],
        task_q,
        outstanding,
        seen if boot["strategy"] != "random" else None,
        budget if boot["strategy"] != "random" else None,
        best if first_violation_only else None,
        sim.counters,
    )
    if boot["strategy"] != "dfs":
        # stealing needs the DFS stack discipline; bfs workers still use
        # the shared set + global budget, random keeps per-task budgets
        ctx.want_publish = lambda depth: False
    agg = {
        "states_visited": 0,
        "states_deduped": 0,
        "schedules_completed": 0,
        "truncated": 0,
        "checks": 0,
        "checker_seconds": 0.0,
        "violations": [],  # (ordinal key, seq-in-task, labels, anomalies)
        "exhausted": False,
        "tasks": 0,
        "error": None,
    }
    try:
        while True:
            try:
                task = task_q.get(timeout=IDLE_TICK)
            except queue_mod.Empty:
                sim.counters.idle_waits += 1
                continue
            if task is None:
                break
            key_enc, publisher, payload = task
            try:
                if best is not None and first_violation_only and best.beats(key_enc):
                    continue  # a lower-ordinal violation already exists
                args = pickle.loads(payload)
                if publisher >= 0 and publisher != worker_id:
                    sim.counters.steals += 1
                agg["tasks"] += 1
                sim.restore(args["root"])
                result = ExplorationResult(
                    protocol=boot["protocol"],
                    strategy=boot["strategy"],
                    por=boot["por"],
                )
                ctx.prefix = tuple(args["key"])
                # the subtree root's checker state is rebuilt here from
                # the shipped snapshot (SerialSearch primes the
                # incremental checker from the sim's current
                # configuration); the subtree is then pure deltas
                search = SerialSearch(
                    sim,
                    boot["pids"],
                    boot["clients"],
                    result,
                    spec,
                    boot["max_depth"],
                    boot["max_states"],
                    first_violation_only,
                    boot["por"],
                    rng_seed=boot["rng_seed"] + (args["key"][0] if args["key"] else 0),
                    trail_prefix=tuple(args["trail_prefix"]),
                    incremental=boot["incremental"],
                    oracle=boot["oracle"],
                    ctx=ctx,
                    canonical_keys=boot["canonical_keys"],
                )
                search.run(
                    boot["strategy"], depth=args["depth"], sleep=args["sleep"]
                )
                agg["states_visited"] += result.states_visited
                agg["states_deduped"] += result.states_deduped
                agg["schedules_completed"] += result.schedules_completed
                agg["truncated"] += result.truncated
                agg["checks"] += result.checks
                agg["checker_seconds"] += result.checker_seconds
                agg["exhausted"] = agg["exhausted"] or search.exhausted
                keys = list(search.violation_keys)
                for seq, (labels, anomalies) in enumerate(result.violations):
                    key = keys[seq] if seq < len(keys) else tuple(args["key"])
                    agg["violations"].append(
                        (_encode_key(key), seq, labels, anomalies)
                    )
            finally:
                _task_done(outstanding, task_q, boot["workers"])
    except BaseException as exc:  # ship the failure; the parent raises
        import traceback

        agg["error"] = f"{exc!r}\n{traceback.format_exc()}"
    finally:
        if budget is not None:
            budget.release_local()
        agg["counters"] = replace(sim.counters)
        # plain close: process exit then joins both queues' feeder
        # threads, flushing any in-flight sentinel/published puts —
        # cancelling the join here could strand peers without sentinels
        result_q.put(pickle.dumps(agg))


def run_parallel(
    system,
    *,
    checker: str,
    strategy: str,
    por: bool,
    workers: int,
    max_depth: int,
    max_states: int,
    first_violation_only: bool,
    rng_seed: int,
    result: ExplorationResult,
    incremental: bool = False,
    oracle: bool = False,
    per_worker_budget: bool = False,
) -> ExplorationResult:
    """Explore ``system`` with a work-stealing pool of ``workers``."""
    sim = system.sim
    pids = tuple(system.clients) + tuple(system.service_pids)
    clients = tuple(system.clients)
    spec = resolve_checker(checker)
    root_snap = sim.snapshot()
    target = max(workers * ROOTS_PER_WORKER, workers + 1)
    # Cross-worker dedup keys on the *canonical* fingerprint: the strict
    # print deliberately excludes the event/message counters, so two
    # strict-equal states can diverge in future fingerprint identity —
    # a strict-keyed claim set would make the explored region (and every
    # count) depend on which worker claimed first.  Canonical prints are
    # counter-blind and a bisimulation for POR-safe protocols, so the
    # claimed quotient — and all merged counts — are schedule-
    # independent.  por_safe=False protocols (they branch on the global
    # step counter, outside the bisimulation) get no shared set at all:
    # workers fall back to strict worker-local dedup, which can
    # re-expand a fingerprint once per subtree but can never change a
    # verdict.  See docs/extending.md.
    #
    # The claim set serves *exhaustive* runs only, and when it is on the
    # pool explores the canonical **closure** — sleep sets off, every
    # visit claims — because neither composes with cross-worker
    # claim-once: a non-empty-sleep visit's coverage is not universal
    # (so it could neither claim nor trust the set), and the worker-
    # local sleep dicts it would fall back to make counts depend on the
    # stealing partition.  The closure is sound (every reachable
    # canonical class is expanded exactly once, so every quiescent class
    # is still checked — sleep sets only ever prune redundant
    # interleavings) and bit-deterministic.  First-violation runs
    # instead promise the serial DFS's exact winning trail, which the
    # claim set cannot keep (which strict path first reaches a class is
    # a wall-clock race), so they keep sleep sets and worker-local dedup
    # and rely on the ordinal merge + best-key pruning; they abort early
    # anyway.
    canon = por or getattr(system.info, "por_safe", False)
    use_shared = canon and not first_violation_only
    work_por = por and not use_shared

    def _serial(budget: int) -> SerialSearch:
        """One fresh full serial search from the root (auto-serial paths)."""
        sim.restore(root_snap)
        partial = ExplorationResult(
            protocol=result.protocol,
            strategy=strategy,
            por=por,
            workers=workers,
        )
        s = SerialSearch(
            sim,
            pids,
            clients,
            partial,
            spec,
            max_depth,
            budget,
            first_violation_only,
            por,
            rng_seed=rng_seed,
            incremental=incremental,
            oracle=oracle,
        )
        s.run(strategy, depth=0)
        return s

    # a cheap deterministic probe: tiny scopes are answered serially
    # outright — pool spin-up alone costs more than exploring a few
    # thousand states on the delta-restore path.  The probe IS the
    # serial run (same strategy, same seeds), so returning its result
    # matches ``workers=1`` bit for bit.
    if SERIAL_PROBE_STATES > 0:
        probe = _serial(min(max_states, SERIAL_PROBE_STATES))
        if probe.abort or not probe.exhausted or SERIAL_PROBE_STATES >= max_states:
            # settled: first violation found, scope finished within the
            # probe budget, or the probe budget already was the caller's
            _finalize(result, probe.result, probe, sim)
            result.auto_serial = True
            return result
        # scope outlives the probe: discard its counts (the pool recounts
        # from scratch; only SimCounters byte totals keep accumulating)

    # grow the cutoff until the frontier is wide enough to balance the
    # pool; each pass restarts from the root (shallow passes are cheap)
    roots = []
    search: Optional[SerialSearch] = None
    for cutoff in range(1, min(max_depth, MAX_CUTOFF) + 1):
        sim.restore(root_snap)
        partial = ExplorationResult(
            protocol=result.protocol,
            strategy=strategy,
            por=por,
            workers=workers,
        )
        search = SerialSearch(
            sim,
            pids,
            clients,
            partial,
            spec,
            max_depth,
            max_states,
            first_violation_only,
            work_por,
            rng_seed=rng_seed,
            incremental=incremental,
            oracle=oracle,
            ctx=_SeedingContext(),
            canonical_keys=use_shared,
        )
        roots = search.collect_frontier(cutoff)
        if (
            search.abort
            or search.exhausted
            or not roots
            or len(roots) >= target
        ):
            break
    assert search is not None
    partial = search.result
    if search.abort or search.exhausted or not roots:
        # the seeding walk already settled it (violation above the
        # cutoff, budget spent, or the whole scope is shallower than the
        # cutoff): the parent's serial prefix is the complete answer
        _finalize(result, partial, search, sim)
        return result

    if len(roots) < workers + 1:
        # not enough subtrees to keep the pool busy: one serial run is
        # cheaper than spinning up workers that would mostly idle
        fallback = _serial(max_states)
        _finalize(result, fallback.result, fallback, sim)
        result.auto_serial = True
        return result

    roots = _dedup_roots(sim, roots, por or use_shared, partial)

    ctx = _mp_context()
    seen = None
    if use_shared:
        # the cross-worker claim set: the expansion population is
        # bounded by the state budget; make_seen_set spills to the
        # disk-backed store when the in-memory table would outgrow its
        # budget
        seen = make_seen_set(max_states, ctx=ctx)
        # parent-side claims: every seeding-walk expansion whose
        # coverage is universal (empty sleep set) — minus the roots
        # themselves, whose subtrees are *not* explored yet and must be
        # claimed by the worker that expands them
        root_fps = {node.fingerprint for node in roots}
        for fp in search.universal_fingerprints():
            if fp not in root_fps:
                seen.claim(fp)
    budget = None
    if not per_worker_budget:
        budget = GlobalBudget(max_states - partial.states_visited, ctx)
    best = BestViolation(ctx) if first_violation_only else None
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    outstanding = ctx.Value("l", len(roots))
    for node in roots:
        payload = pickle.dumps(
            {
                "root": node.snapshot,
                "depth": node.depth,
                "sleep": node.sleep,
                "trail_prefix": tuple(e.label for e in node.trail),
                "key": node.key,
            }
        )
        task_q.put((_encode_key(node.key), -1, payload))
    boot_payload = pickle.dumps(
        {
            "pids": pids,
            "clients": clients,
            "checker": checker,
            "strategy": strategy,
            "por": work_por,
            "max_depth": max_depth,
            "max_states": max_states,
            "first_violation_only": first_violation_only,
            "rng_seed": rng_seed,
            "protocol": result.protocol,
            "incremental": incremental,
            "oracle": oracle,
            "workers": workers,
            "canonical_keys": use_shared,
            # explicit, not inherited: under a spawn start method the
            # class-level mode would reset to the default, and a worker
            # fingerprinting in a different mode than the parent's
            # seeding walk would not collide with the parent-side claims
            "snapshot_mode": sim.snapshot_mode,
        }
    )
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(i, boot_payload, task_q, result_q, outstanding, seen, budget, best),
            daemon=True,
        )
        for i in range(workers)
    ]
    for p in procs:
        p.start()

    keyed_violations: List[Tuple[bytes, int, list, list]] = [
        (_encode_key(key), seq, labels, anomalies)
        for seq, ((labels, anomalies), key) in enumerate(
            zip(partial.violations, search.violation_keys)
        )
    ]
    exhausted = search.exhausted
    error = None
    try:
        for _ in range(workers):
            while True:
                try:
                    raw = result_q.get(timeout=5.0)
                    break
                except queue_mod.Empty:
                    dead = [p for p in procs if not p.is_alive() and p.exitcode]
                    if dead:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"parallel worker died with exit code "
                            f"{dead[0].exitcode}"
                        )
            agg = pickle.loads(raw)
            if agg["error"]:
                error = agg["error"]
                continue
            partial.states_visited += agg["states_visited"]
            partial.states_deduped += agg["states_deduped"]
            partial.schedules_completed += agg["schedules_completed"]
            partial.truncated += agg["truncated"]
            partial.checks += agg["checks"]
            partial.checker_seconds += agg["checker_seconds"]
            keyed_violations.extend(agg["violations"])
            exhausted = exhausted or agg["exhausted"]
            sim.counters.merge(agg["counters"])
    finally:
        for p in procs:
            if error is None:
                p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()
                p.join()
        task_q.cancel_join_thread()
        result_q.cancel_join_thread()
        if seen is not None:
            seen.unlink()
    if error is not None:
        raise RuntimeError(f"parallel worker failed:\n{error}")

    # the deterministic merge: global DFS preorder *is* ordinal order,
    # so sorting recovers the serial violation order — and the lowest
    # ordinal is the serial DFS's first violation, regardless of which
    # worker found what when
    keyed_violations.sort(key=lambda kv: (kv[0], kv[1]))
    merged = [(labels, anomalies) for _, _, labels, anomalies in keyed_violations]
    partial.violations = merged[:1] if first_violation_only else merged

    search.exhausted = exhausted
    _finalize(result, partial, search, sim)
    result.roots_shipped = len(roots)
    result.shared_seen_hits = sim.counters.shared_seen_hits
    return result


def sweep_order(signatures: Sequence[Tuple]) -> List[int]:
    """The restore order that maximizes consecutive snapshot sharing.

    ``signatures[i]`` is root *i*'s component signature — one opaque
    token per component (in practice the identity of each per-process
    sub-blob plus the network capture).  A delta restore reloads exactly
    the components whose token differs from the live one, so the cost of
    fingerprinting all roots is the sum of *adjacent differences* along
    the sweep.  Greedy nearest-neighbour: start at root 0 (the live sim
    just produced it), repeatedly hop to the unvisited root sharing the
    most component tokens with the current one; ties break to the lowest
    index so the order is deterministic.  Pure function — unit-testable
    without a simulation.
    """
    n = len(signatures)
    if n <= 2:
        return list(range(n))
    remaining = set(range(1, n))
    order = [0]
    cur = signatures[0]
    while remaining:
        best_idx, best_shared = -1, -1
        for idx in sorted(remaining):
            sig = signatures[idx]
            shared = sum(1 for a, b in zip(cur, sig) if a is b or a == b)
            if shared > best_shared:
                best_idx, best_shared = idx, shared
        order.append(best_idx)
        remaining.discard(best_idx)
        cur = signatures[best_idx]
    return order


def _snapshot_signature(snapshot) -> Tuple:
    """Identity tokens of a delta snapshot's components (for sweep_order)."""
    blobs = getattr(snapshot, "proc_blobs", None)
    if blobs is None:  # blob/deepcopy snapshots share nothing component-wise
        return (id(snapshot),)
    return tuple(id(b) for _, b in blobs) + (id(snapshot.net_state),)


def _dedup_roots(
    sim: Simulation,
    roots: List,
    canonical: bool,
    partial: ExplorationResult,
) -> List:
    """Drop frontier roots whose subtree another shipped root covers.

    Keyed on the *canonical* fingerprint: when the seeding walk already
    keyed canonically (POR, or ``canonical_keys`` parallel seeding)
    ``node.fingerprint`` is reused; otherwise (strict-keyed seeding:
    ``por_safe=False`` protocols) the canonical print is recomputed per
    root.  The recompute batch
    runs as a single restore sweep in :func:`sweep_order` — roots whose
    delta snapshots share component sub-blobs restore consecutively, so
    each hop reloads (and re-fingerprints) only the components that
    actually differ, instead of paying a full restore per root in list
    order.  The keep/drop decision then replays in the *original*
    DFS-preorder: a later root is dropped iff an earlier kept root has
    the same canonical print and slept on a subset of the later one's
    sleep set (it explores at least as much); earlier wins so the
    DFS-preorder first-violation guarantee is untouched.  Drops are
    counted in ``states_deduped``, exactly as the serial canonical
    quotient counts the revisit each corresponds to.
    """
    fps: Dict[int, bytes] = {}
    if canonical:
        for i, node in enumerate(roots):
            fps[i] = node.fingerprint
    else:
        order = sweep_order([_snapshot_signature(n.snapshot) for n in roots])
        for i in order:
            node = roots[i]
            sim.restore(node.snapshot)
            fps[i] = sim.fingerprint(node.snapshot, canonical=True)
    kept: List = []
    seen: Dict[bytes, List] = {}
    for i, node in enumerate(roots):
        fp = fps[i]
        prior = seen.get(fp)
        if prior is not None and any(s <= node.sleep for s in prior):
            partial.states_deduped += 1
            continue
        seen.setdefault(fp, []).append(node.sleep)
        kept.append(node)
    return kept


def _finalize(
    result: ExplorationResult,
    partial: ExplorationResult,
    search: SerialSearch,
    sim: Simulation,
) -> None:
    result.states_visited = partial.states_visited
    result.states_deduped = partial.states_deduped
    result.schedules_completed = partial.schedules_completed
    result.truncated = partial.truncated
    result.checks = partial.checks
    result.checker_seconds = partial.checker_seconds
    result.violations = partial.violations
    result.exhausted = search.exhausted
    result.steps = result.states_visited
    result.incremental = search.incremental
    result.counters = replace(sim.counters)
