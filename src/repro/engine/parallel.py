"""The parallel frontier: subtree roots fanned out to worker processes.

Parallelising the explorer is only possible because of two PR-1
invariants: configuration snapshots are *self-contained bytes blobs*
(a worker re-materializes a private simulation from the blob alone) and
fingerprints are *hash-seed-independent* (every worker computes the same
16 bytes for the same configuration, so merged seen-set accounting is
meaningful across processes).

The scheme: the parent runs the ordinary serial search truncated at a
shallow cutoff depth, collecting the DFS-preorder frontier of subtree
roots; each root (snapshot + trail + depth + sleep set) is shipped to a
``multiprocessing`` worker that explores its subtree to completion with
the same strategy/POR knobs; per-worker counts, violations and
:class:`~repro.sim.executor.SimCounters` are merged in root order, which
makes the merged result deterministic regardless of worker scheduling.

Verdict fidelity: each worker fully explores its subtree, so the union
of leaves checked equals the serial run's — identical verdicts.  With
``first_violation_only`` the roots are consumed in DFS-preorder and the
first root reporting a violation wins; because the parent's seeding walk
*is* the serial DFS prefix, that violation is the serial DFS's first one
bit for bit.  Workers do not share a seen-set across processes, so a
configuration reachable from two roots is expanded once per root:
``states_visited`` may exceed the serial count (the dedup that the
serial run performed across subtrees is reported per worker).  The
state budget likewise applies per worker.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.engine.core import ExplorationResult, SerialSearch, resolve_checker
from repro.sim.executor import SimCounters, Simulation

#: target number of subtree roots per worker (over-decomposition smooths
#: out uneven subtree sizes)
ROOTS_PER_WORKER = 4

#: never seed deeper than this: each extra level multiplies seeding work
MAX_CUTOFF = 10


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_run(payload: bytes) -> bytes:
    """Explore one subtree root in a worker process.

    Receives and returns pickled payloads so the pool never depends on
    the default pickler seeing our live objects.
    """
    args = pickle.loads(payload)
    sim = Simulation([])
    sim.restore(args["root"])
    result = ExplorationResult(
        protocol=args["protocol"],
        strategy=args["strategy"],
        por=args["por"],
    )
    # the subtree root's checker state is rebuilt once here, from the
    # shipped snapshot (SerialSearch primes the incremental checker from
    # the sim's current configuration); the subtree is then pure deltas
    search = SerialSearch(
        sim,
        args["pids"],
        args["clients"],
        result,
        resolve_checker(args["checker"]),
        args["max_depth"],
        args["max_states"],
        args["first_violation_only"],
        args["por"],
        rng_seed=args["rng_seed"],
        trail_prefix=args["trail_prefix"],
        incremental=args["incremental"],
        oracle=args["oracle"],
    )
    search.run(args["strategy"], depth=args["depth"], sleep=args["sleep"])
    result.exhausted = search.exhausted
    result.counters = replace(sim.counters)
    return pickle.dumps(
        {
            "states_visited": result.states_visited,
            "states_deduped": result.states_deduped,
            "schedules_completed": result.schedules_completed,
            "truncated": result.truncated,
            "violations": result.violations,
            "exhausted": result.exhausted,
            "counters": result.counters,
            "checks": result.checks,
            "checker_seconds": result.checker_seconds,
        }
    )


def run_parallel(
    system,
    *,
    checker: str,
    strategy: str,
    por: bool,
    workers: int,
    max_depth: int,
    max_states: int,
    first_violation_only: bool,
    rng_seed: int,
    result: ExplorationResult,
    incremental: bool = False,
    oracle: bool = False,
) -> ExplorationResult:
    """Fan the exploration of ``system`` out to ``workers`` processes."""
    sim = system.sim
    pids = tuple(system.clients) + tuple(system.service_pids)
    clients = tuple(system.clients)
    spec = resolve_checker(checker)
    root_snap = sim.snapshot()
    target = max(workers * ROOTS_PER_WORKER, workers + 1)

    # grow the cutoff until the frontier is wide enough to balance the
    # pool; each pass restarts from the root (shallow passes are cheap)
    roots = []
    search: Optional[SerialSearch] = None
    for cutoff in range(1, min(max_depth, MAX_CUTOFF) + 1):
        sim.restore(root_snap)
        partial = ExplorationResult(
            protocol=result.protocol,
            strategy=strategy,
            por=por,
            workers=workers,
        )
        search = SerialSearch(
            sim,
            pids,
            clients,
            partial,
            spec,
            max_depth,
            max_states,
            first_violation_only,
            por,
            rng_seed=rng_seed,
            incremental=incremental,
            oracle=oracle,
        )
        roots = search.collect_frontier(cutoff)
        if (
            search.abort
            or search.exhausted
            or not roots
            or len(roots) >= target
        ):
            break
    assert search is not None
    partial = search.result
    if search.abort or search.exhausted or not roots:
        # the seeding walk already settled it (violation above the
        # cutoff, budget spent, or the whole scope is shallower than the
        # cutoff): the parent's serial prefix is the complete answer
        _finalize(result, partial, search, sim)
        return result

    payloads = [
        pickle.dumps(
            {
                "root": node.snapshot,
                "depth": node.depth,
                "sleep": node.sleep,
                "trail_prefix": tuple(e.label for e in node.trail),
                "pids": pids,
                "clients": clients,
                "checker": checker,
                "strategy": strategy,
                "por": por,
                "max_depth": max_depth,
                "max_states": max_states,
                "first_violation_only": first_violation_only,
                "rng_seed": rng_seed + i,
                "protocol": result.protocol,
                "incremental": incremental,
                "oracle": oracle,
            }
        )
        for i, node in enumerate(roots)
    ]

    exhausted = search.exhausted
    ctx = _mp_context()
    with ctx.Pool(processes=workers) as pool:
        for raw in pool.imap(_worker_run, payloads):
            sub = pickle.loads(raw)
            partial.states_visited += sub["states_visited"]
            partial.states_deduped += sub["states_deduped"]
            partial.schedules_completed += sub["schedules_completed"]
            partial.truncated += sub["truncated"]
            partial.checks += sub["checks"]
            partial.checker_seconds += sub["checker_seconds"]
            partial.violations.extend(sub["violations"])
            exhausted = exhausted or sub["exhausted"]
            sim.counters.merge(sub["counters"])
            if first_violation_only and sub["violations"]:
                # roots are consumed in DFS-preorder, so this is the
                # serial DFS's first violation; drop the rest of the pool
                pool.terminate()
                break
    search.exhausted = exhausted
    _finalize(result, partial, search, sim)
    return result


def _finalize(
    result: ExplorationResult,
    partial: ExplorationResult,
    search: SerialSearch,
    sim: Simulation,
) -> None:
    result.states_visited = partial.states_visited
    result.states_deduped = partial.states_deduped
    result.schedules_completed = partial.schedules_completed
    result.truncated = partial.truncated
    result.checks = partial.checks
    result.checker_seconds = partial.checker_seconds
    result.violations = partial.violations
    result.exhausted = search.exhausted
    result.steps = result.states_visited
    result.incremental = search.incremental
    result.counters = replace(sim.counters)
