"""The parallel frontier: subtree roots fanned out to worker processes.

Parallelising the explorer is only possible because of two PR-1
invariants: configuration snapshots are *self-contained bytes blobs*
(a worker re-materializes a private simulation from the blob alone) and
fingerprints are *hash-seed-independent* (every worker computes the same
16 bytes for the same configuration, so merged seen-set accounting is
meaningful across processes).

The scheme: the parent runs the ordinary serial search truncated at a
shallow cutoff depth, collecting the DFS-preorder frontier of subtree
roots; each root (snapshot + trail + depth + sleep set) is shipped to a
``multiprocessing`` worker that explores its subtree to completion with
the same strategy/POR knobs; per-worker counts, violations and
:class:`~repro.sim.executor.SimCounters` are merged in root order, which
makes the merged result deterministic regardless of worker scheduling.

Verdict fidelity: each worker fully explores its subtree, so the union
of leaves checked equals the serial run's — identical verdicts.  With
``first_violation_only`` the roots are consumed in DFS-preorder and the
first root reporting a violation wins; because the parent's seeding walk
*is* the serial DFS prefix, that violation is the serial DFS's first one
bit for bit.  Workers do not share a seen-set across processes, so a
configuration reachable from two roots is expanded once per root:
``states_visited`` may exceed the serial count (the dedup that the
serial run performed across subtrees is reported per worker).  The
state budget likewise applies per worker.

Two guards keep the fan-out from costing more than it saves:

* **Root dedup** — before shipping, roots are deduped by *canonical*
  fingerprint (with the same sleep-subset rule as the seen-set).  The
  seeding walk already prunes duplicates under the engine's own
  fingerprint, but without POR that fingerprint is the strict
  (``msg_id``-covering) one, so roots reached by different prefixes of
  commuting events look distinct even though their subtrees check the
  same histories — each shipped copy would be explored once *per root*.
  A dropped root is counted in ``states_deduped``, exactly as the
  serial canonical quotient would have counted it.
* **Auto-serial fallback** — a ``workers > 1`` request is answered
  serially (``result.auto_serial``) when the fan-out cannot pay for
  pool spin-up: a deterministic serial probe capped at
  :data:`SERIAL_PROBE_STATES` settles trivially small scopes outright,
  and a seeding walk that finds fewer than ``workers + 1`` roots falls
  back to one full serial search.  Both produce the serial result *by
  construction* (they are serial runs), so verdicts, counts and
  first-violation traces match ``workers=1`` bit for bit.
"""

from __future__ import annotations

import multiprocessing
import pickle
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.engine.core import ExplorationResult, SerialSearch, resolve_checker
from repro.sim.executor import SimCounters, Simulation

#: target number of subtree roots per worker (over-decomposition smooths
#: out uneven subtree sizes)
ROOTS_PER_WORKER = 4

#: never seed deeper than this: each extra level multiplies seeding work
MAX_CUTOFF = 10

#: the auto-serial probe budget: a scope that a serial search finishes
#: within this many states is cheaper to answer serially than to ship to
#: a pool (process spin-up alone dwarfs the work).  Set to 0 to disable
#: the probe (tests use this to force the pool path).
SERIAL_PROBE_STATES = 4_096


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_run(payload: bytes) -> bytes:
    """Explore one subtree root in a worker process.

    Receives and returns pickled payloads so the pool never depends on
    the default pickler seeing our live objects.
    """
    args = pickle.loads(payload)
    sim = Simulation([])
    sim.restore(args["root"])
    result = ExplorationResult(
        protocol=args["protocol"],
        strategy=args["strategy"],
        por=args["por"],
    )
    # the subtree root's checker state is rebuilt once here, from the
    # shipped snapshot (SerialSearch primes the incremental checker from
    # the sim's current configuration); the subtree is then pure deltas
    search = SerialSearch(
        sim,
        args["pids"],
        args["clients"],
        result,
        resolve_checker(args["checker"]),
        args["max_depth"],
        args["max_states"],
        args["first_violation_only"],
        args["por"],
        rng_seed=args["rng_seed"],
        trail_prefix=args["trail_prefix"],
        incremental=args["incremental"],
        oracle=args["oracle"],
    )
    search.run(args["strategy"], depth=args["depth"], sleep=args["sleep"])
    result.exhausted = search.exhausted
    result.counters = replace(sim.counters)
    return pickle.dumps(
        {
            "states_visited": result.states_visited,
            "states_deduped": result.states_deduped,
            "schedules_completed": result.schedules_completed,
            "truncated": result.truncated,
            "violations": result.violations,
            "exhausted": result.exhausted,
            "counters": result.counters,
            "checks": result.checks,
            "checker_seconds": result.checker_seconds,
        }
    )


def run_parallel(
    system,
    *,
    checker: str,
    strategy: str,
    por: bool,
    workers: int,
    max_depth: int,
    max_states: int,
    first_violation_only: bool,
    rng_seed: int,
    result: ExplorationResult,
    incremental: bool = False,
    oracle: bool = False,
) -> ExplorationResult:
    """Fan the exploration of ``system`` out to ``workers`` processes."""
    sim = system.sim
    pids = tuple(system.clients) + tuple(system.service_pids)
    clients = tuple(system.clients)
    spec = resolve_checker(checker)
    root_snap = sim.snapshot()
    target = max(workers * ROOTS_PER_WORKER, workers + 1)

    def _serial(budget: int) -> SerialSearch:
        """One fresh full serial search from the root (auto-serial paths)."""
        sim.restore(root_snap)
        partial = ExplorationResult(
            protocol=result.protocol,
            strategy=strategy,
            por=por,
            workers=workers,
        )
        s = SerialSearch(
            sim,
            pids,
            clients,
            partial,
            spec,
            max_depth,
            budget,
            first_violation_only,
            por,
            rng_seed=rng_seed,
            incremental=incremental,
            oracle=oracle,
        )
        s.run(strategy, depth=0)
        return s

    # a cheap deterministic probe: tiny scopes are answered serially
    # outright — pool spin-up alone costs more than exploring a few
    # thousand states on the delta-restore path.  The probe IS the
    # serial run (same strategy, same seeds), so returning its result
    # matches ``workers=1`` bit for bit.
    if SERIAL_PROBE_STATES > 0:
        probe = _serial(min(max_states, SERIAL_PROBE_STATES))
        if probe.abort or not probe.exhausted or SERIAL_PROBE_STATES >= max_states:
            # settled: first violation found, scope finished within the
            # probe budget, or the probe budget already was the caller's
            _finalize(result, probe.result, probe, sim)
            result.auto_serial = True
            return result
        # scope outlives the probe: discard its counts (the pool recounts
        # from scratch; only SimCounters byte totals keep accumulating)

    # grow the cutoff until the frontier is wide enough to balance the
    # pool; each pass restarts from the root (shallow passes are cheap)
    roots = []
    search: Optional[SerialSearch] = None
    for cutoff in range(1, min(max_depth, MAX_CUTOFF) + 1):
        sim.restore(root_snap)
        partial = ExplorationResult(
            protocol=result.protocol,
            strategy=strategy,
            por=por,
            workers=workers,
        )
        search = SerialSearch(
            sim,
            pids,
            clients,
            partial,
            spec,
            max_depth,
            max_states,
            first_violation_only,
            por,
            rng_seed=rng_seed,
            incremental=incremental,
            oracle=oracle,
        )
        roots = search.collect_frontier(cutoff)
        if (
            search.abort
            or search.exhausted
            or not roots
            or len(roots) >= target
        ):
            break
    assert search is not None
    partial = search.result
    if search.abort or search.exhausted or not roots:
        # the seeding walk already settled it (violation above the
        # cutoff, budget spent, or the whole scope is shallower than the
        # cutoff): the parent's serial prefix is the complete answer
        _finalize(result, partial, search, sim)
        return result

    if len(roots) < workers + 1:
        # not enough subtrees to keep the pool busy: one serial run is
        # cheaper than spinning up workers that would mostly idle
        fallback = _serial(max_states)
        _finalize(result, fallback.result, fallback, sim)
        result.auto_serial = True
        return result

    roots = _dedup_roots(sim, roots, por, partial)

    payloads = [
        pickle.dumps(
            {
                "root": node.snapshot,
                "depth": node.depth,
                "sleep": node.sleep,
                "trail_prefix": tuple(e.label for e in node.trail),
                "pids": pids,
                "clients": clients,
                "checker": checker,
                "strategy": strategy,
                "por": por,
                "max_depth": max_depth,
                "max_states": max_states,
                "first_violation_only": first_violation_only,
                "rng_seed": rng_seed + i,
                "protocol": result.protocol,
                "incremental": incremental,
                "oracle": oracle,
            }
        )
        for i, node in enumerate(roots)
    ]

    exhausted = search.exhausted
    ctx = _mp_context()
    with ctx.Pool(processes=workers) as pool:
        for raw in pool.imap(_worker_run, payloads):
            sub = pickle.loads(raw)
            partial.states_visited += sub["states_visited"]
            partial.states_deduped += sub["states_deduped"]
            partial.schedules_completed += sub["schedules_completed"]
            partial.truncated += sub["truncated"]
            partial.checks += sub["checks"]
            partial.checker_seconds += sub["checker_seconds"]
            partial.violations.extend(sub["violations"])
            exhausted = exhausted or sub["exhausted"]
            sim.counters.merge(sub["counters"])
            if first_violation_only and sub["violations"]:
                # roots are consumed in DFS-preorder, so this is the
                # serial DFS's first violation; drop the rest of the pool
                pool.terminate()
                break
    search.exhausted = exhausted
    _finalize(result, partial, search, sim)
    return result


def _dedup_roots(
    sim: Simulation,
    roots: List,
    por: bool,
    partial: ExplorationResult,
) -> List:
    """Drop frontier roots whose subtree another shipped root covers.

    Keyed on the *canonical* fingerprint: with POR the seeding walk's
    own fingerprint is already canonical, so ``node.fingerprint`` is
    reused; without POR it is the strict (``msg_id``-covering) one, so
    the canonical print is recomputed per root (one delta restore each —
    cheap).  A later root is dropped iff an earlier kept root has the
    same canonical print and slept on a subset of the later one's sleep
    set (it explores at least as much); earlier wins so the DFS-preorder
    first-violation guarantee is untouched.  Drops are counted in
    ``states_deduped``, exactly as the serial canonical quotient counts
    the revisit it corresponds to.
    """
    kept: List = []
    seen: Dict[bytes, List] = {}
    for node in roots:
        if por:
            fp = node.fingerprint
        else:
            sim.restore(node.snapshot)
            fp = sim.fingerprint(node.snapshot, canonical=True)
        prior = seen.get(fp)
        if prior is not None and any(s <= node.sleep for s in prior):
            partial.states_deduped += 1
            continue
        seen.setdefault(fp, []).append(node.sleep)
        kept.append(node)
    return kept


def _finalize(
    result: ExplorationResult,
    partial: ExplorationResult,
    search: SerialSearch,
    sim: Simulation,
) -> None:
    result.states_visited = partial.states_visited
    result.states_deduped = partial.states_deduped
    result.schedules_completed = partial.schedules_completed
    result.truncated = partial.truncated
    result.checks = partial.checks
    result.checker_seconds = partial.checker_seconds
    result.violations = partial.violations
    result.exhausted = search.exhausted
    result.steps = result.states_visited
    result.incremental = search.incremental
    result.counters = replace(sim.counters)
