"""Transaction-mix generation and workload driving.

A :class:`WorkloadSpec` describes the mix (read ratio, transaction
sizes, skew); :func:`generate_workload` expands it into per-client
transaction sequences with globally unique written values (the paper's
simplifying assumption, and a checker precondition);
:func:`run_workload` drives a system through the workload and returns
its history.

Protocols without multi-object write transactions are handed
single-object writes when ``respect_capabilities`` is set (the default
for the comparison benchmarks — every system executes the same logical
update load, shaped to what it supports, which is exactly the
functionality trade-off the paper is about).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocols.base import System
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.txn.history import History
from repro.txn.types import ObjectId, Transaction, read_only_txn, rw_txn, write_only_txn
from repro.workloads.zipf import ZipfGenerator


@dataclass(frozen=True)
class WorkloadSpec:
    """A transaction mix."""

    n_txns: int = 100
    read_ratio: float = 0.9  # fraction of read-only transactions
    rw_ratio: float = 0.0  # fraction of read-write transactions
    read_size: Tuple[int, int] = (1, 3)  # min/max objects per ROT
    write_size: Tuple[int, int] = (1, 2)  # min/max objects per write txn
    zipf_theta: float = 0.99
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if not 0.0 <= self.rw_ratio <= 1.0 - self.read_ratio:
            raise ValueError("rw_ratio must fit in the remaining fraction")


READ_HEAVY = WorkloadSpec(read_ratio=0.95)
BALANCED = WorkloadSpec(read_ratio=0.5)
WRITE_HEAVY = WorkloadSpec(read_ratio=0.1)


class WorkloadGenerator:
    """Expands a spec into concrete transactions."""

    def __init__(
        self,
        spec: WorkloadSpec,
        objects: Sequence[ObjectId],
        clients: Sequence[str],
        supports_wtx: bool = True,
        supports_rw: bool = True,
    ):
        self.spec = spec
        self.objects = tuple(objects)
        self.clients = tuple(clients)
        self.supports_wtx = supports_wtx
        self.supports_rw = supports_rw
        self.rng = random.Random(spec.seed)
        self.zipf = ZipfGenerator(len(self.objects), spec.zipf_theta, seed=spec.seed)
        self._value_counter = 0
        self._txn_counter = 0

    def _fresh_value(self, client: str) -> str:
        self._value_counter += 1
        return f"v{self._value_counter}@{client}"

    def _fresh_txid(self, client: str) -> str:
        # deterministic per generator (the global txid counter would leak
        # state between runs and break seeded reproducibility)
        self._txn_counter += 1
        return f"t{self._txn_counter}.{client}"

    def _pick_objects(self, lo: int, hi: int) -> Tuple[ObjectId, ...]:
        k = min(self.rng.randint(lo, hi), len(self.objects))
        return tuple(self.objects[i] for i in self.zipf.sample_distinct(k))

    def next_txn(self, client: str) -> Transaction:
        spec = self.spec
        roll = self.rng.random()
        txid = self._fresh_txid(client)
        if roll < spec.read_ratio:
            return read_only_txn(self._pick_objects(*spec.read_size), txid=txid)
        wlo, whi = spec.write_size
        if not self.supports_wtx:
            wlo, whi = 1, 1
        writes = {
            obj: self._fresh_value(client) for obj in self._pick_objects(wlo, whi)
        }
        if self.supports_rw and roll < spec.read_ratio + spec.rw_ratio:
            reads = tuple(
                o for o in self._pick_objects(*spec.read_size) if o not in writes
            )
            if reads:
                return rw_txn(reads, writes, txid=txid)
        return write_only_txn(writes, txid=txid)

    def schedule(self) -> List[Tuple[str, Transaction]]:
        """The full workload: (client, txn) pairs in submission order."""
        out: List[Tuple[str, Transaction]] = []
        for _ in range(self.spec.n_txns):
            client = self.rng.choice(self.clients)
            out.append((client, self.next_txn(client)))
        return out


def generate_workload(
    spec: WorkloadSpec,
    objects: Sequence[ObjectId],
    clients: Sequence[str],
    supports_wtx: bool = True,
    supports_rw: bool = True,
) -> List[Tuple[str, Transaction]]:
    return WorkloadGenerator(
        spec, objects, clients, supports_wtx=supports_wtx, supports_rw=supports_rw
    ).schedule()


class WorkloadStalled(RuntimeError):
    """The workload did not complete within the event budget."""


def run_workload(
    system: System,
    spec: WorkloadSpec,
    scheduler: Optional[Scheduler] = None,
    max_events: int = 2_000_000,
    respect_capabilities: bool = True,
) -> History:
    """Drive ``system`` through a generated workload; return its history.

    Clients run **concurrently**: each client is handed its next
    transaction the moment the previous one completes, while the (by
    default seeded-random, i.e. adversarially reordering) scheduler
    interleaves everyone's messages.  The overlap is what exercises the
    interesting paths — second read rounds, blocking waits, readers
    checks, lock queues.
    """
    from collections import deque

    info = system.info
    supports_rw = info.name in ("spanner", "calvin", "fastclaim")
    gen = WorkloadGenerator(
        spec,
        system.config.objects,
        system.clients,
        supports_wtx=(info.supports_wtx if respect_capabilities else True),
        supports_rw=supports_rw if respect_capabilities else True,
    )
    queues: Dict[str, "deque[Transaction]"] = {c: deque() for c in system.clients}
    for client, txn in gen.schedule():
        queues[client].append(txn)

    sched = scheduler if scheduler is not None else RandomScheduler(spec.seed)
    events = 0
    while True:
        for cpid, queue in queues.items():
            client = system.client(cpid)
            if queue and client.current is None and not client.pending:
                system.sim.invoke(cpid, queue.popleft())
        drained = all(not q for q in queues.values()) and all(
            system.client(c).current is None and not system.client(c).pending
            for c in system.clients
        )
        progressed = sched.tick(system.sim)
        if not progressed:
            if drained:
                break
            raise WorkloadStalled(
                f"{info.name}: quiescent with unfinished transactions"
            )
        events += 1
        if events > max_events:
            raise WorkloadStalled(f"{info.name}: budget {max_events} exhausted")
    return system.history()
