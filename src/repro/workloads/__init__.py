"""Synthetic workload generators.

Substitutes for the production traces the motivating systems were
evaluated on (Facebook's read-dominated workloads etc.): seeded,
Zipfian-skewed transaction mixes with configurable read ratio and
transaction sizes.
"""

from repro.workloads.zipf import ZipfGenerator
from repro.workloads.generators import (
    WorkloadSpec,
    WorkloadGenerator,
    generate_workload,
    run_workload,
    READ_HEAVY,
    WRITE_HEAVY,
    BALANCED,
)

__all__ = [
    "ZipfGenerator",
    "WorkloadSpec",
    "WorkloadGenerator",
    "generate_workload",
    "run_workload",
    "READ_HEAVY",
    "WRITE_HEAVY",
    "BALANCED",
]
