"""Zipfian key popularity.

Key-value workloads are heavily skewed in practice (the paper cites the
Facebook workload studies); a Zipf(θ) sampler over a fixed key universe
reproduces that shape.  The implementation precomputes the CDF with
numpy and samples by binary search — O(log n) per draw, deterministic
under a seeded generator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class ZipfGenerator:
    """Draw indices in ``[0, n)`` with probability ∝ 1/(i+1)^theta.

    ``theta = 0`` is uniform; ``theta ≈ 0.99`` matches the YCSB default.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self.rng = np.random.default_rng(seed)

    def sample(self) -> int:
        u = self.rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_distinct(self, k: int) -> list:
        """Draw ``k`` distinct indices (k ≤ n)."""
        if k > self.n:
            raise ValueError(f"cannot draw {k} distinct from {self.n}")
        out: list = []
        seen = set()
        # rejection sampling is fine for the small k used in transactions
        while len(out) < k:
            i = self.sample()
            if i not in seen:
                seen.add(i)
                out.append(i)
        return out

    def pmf(self) -> np.ndarray:
        """The probability mass function (for tests)."""
        pmf = np.empty(self.n)
        pmf[0] = self._cdf[0]
        pmf[1:] = np.diff(self._cdf)
        return pmf
