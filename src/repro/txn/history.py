"""Histories of executions.

The history ``H(α)`` of an execution is the subsequence of invocations
and responses of object operations (Section 2).  We represent it at
transaction granularity: a list of :class:`~repro.txn.types.TxnRecord`
(completed transactions) plus the set of still-active transactions.
This is exactly the information the consistency definitions consume:

* per-client projections ``H_c`` and program order ``<_{H|c}``;
* ``complete(H)`` — the completed transactions;
* real-time precedence (``T1`` completes before ``T2`` is invoked);
* the reads-from function (well defined because the harness generates
  globally unique written values, the paper's simplifying assumption).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.txn.types import BOTTOM, ObjectId, Transaction, TxnRecord, Value


@dataclass
class History:
    """A transactional history."""

    records: List[TxnRecord] = field(default_factory=list)
    active: List[Transaction] = field(default_factory=list)

    # -- structure ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def clients(self) -> Tuple[str, ...]:
        return tuple(sorted({r.client for r in self.records}))

    def objects(self) -> Tuple[ObjectId, ...]:
        objs: Set[ObjectId] = set()
        for r in self.records:
            objs |= set(r.txn.objects)
        return tuple(sorted(objs))

    def per_client(self, client: str) -> List[TxnRecord]:
        """``H_c``: this client's records in program order."""
        recs = [r for r in self.records if r.client == client]
        recs.sort(key=lambda r: r.invoked_at)
        return recs

    def by_txid(self) -> Dict[str, TxnRecord]:
        return {r.txid: r for r in self.records}

    # -- derived relations ---------------------------------------------------

    def check_unique_values(self) -> None:
        """Ensure all written values are distinct (checker precondition)."""
        seen: Dict[Tuple[ObjectId, Value], str] = {}
        for r in self.records:
            for obj, val in r.txn.writes:
                key = (obj, val)
                if key in seen and seen[key] != r.txid:
                    raise ValueError(
                        f"value {val!r} for {obj} written by both "
                        f"{seen[key]} and {r.txid}"
                    )
                seen[key] = r.txid

    def writer_index(self) -> Dict[Tuple[ObjectId, Value], TxnRecord]:
        """Map (object, value) → the record that wrote it."""
        idx: Dict[Tuple[ObjectId, Value], TxnRecord] = {}
        for r in self.records:
            for obj, val in r.txn.writes:
                idx[(obj, val)] = r
        return idx

    def program_order(self) -> List[Tuple[str, str]]:
        """Immediate program-order edges ``(earlier_txid, later_txid)``."""
        edges: List[Tuple[str, str]] = []
        for c in self.clients():
            recs = self.per_client(c)
            for a, b in zip(recs, recs[1:]):
                edges.append((a.txid, b.txid))
        return edges

    def reads_from(self) -> List[Tuple[str, str]]:
        """Reads-from edges ``(writer_txid, reader_txid)``.

        Reads returning ⊥/unknown values produce no edge.
        """
        writers = self.writer_index()
        edges: List[Tuple[str, str]] = []
        for r in self.records:
            for obj, val in r.reads.items():
                if val is BOTTOM:
                    continue
                w = writers.get((obj, val))
                if w is not None and w.txid != r.txid:
                    edges.append((w.txid, r.txid))
        return edges

    def causal_order(self) -> "CausalOrder":
        """The causal relation: transitive closure of program order ∪ reads-from."""
        return CausalOrder.from_edges(
            [r.txid for r in self.records],
            self.program_order() + self.reads_from(),
        )

    def realtime_edges(self) -> List[Tuple[str, str]]:
        """Precedence: ``T1`` completes before ``T2`` is invoked."""
        edges = []
        for a in self.records:
            for b in self.records:
                if a.txid != b.txid and a.completed_at < b.invoked_at:
                    edges.append((a.txid, b.txid))
        return edges


class CausalOrder:
    """A strict partial order on transaction ids with fast ``<`` queries."""

    def __init__(self, nodes: Iterable[str]):
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self._idx = {n: i for i, n in enumerate(self.nodes)}
        n = len(self.nodes)
        self._reach: List[Set[int]] = [set() for _ in range(n)]

    @classmethod
    def from_edges(
        cls, nodes: Iterable[str], edges: Iterable[Tuple[str, str]]
    ) -> "CausalOrder":
        order = cls(nodes)
        succ: Dict[int, Set[int]] = defaultdict(set)
        for a, b in edges:
            if a in order._idx and b in order._idx and a != b:
                succ[order._idx[a]].add(order._idx[b])
        # transitive closure by reverse-postorder DFS with memoization;
        # cycles (which would indicate a corrupted history) are rejected.
        color = [0] * len(order.nodes)  # 0 white, 1 grey, 2 black

        def dfs(u: int) -> None:
            color[u] = 1
            for v in succ.get(u, ()):  # noqa: B023
                if color[v] == 1:
                    raise ValueError("cycle in causal order (corrupted history)")
                if color[v] == 0:
                    dfs(v)
                order._reach[u].add(v)
                order._reach[u] |= order._reach[v]
            color[u] = 2

        for u in range(len(order.nodes)):
            if color[u] == 0:
                dfs(u)
        return order

    def lt(self, a: str, b: str) -> bool:
        """True iff ``a <c b`` (strictly causally before)."""
        ia, ib = self._idx.get(a), self._idx.get(b)
        if ia is None or ib is None:
            return False
        return ib in self._reach[ia]

    def leq(self, a: str, b: str) -> bool:
        return a == b or self.lt(a, b)

    def concurrent(self, a: str, b: str) -> bool:
        return a != b and not self.lt(a, b) and not self.lt(b, a)

    def edges(self) -> List[Tuple[str, str]]:
        out = []
        for i, a in enumerate(self.nodes):
            for j in self._reach[i]:
                out.append((a, self.nodes[j]))
        return out


def build_history(sim, clients: Optional[Iterable[str]] = None) -> History:
    """Extract the history from a simulation's client processes."""
    from repro.txn.client import ClientBase  # local import avoids a cycle

    hist = History()
    for pid, proc in sim.processes.items():
        if not isinstance(proc, ClientBase):
            continue
        if clients is not None and pid not in set(clients):
            continue
        hist.records.extend(proc.completed)
        if proc.current is not None:
            hist.active.append(proc.current.txn)
        hist.active.extend(proc.pending)
    hist.records.sort(key=lambda r: (r.invoked_at, r.txid))
    return hist
