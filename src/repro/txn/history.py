"""Histories of executions.

The history ``H(α)`` of an execution is the subsequence of invocations
and responses of object operations (Section 2).  We represent it at
transaction granularity: a list of :class:`~repro.txn.types.TxnRecord`
(completed transactions) plus the set of still-active transactions.
This is exactly the information the consistency definitions consume:

* per-client projections ``H_c`` and program order ``<_{H|c}``;
* ``complete(H)`` — the completed transactions;
* real-time precedence (``T1`` completes before ``T2`` is invoked);
* the reads-from function (well defined because the harness generates
  globally unique written values, the paper's simplifying assumption).

Derived indices (writer index, per-client projections, reads-from,
causal order, …) are **dirty-tracked caches** keyed on an append token:
repeated checker calls on the same history reuse them, and a history
that only *grew* since the last call extends them incrementally instead
of rebuilding (the checkers run once per explored schedule, so this is
a hot path — see ``docs/model.md``, "Checker cost and incrementality").
Records are frozen; the supported mutations of ``records`` are append /
extend (incremental) and wholesale replacement or reordering (detected,
full rebuild).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.txn.types import BOTTOM, ObjectId, Transaction, TxnRecord, Value


class CausalOrder:
    """A strict partial order on transaction ids with fast ``<`` queries.

    Reach-sets are stored as integer bitmasks (one Python big-int row
    per node), so ``lt`` is a single bit test and closure updates are
    word-parallel ``|=`` operations.  The order supports two modes of
    construction:

    * :meth:`from_edges` — batch: build the transitive closure of an
      edge set in one pass (raises on cycles);
    * :meth:`add_node` / :meth:`add_edge` / :meth:`extend` — append
      path: grow the closed order in place.  ``add_edge`` returns the
      *closure delta* (the pairs newly related by the edge), which is
      what lets the incremental checkers re-examine only the reads and
      writes an edge could have affected.

    Mutations are recorded on an undo trail: :meth:`checkpoint` returns
    a token and :meth:`rollback` restores the order to that token, in
    lockstep with the exploration engine's fork/restore discipline.
    """

    def __init__(self, nodes: Iterable[str] = ()):
        self.nodes: List[str] = list(nodes)
        self._idx: Dict[str, int] = {n: i for i, n in enumerate(self.nodes)}
        #: reach rows: bit ``j`` of ``_reach[i]`` set iff nodes[i] < nodes[j]
        self._reach: List[int] = [0] * len(self.nodes)
        #: undo trail: ("row", i, old_mask) and ("node", txid) entries
        self._trail: List[Tuple] = []

    # -- batch construction -------------------------------------------------

    @classmethod
    def from_edges(
        cls, nodes: Iterable[str], edges: Iterable[Tuple[str, str]]
    ) -> "CausalOrder":
        order = cls(nodes)
        succ: Dict[int, Set[int]] = defaultdict(set)
        for a, b in edges:
            ia, ib = order._idx.get(a), order._idx.get(b)
            if ia is not None and ib is not None and ia != ib:
                succ[ia].add(ib)
        # transitive closure by reverse-postorder DFS with memoization;
        # cycles (which would indicate a corrupted history) are rejected.
        color = [0] * len(order.nodes)  # 0 white, 1 grey, 2 black
        reach = order._reach

        def dfs(u: int) -> None:
            color[u] = 1
            acc = reach[u]
            for v in succ.get(u, ()):  # noqa: B023
                if color[v] == 1:
                    raise ValueError("cycle in causal order (corrupted history)")
                if color[v] == 0:
                    dfs(v)
                acc |= (1 << v) | reach[v]
            reach[u] = acc
            color[u] = 2

        for u in range(len(order.nodes)):
            if color[u] == 0:
                dfs(u)
        return order

    # -- append path --------------------------------------------------------

    def add_node(self, txid: str) -> int:
        """Append a node (no relations yet); returns its index."""
        if txid in self._idx:
            raise ValueError(f"duplicate node {txid!r} in causal order")
        i = len(self.nodes)
        self.nodes.append(txid)
        self._idx[txid] = i
        self._reach.append(0)
        self._trail.append(("node", txid))
        return i

    def add_edge(self, a: str, b: str) -> List[Tuple[str, str]]:
        """Relate ``a < b``, close transitively, and return the delta.

        The delta is the list of ``(x, y)`` pairs (txids) that were *not*
        related before this call and are now — including ``(a, b)``
        itself when new.  Raises :class:`ValueError` if the edge would
        create a cycle; the order is unchanged in that case.
        """
        ia, ib = self._idx[a], self._idx[b]
        if ia == ib or (self._reach[ib] >> ia) & 1:
            raise ValueError("cycle in causal order (corrupted history)")
        targets = self._reach[ib] | (1 << ib)
        reach = self._reach
        nodes = self.nodes
        delta: List[Tuple[str, str]] = []
        ubit = 1 << ia
        for w in range(len(nodes)):
            if w != ia and not (reach[w] & ubit):
                continue
            new = targets & ~reach[w]
            if not new:
                continue
            self._trail.append(("row", w, reach[w]))
            reach[w] |= new
            x = nodes[w]
            while new:
                low = new & -new
                delta.append((x, nodes[low.bit_length() - 1]))
                new ^= low
        return delta

    def extend(self, edges: Iterable[Tuple[str, str]]) -> List[Tuple[str, str]]:
        """Add several edges; returns the concatenated closure delta."""
        delta: List[Tuple[str, str]] = []
        for a, b in edges:
            delta.extend(self.add_edge(a, b))
        return delta

    # -- fork/restore lockstep ----------------------------------------------

    def checkpoint(self) -> int:
        return len(self._trail)

    def rollback(self, token: int) -> None:
        trail = self._trail
        while len(trail) > token:
            entry = trail.pop()
            if entry[0] == "row":
                self._reach[entry[1]] = entry[2]
            else:  # "node"
                txid = entry[1]
                self.nodes.pop()
                del self._idx[txid]
                self._reach.pop()

    # -- queries ------------------------------------------------------------

    def __contains__(self, txid: str) -> bool:
        return txid in self._idx

    def lt(self, a: str, b: str) -> bool:
        """True iff ``a <c b`` (strictly causally before)."""
        ia, ib = self._idx.get(a), self._idx.get(b)
        if ia is None or ib is None:
            return False
        return (self._reach[ia] >> ib) & 1 == 1

    def leq(self, a: str, b: str) -> bool:
        return a == b or self.lt(a, b)

    def concurrent(self, a: str, b: str) -> bool:
        return a != b and not self.lt(a, b) and not self.lt(b, a)

    def edges(self) -> List[Tuple[str, str]]:
        out = []
        for i, a in enumerate(self.nodes):
            row = self._reach[i]
            while row:
                low = row & -row
                out.append((a, self.nodes[low.bit_length() - 1]))
                row ^= low
        return out


class _Derived:
    """The cached derived indices of one history prefix.

    ``token`` is the append token — the tuple of record identities the
    cache covers.  A history whose current token *extends* the cached
    one is consumed incrementally (each new record is indexed in
    ``O(|record|)`` plus the causal-closure delta); any other change
    triggers a full rebuild.
    """

    __slots__ = (
        "token",
        "by_txid",
        "writer_index",
        "writers_by_object",
        "per_client",
        "last_of_client",
        "rf_by_reader",
        "readers_index",
        "pending_reads",
        "order",
        "order_error",
        "realtime",
    )

    def __init__(self) -> None:
        self.token: Tuple[int, ...] = ()
        self.by_txid: Dict[str, TxnRecord] = {}
        self.writer_index: Dict[Tuple[ObjectId, Value], TxnRecord] = {}
        self.writers_by_object: Dict[ObjectId, List[TxnRecord]] = {}
        self.per_client: Dict[str, List[TxnRecord]] = {}
        self.last_of_client: Dict[str, TxnRecord] = {}
        #: reader txid -> {obj: writer txid} in the reader's reads order
        self.rf_by_reader: Dict[str, Dict[ObjectId, str]] = {}
        #: (obj, value) -> readers of that exact version, in record order
        self.readers_index: Dict[Tuple[ObjectId, Value], List[TxnRecord]] = {}
        #: non-⊥ reads whose writer has not been seen (yet)
        self.pending_reads: Dict[Tuple[ObjectId, Value], List[TxnRecord]] = {}
        self.order: Optional[CausalOrder] = None
        self.order_error: Optional[ValueError] = None
        self.realtime: Optional[List[Tuple[str, str]]] = None

    # -- consuming records ---------------------------------------------------

    def consume(self, rec: TxnRecord) -> None:
        """Index one appended record and extend the causal closure."""
        self.by_txid[rec.txid] = rec
        client_recs = self.per_client.setdefault(rec.client, [])
        # program order = stable sort by invoked_at (ties keep record
        # order), so appending is the in-order case
        in_order = not client_recs or client_recs[-1].invoked_at <= rec.invoked_at
        prev = self.last_of_client.get(rec.client)
        if in_order:
            client_recs.append(rec)
            self.last_of_client[rec.client] = rec
        else:
            keys = [r.invoked_at for r in client_recs]
            client_recs.insert(bisect_right(keys, rec.invoked_at), rec)
            # mid-projection insert: existing program-order edges change,
            # which the closed order cannot express — rebuild on demand
            self.order = None
            self.last_of_client[rec.client] = client_recs[-1]
        edges: List[Tuple[str, str]] = []
        if in_order and prev is not None:
            edges.append((prev.txid, rec.txid))
        rf = self.rf_by_reader.setdefault(rec.txid, {})
        for obj, val in rec.reads.items():
            if val is BOTTOM:
                continue
            key = (obj, val)
            w = self.writer_index.get(key)
            if w is not None:
                if w.txid != rec.txid:
                    rf[obj] = w.txid
                    edges.append((w.txid, rec.txid))
                self.readers_index.setdefault(key, []).append(rec)
            else:
                self.pending_reads.setdefault(key, []).append(rec)
        for obj, val in rec.txn.writes:
            key = (obj, val)
            self.writer_index[key] = rec
            self.writers_by_object.setdefault(obj, []).append(rec)
            # a late writer: readers that observed this version before
            # its writer committed now get their reads-from edge
            for reader in self.pending_reads.pop(key, ()):  # noqa: B909
                if reader.txid != rec.txid:
                    self.rf_by_reader[reader.txid][obj] = rec.txid
                    edges.append((rec.txid, reader.txid))
                self.readers_index.setdefault(key, []).append(reader)
        if self.order is not None and self.order_error is None:
            try:
                self.order.add_node(rec.txid)
                self.order.extend(edges)
            except ValueError as exc:
                self.order_error = exc

    def reads_from(self) -> List[Tuple[str, str]]:
        """Reads-from edges in the batch order (reader by reader)."""
        out: List[Tuple[str, str]] = []
        for reader_txid, by_obj in self.rf_by_reader.items():
            rec = self.by_txid[reader_txid]
            for obj in rec.reads:
                w = by_obj.get(obj)
                if w is not None:
                    out.append((w, reader_txid))
        return out

    def program_order(self) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for c in sorted(self.per_client):
            recs = self.per_client[c]
            for a, b in zip(recs, recs[1:]):
                out.append((a.txid, b.txid))
        return out


@dataclass
class History:
    """A transactional history."""

    records: List[TxnRecord] = field(default_factory=list)
    active: List[Transaction] = field(default_factory=list)

    # -- structure ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def clients(self) -> Tuple[str, ...]:
        return tuple(sorted(self._derived().per_client))

    def objects(self) -> Tuple[ObjectId, ...]:
        objs: Set[ObjectId] = set()
        for r in self.records:
            objs |= set(r.txn.objects)
        return tuple(sorted(objs))

    def append(self, record: TxnRecord) -> None:
        """Append one completed record (the incremental-friendly path)."""
        self.records.append(record)

    # -- the derived-index cache -------------------------------------------

    def _derived(self) -> _Derived:
        """Validate or (re)build the cached derived indices.

        The append token is the tuple of record identities; an unchanged
        token reuses the cache as-is, a strict extension consumes only
        the new records, anything else rebuilds from scratch.
        """
        token = tuple(map(id, self.records))
        cache: Optional[_Derived] = self.__dict__.get("_cache")
        if cache is not None and cache.token == token:
            return cache
        if (
            cache is not None
            and len(token) > len(cache.token)
            and token[: len(cache.token)] == cache.token
        ):
            for rec in self.records[len(cache.token):]:
                cache.consume(rec)
            cache.token = token
            cache.realtime = None
            return cache
        cache = _Derived()
        for rec in self.records:
            cache.consume(rec)
        cache.token = token
        self.__dict__["_cache"] = cache
        return cache

    def per_client(self, client: str) -> List[TxnRecord]:
        """``H_c``: this client's records in program order."""
        return list(self._derived().per_client.get(client, ()))

    def by_txid(self) -> Dict[str, TxnRecord]:
        return self._derived().by_txid

    # -- derived relations ---------------------------------------------------

    def check_unique_values(self) -> None:
        """Ensure all written values are distinct (checker precondition)."""
        seen: Dict[Tuple[ObjectId, Value], str] = {}
        for r in self.records:
            for obj, val in r.txn.writes:
                key = (obj, val)
                if key in seen and seen[key] != r.txid:
                    raise ValueError(
                        f"value {val!r} for {obj} written by both "
                        f"{seen[key]} and {r.txid}"
                    )
                seen[key] = r.txid

    def writer_index(self) -> Dict[Tuple[ObjectId, Value], TxnRecord]:
        """Map (object, value) → the record that wrote it.  Cached; treat
        as read-only."""
        return self._derived().writer_index

    def writers_by_object(self) -> Dict[ObjectId, List[TxnRecord]]:
        """Map object → its writers in record order.  Cached; read-only."""
        return self._derived().writers_by_object

    def readers_index(self) -> Dict[Tuple[ObjectId, Value], List[TxnRecord]]:
        """Map (object, value) → records that read exactly that version."""
        return self._derived().readers_index

    def program_order(self) -> List[Tuple[str, str]]:
        """Immediate program-order edges ``(earlier_txid, later_txid)``."""
        return self._derived().program_order()

    def reads_from(self) -> List[Tuple[str, str]]:
        """Reads-from edges ``(writer_txid, reader_txid)``.

        Reads returning ⊥/unknown values produce no edge.
        """
        return self._derived().reads_from()

    def causal_order(self) -> "CausalOrder":
        """The causal relation: transitive closure of program order ∪ reads-from.

        Cached and extended in place as the history grows; a cycle keeps
        raising :class:`ValueError` on every call, like the batch build.
        """
        cache = self._derived()
        if cache.order_error is not None:
            raise cache.order_error
        if cache.order is None:
            cache.order = CausalOrder.from_edges(
                [r.txid for r in self.records],
                cache.program_order() + cache.reads_from(),
            )
        return cache.order

    def realtime_edges(self) -> List[Tuple[str, str]]:
        """Precedence: ``T1`` completes before ``T2`` is invoked.

        Sort-and-sweep instead of the quadratic double loop: walk the
        records in invocation order, maintaining the prefix of records
        already completed before the current invocation.  The pair
        *output* can still be Θ(n²) (it is the relation itself), but the
        scan does no work for unrelated pairs.
        """
        cache = self._derived()
        if cache.realtime is not None:
            return cache.realtime
        by_invoked = sorted(self.records, key=lambda r: r.invoked_at)
        by_completed = sorted(self.records, key=lambda r: r.completed_at)
        edges: List[Tuple[str, str]] = []
        done: List[TxnRecord] = []  # completed before the current invocation
        i = 0
        n = len(by_completed)
        for b in by_invoked:
            while i < n and by_completed[i].completed_at < b.invoked_at:
                done.append(by_completed[i])
                i += 1
            # a record cannot complete before its own invocation, so b
            # itself is never in `done`
            edges.extend((a.txid, b.txid) for a in done)
        cache.realtime = edges
        return edges


def build_history(sim, clients: Optional[Iterable[str]] = None) -> History:
    """Extract the history from a simulation's client processes."""
    from repro.txn.client import ClientBase  # local import avoids a cycle

    hist = History()
    for pid, proc in sim.processes.items():
        if not isinstance(proc, ClientBase):
            continue
        if clients is not None and pid not in set(clients):
            continue
        hist.records.extend(proc.completed)
        if proc.current is not None:
            hist.active.append(proc.current.txn)
        hist.active.extend(proc.pending)
    hist.records.sort(key=lambda r: (r.invoked_at, r.txid))
    return hist


def committed_deltas(
    sim, clients: Iterable[str], consumed: Mapping[str, int]
) -> Tuple[Dict[str, int], List[TxnRecord]]:
    """The committed-record delta since ``consumed``.

    ``consumed`` maps client pid → how many of its committed records the
    caller has already seen; the return value is the updated map plus
    the new records, in the given client order (at most one client gains
    records per simulation event, so the cross-client order is
    immaterial to the checkers).  This is what lets the exploration
    engine feed its incremental checkers without re-extracting the full
    history at every node (see :func:`build_history`).
    """
    updated: Dict[str, int] = dict(consumed)
    fresh: List[TxnRecord] = []
    for pid in clients:
        proc = sim.processes[pid]
        done = proc.completed
        k = updated.get(pid, 0)
        if len(done) > k:
            fresh.extend(done[k:])
            updated[pid] = len(done)
    return updated, fresh
