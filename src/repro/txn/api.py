"""The public ``Store`` facade.

The high-level entry point a downstream user touches first::

    from repro import Store

    store = Store(protocol="cops_snow", objects=["X0", "X1"], n_servers=2)
    store.write("c0", {"X0": "hello"})
    values = store.read("c1", ["X0", "X1"])
    report = store.check_consistency()

Under the hood a :class:`~repro.protocols.base.System` runs the chosen
protocol on the simulator; the facade adds ergonomic read/write helpers,
history extraction and one-call consistency checking.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.protocols.base import System, build_system
from repro.sim.scheduler import RandomScheduler, RoundRobinScheduler, Scheduler
from repro.txn.history import History
from repro.txn.types import (
    ObjectId,
    Transaction,
    TxnRecord,
    Value,
    read_only_txn,
    rw_txn,
    write_only_txn,
)


class Store:
    """A running distributed transactional store (simulated)."""

    def __init__(
        self,
        protocol: str = "cops_snow",
        objects: Sequence[ObjectId] = ("X0", "X1"),
        n_servers: int = 2,
        clients: Sequence[str] = ("c0", "c1", "c2", "c3"),
        placement: Optional[Mapping[ObjectId, Tuple[str, ...]]] = None,
        replication: int = 1,
        seed: int = 0,
        **params: Any,
    ):
        self.system: System = build_system(
            protocol,
            objects=objects,
            n_servers=n_servers,
            clients=clients,
            placement=placement,
            replication=replication,
            **params,
        )
        self.protocol = protocol
        self.scheduler: Scheduler = (
            RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
        )

    # -- convenience accessors ------------------------------------------------

    @property
    def objects(self) -> Tuple[ObjectId, ...]:
        return self.system.config.objects

    @property
    def clients(self) -> Tuple[str, ...]:
        return self.system.clients

    @property
    def servers(self) -> Tuple[str, ...]:
        return self.system.servers

    # -- transactional API -----------------------------------------------------

    def execute(self, client: str, txn: Transaction, max_events: int = 50_000) -> TxnRecord:
        """Run one transaction to completion and return its record."""
        return self.system.execute(
            client, txn, scheduler=self.scheduler, max_events=max_events
        )

    def read(self, client: str, objects: Sequence[ObjectId]) -> Dict[ObjectId, Value]:
        """Execute a read-only transaction; returns object → value."""
        record = self.execute(client, read_only_txn(objects))
        return dict(record.reads)

    def write(self, client: str, writes: Mapping[ObjectId, Value]) -> TxnRecord:
        """Execute a write-only transaction."""
        return self.execute(client, write_only_txn(writes))

    def read_write(
        self,
        client: str,
        reads: Sequence[ObjectId],
        writes: Mapping[ObjectId, Value],
    ) -> TxnRecord:
        """Execute a read-write transaction (if the protocol supports it)."""
        return self.execute(client, rw_txn(reads, writes))

    def settle(self, max_events: int = 50_000) -> None:
        """Drive background work (replication, stabilization) to quiescence."""
        self.system.settle(max_events=max_events)

    # -- observation --------------------------------------------------------------

    def history(self) -> History:
        return self.system.history()

    def check_consistency(self, exact: Optional[bool] = None) -> "Any":
        """Check the history against the protocol's claimed consistency level.

        Returns a :class:`~repro.consistency.report.ConsistencyReport`.
        With ``exact=True`` the search-based Definition-1 checker is used
        (small histories only); default picks by history size.
        """
        from repro.consistency import check_history

        return check_history(
            self.history(),
            level=self.system.info.consistency,
            exact=exact,
        )

    def dump_stores(self) -> Dict[str, Dict[ObjectId, List[Any]]]:
        """Final version chains per server (oracle data for the checkers)."""
        out: Dict[str, Dict[ObjectId, List[Any]]] = {}
        for spid in self.servers:
            server = self.system.server(spid)
            out[spid] = {obj: list(chain) for obj, chain in server.store.items()}
        return out
