"""Transactions, histories, clients, and the public ``Store`` facade.

Implements the transactional vocabulary of Section 2 of the paper:
static transactions with read-set and write-set, object operations
``r(X)v`` / ``w(X)x``, histories ``H(α)`` with per-client projections,
completion, and precedence.
"""

from repro.txn.types import (
    BOTTOM,
    ObjectId,
    Transaction,
    TxnRecord,
    Value,
    read_only_txn,
    write_only_txn,
    rw_txn,
)
from repro.txn.history import History, build_history
from repro.txn.client import ClientBase, ActiveTxn, UnsupportedTransaction
from repro.txn.api import Store

__all__ = [
    "BOTTOM",
    "ObjectId",
    "Transaction",
    "TxnRecord",
    "Value",
    "read_only_txn",
    "write_only_txn",
    "rw_txn",
    "History",
    "build_history",
    "ClientBase",
    "ActiveTxn",
    "UnsupportedTransaction",
    "Store",
]
