"""Transaction types.

A (static) transaction ``T = (R_T, W_T)`` reads the objects in its
read-set and writes the objects in its write-set (Section 2).  If
``W_T = ∅`` the transaction is read-only; if ``R_T = ∅`` it is
write-only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

ObjectId = str
Value = Any


class _Bottom:
    """⊥ — the value returned for an object never written.

    The paper's progress definitions exist precisely to rule out trivial
    implementations that always return ⊥; the checkers treat ⊥ as "the
    initial value", ordered causally before every written value.
    """

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):  # keep singleton identity across deepcopy/pickle
        return (_Bottom, ())


BOTTOM = _Bottom()

_txid_counter = itertools.count()


def fresh_txid(prefix: str = "t") -> str:
    return f"{prefix}{next(_txid_counter)}"


@dataclass(frozen=True)
class Transaction:
    """A static transaction: read-set plus ordered write list."""

    txid: str
    read_set: Tuple[ObjectId, ...] = ()
    writes: Tuple[Tuple[ObjectId, Value], ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.read_set)) != len(self.read_set):
            raise ValueError(f"duplicate objects in read-set of {self.txid}")
        wkeys = [k for k, _ in self.writes]
        if len(set(wkeys)) != len(wkeys):
            raise ValueError(f"duplicate objects in write-set of {self.txid}")
        if not self.read_set and not self.writes:
            raise ValueError(f"empty transaction {self.txid}")

    @property
    def write_set(self) -> Tuple[ObjectId, ...]:
        return tuple(k for k, _ in self.writes)

    @property
    def write_map(self) -> Dict[ObjectId, Value]:
        return dict(self.writes)

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    @property
    def is_write_only(self) -> bool:
        return not self.read_set

    @property
    def objects(self) -> FrozenSet[ObjectId]:
        return frozenset(self.read_set) | frozenset(self.write_set)

    def __repr__(self) -> str:
        parts = [f"r({x})" for x in self.read_set]
        parts += [f"w({x}){v}" for x, v in self.writes]
        return f"{self.txid}=({', '.join(parts)})"


def read_only_txn(objects: Sequence[ObjectId], txid: Optional[str] = None) -> Transaction:
    return Transaction(txid or fresh_txid("r"), read_set=tuple(objects))


def write_only_txn(writes: Mapping[ObjectId, Value], txid: Optional[str] = None) -> Transaction:
    return Transaction(txid or fresh_txid("w"), writes=tuple(writes.items()))


def rw_txn(
    reads: Sequence[ObjectId],
    writes: Mapping[ObjectId, Value],
    txid: Optional[str] = None,
) -> Transaction:
    return Transaction(
        txid or fresh_txid("rw"), read_set=tuple(reads), writes=tuple(writes.items())
    )


@dataclass(frozen=True)
class TxnRecord:
    """A completed transaction as observed at its client.

    ``reads`` maps each object of the read-set to the value returned;
    ``invoked_at`` / ``completed_at`` are event-counter stamps used for
    real-time precedence; ``context`` is the client's causal past at
    invocation (oracle information recorded by the harness, never visible
    to the protocol), used by the witness-based checkers.
    """

    txn: Transaction
    client: str
    reads: Mapping[ObjectId, Value]
    invoked_at: int
    completed_at: int
    context: FrozenSet[Tuple[ObjectId, Value]] = frozenset()
    meta: Mapping[str, Any] = field(default_factory=dict)

    @property
    def txid(self) -> str:
        return self.txn.txid

    def __repr__(self) -> str:
        rd = ", ".join(f"r({x}){v!r}" for x, v in sorted(self.reads.items()))
        wr = ", ".join(f"w({x}){v!r}" for x, v in self.txn.writes)
        body = ", ".join(p for p in (rd, wr) if p)
        return f"{self.txid}@{self.client}[{body}]"
