"""Client runtime shared by every protocol.

A client executes transactions sequentially (at most one active
transaction — the paper's clients invoke one transaction at a time and
never communicate with other clients).  Protocol subclasses implement
:meth:`ClientBase.begin` (start the transaction: typically send one
message per involved server) and :meth:`ClientBase.handle_message`
(absorb server replies, possibly launch further rounds, and eventually
call :meth:`ClientBase.finish`).

The base class also maintains the *oracle context* — the set of
(object, value) pairs this client has observed — which is recorded on
every :class:`~repro.txn.types.TxnRecord` for the witness-based
consistency checkers.  The context is harness bookkeeping: protocols must
not read it (they keep their own metadata).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.codec import const, seq, value
from repro.sim.messages import Message, ProcessId
from repro.sim.process import Process, StepContext
from repro.txn.types import ObjectId, Transaction, TxnRecord, Value


class UnsupportedTransaction(Exception):
    """The protocol does not support this transaction shape.

    Raised e.g. by COPS/COPS-SNOW clients when handed a transaction that
    writes more than one object — giving up multi-object write
    transactions is precisely the functionality sacrifice the theorem is
    about, so the refusal is an explicit, catchable event.
    """


@dataclass
class ActiveTxn:
    """Book-keeping for the client's in-flight transaction."""

    txn: Transaction
    invoked_at: int
    reads: Dict[ObjectId, Value] = field(default_factory=dict)
    round: int = 0
    #: per-round outstanding server replies (protocol-managed)
    awaiting: Set[ProcessId] = field(default_factory=set)
    #: free-form protocol state
    state: Dict[str, Any] = field(default_factory=dict)


def _mask_active(active: Optional[ActiveTxn]) -> Optional[ActiveTxn]:
    """The canonical-fingerprint view of the in-flight transaction.

    Masks the ``invoked_at`` stamp (a global-event-counter value the
    client never branches on).  Shared by :meth:`ClientBase.fp_state`
    and the codec schema's canonical variant so the two views cannot
    drift apart.
    """
    if active is None:
        return None
    return dataclasses.replace(active, invoked_at=0)


def _mask_record(record: TxnRecord) -> TxnRecord:
    """Canonical view of one completed-transaction record (stamps masked)."""
    return dataclasses.replace(record, invoked_at=0, completed_at=0)


class ClientBase(Process):
    """Sequential transactional client."""

    #: servers/placement are construction-time configuration; the
    #: completed list is append-only (seq: only the new tail re-encodes);
    #: ``current`` and ``completed`` carry canonical masks mirroring
    #: :meth:`fp_state`
    codec_schema = (
        const("servers"),
        const("placement"),
        value("pending"),
        value("current", canon=_mask_active),
        seq("completed", canon=_mask_record),
        seq("failed"),
        value("context"),
    )

    def __init__(
        self,
        pid: ProcessId,
        servers: Sequence[ProcessId],
        placement: Mapping[ObjectId, Tuple[ProcessId, ...]],
    ):
        super().__init__(pid)
        self.servers: Tuple[ProcessId, ...] = tuple(servers)
        self.placement: Dict[ObjectId, Tuple[ProcessId, ...]] = dict(placement)
        self.pending: Deque[Transaction] = deque()
        self.current: Optional[ActiveTxn] = None
        self.completed: List[TxnRecord] = []
        self.failed: List[Tuple[Transaction, str]] = []
        self.context: Set[Tuple[ObjectId, Value]] = set()

    # -- placement helpers ----------------------------------------------------

    def replicas(self, obj: ObjectId) -> Tuple[ProcessId, ...]:
        try:
            return self.placement[obj]
        except KeyError:
            raise KeyError(f"object {obj!r} is not placed on any server") from None

    def primary(self, obj: ObjectId) -> ProcessId:
        return self.replicas(obj)[0]

    def servers_for(self, objects: Sequence[ObjectId]) -> Tuple[ProcessId, ...]:
        """One server per object (the primary), deduplicated, sorted."""
        return tuple(sorted({self.primary(o) for o in objects}))

    def partition_objects(
        self, objects: Sequence[ObjectId]
    ) -> Dict[ProcessId, Tuple[ObjectId, ...]]:
        """Group objects by their primary server."""
        groups: Dict[ProcessId, List[ObjectId]] = {}
        for obj in objects:
            groups.setdefault(self.primary(obj), []).append(obj)
        return {s: tuple(objs) for s, objs in sorted(groups.items())}

    # -- invocation --------------------------------------------------------------

    def on_invoke(self, txn: Transaction) -> None:
        self.validate(txn)
        self.pending.append(txn)

    def validate(self, txn: Transaction) -> None:
        """Reject unsupported shapes; overridden by restricted protocols."""
        for obj in txn.objects:
            self.replicas(obj)

    def wants_step(self) -> bool:
        return bool(self.pending) or self.current is not None

    def fp_state(self):
        """Mask the global-event-counter stamps for canonical fingerprints.

        ``invoked_at`` / ``completed_at`` are post-hoc diagnostics (the
        latency metrics and the strict-serializability real-time edges);
        the client never branches on them, and their values shift when
        independent events elsewhere in the schedule are permuted.  The
        completion *order* — all the causal checkers consume — survives in
        the ``completed`` list order.
        """
        state = self.__getstate__()
        state["current"] = _mask_active(state.get("current"))
        state["completed"] = [_mask_record(r) for r in state["completed"]]
        return state

    # -- the step loop -------------------------------------------------------------

    def on_step(self, ctx: StepContext, inbox: Sequence[Message]) -> None:
        for msg in inbox:
            self.handle_message(ctx, msg)
        if self.current is None and self.pending and not ctx.sends:
            txn = self.pending.popleft()
            self.current = ActiveTxn(txn=txn, invoked_at=ctx.step_index)
            try:
                self.begin(ctx, self.current)
            except UnsupportedTransaction as exc:
                self.failed.append((txn, str(exc)))
                self.current = None
        elif self.current is not None:
            self.on_idle(ctx, self.current)

    # -- protocol hooks ----------------------------------------------------------

    def begin(self, ctx: StepContext, active: ActiveTxn) -> None:
        raise NotImplementedError

    def handle_message(self, ctx: StepContext, msg: Message) -> None:
        raise NotImplementedError

    def on_idle(self, ctx: StepContext, active: ActiveTxn) -> None:
        """Called on steps while a transaction is active; default no-op."""
        return None

    # -- completion ---------------------------------------------------------------

    def finish(
        self,
        ctx: StepContext,
        reads: Optional[Mapping[ObjectId, Value]] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> TxnRecord:
        """Complete the current transaction and record it."""
        if self.current is None:
            raise RuntimeError(f"{self.pid}: finish() with no active transaction")
        active = self.current
        observed = dict(reads if reads is not None else active.reads)
        missing = set(active.txn.read_set) - set(observed)
        if missing:
            raise RuntimeError(
                f"{self.pid}: transaction {active.txn.txid} finished without "
                f"values for {sorted(missing)}"
            )
        record = TxnRecord(
            txn=active.txn,
            client=self.pid,
            reads=observed,
            invoked_at=active.invoked_at,
            completed_at=ctx.step_index,
            context=frozenset(self.context),
            meta=dict(meta or {}),
        )
        self.completed.append(record)
        for obj, val in observed.items():
            self.context.add((obj, val))
        for obj, val in active.txn.writes:
            self.context.add((obj, val))
        self.current = None
        return record

    # -- introspection ------------------------------------------------------------

    def results(self) -> List[TxnRecord]:
        return list(self.completed)

    def last_result(self) -> Optional[TxnRecord]:
        return self.completed[-1] if self.completed else None
