"""RL3xx — registry contract cross-checks.

``repro/protocols/registry.py`` records, for every protocol, the Table 1
row the paper claims for it (rounds, values, blocking, write
transactions).  The Table-1 benchmark prints those claims next to the
*measured* characterization — but a reader of the registry should not
have to run the benchmark to trust a row.  These rules load the registry
metadata and flag code patterns that contradict it, in the spirit of
"SNOW revisited"'s warning that characterization claims are easy to get
subtly wrong:

``RL301``
    A server whose ``PaperRow`` claims **non-blocking** (``nonblocking
    == "yes"``) contains a stored-request / deferred-reply pattern in
    its read path (``handle_read`` parks the request in an attribute
    instead of replying).  The deferral is tolerated when the concrete
    class's ``can_serve`` is literally ``return True`` — then the
    deferred branch is unreachable for this protocol (the pre-stabilized
    snapshot family).

``RL302``
    A client whose ``PaperRow`` claims **one round** (``rounds ==
    "1"``) can issue a ``ReadRequest`` from code reachable from its
    reply handler (``handle_message``/``on_idle``) — i.e. a multi-round
    read loop.

``RL303``
    A protocol whose ``PaperRow`` claims **no write transactions**
    (``wtx == "no"``) whose client does not reject multi-object writes:
    no ``validate`` in the client's MRO raises
    ``UnsupportedTransaction``.  Refusing the shape is how the
    functionality sacrifice is recorded; silently accepting it would
    fake a WTX row.

Findings are anchored at the *concrete registered class* so that a
suppression sits next to the protocol whose claim is being discussed,
not in a shared base class.

The registry is imported (not parsed) to read the metadata — the
factories in it are classes, so ``module``/``name`` map each protocol
to AST nodes in the project index.  When the import fails (linting a
partial tree), the RL3xx rules are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.lint.engine import ClassInfo, FileCtx, Finding, LintContext, Rule


def load_registry_meta() -> Optional[Dict[str, Dict[str, object]]]:
    """Import the protocol registry and extract per-protocol facts.

    Returns ``None`` when the registry is not importable (e.g. the lint
    target is a partial tree); RL3xx rules then skip silently.
    """
    try:
        from repro.protocols.registry import REGISTRY
    except Exception:  # pragma: no cover - absent only on partial trees
        return None
    meta: Dict[str, Dict[str, object]] = {}
    for name in sorted(REGISTRY):
        info = REGISTRY[name]
        meta[name] = {
            "server_module": info.server_factory.__module__,
            "server_name": info.server_factory.__name__,
            "client_module": info.client_factory.__module__,
            "client_name": info.client_factory.__name__,
            "rounds": info.paper_row.rounds,
            "values": info.paper_row.values,
            "nonblocking": info.paper_row.nonblocking,
            "wtx": info.paper_row.wtx,
            "supports_wtx": info.supports_wtx,
            "claims_fast_rot": info.claims_fast_rot,
        }
    return meta


def _resolve_registered(
    ctx: LintContext, module: str, name: str
) -> Optional[ClassInfo]:
    ci = ctx.index.by_qualname.get(f"{module}.{name}")
    if ci is None:
        ci = ctx.index.resolve(name)
    return ci


def _anchor(ctx: LintContext, ci: ClassInfo) -> Optional[Tuple[FileCtx, ast.AST]]:
    for fctx in ctx.files:
        if fctx.rel == ci.rel:
            return fctx, ci.node
    return None


def _returns_constant_true(func: ast.FunctionDef) -> bool:
    """Whether a function body is (docstring +) ``return True``."""
    body = [
        stmt
        for stmt in func.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        )
    ]
    return (
        len(body) == 1
        and isinstance(body[0], ast.Return)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is True
    )


def _param_names(func: ast.FunctionDef) -> List[str]:
    return [a.arg for a in func.args.args]


def _deferral_sites(func: ast.FunctionDef) -> List[ast.AST]:
    """Statements in ``func`` that park the request instead of replying.

    A deferral stores the message or request parameter into ``self``
    state: ``self.X.append((msg.src, req))``, ``self.X[key] = req`` and
    friends.
    """
    params = _param_names(func)
    # by convention handle_read(self, ctx, msg, req); be permissive
    interesting = {p for p in params if p not in ("self", "ctx")}
    sites: List[ast.AST] = []
    for node in ast.walk(func):
        stored: Optional[ast.expr] = None
        receiver: Optional[ast.expr] = None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "add", "appendleft", "setdefault")
        ):
            receiver = node.func.value
            for arg in node.args:
                stored = arg if stored is None else stored
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript):
                    receiver = tgt.value
                    stored = node.value
        if stored is None or receiver is None:
            continue
        # the receiver must be server state (self.<attr>...)
        root = receiver
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if not (isinstance(root, ast.Name) and root.id == "self"):
            continue
        names_in_stored = {
            n.id for n in ast.walk(stored) if isinstance(n, ast.Name)
        }
        if names_in_stored & interesting:
            sites.append(node)
    return sites


class NonBlockingClaimRule(Rule):
    code = "RL301"
    name = "nonblocking-claim"
    summary = "nonblocking PaperRow vs deferred-reply pattern in handle_read"

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.registry is None:
            return
        for proto in sorted(ctx.registry):
            meta = ctx.registry[proto]
            if meta["nonblocking"] != "yes":
                continue
            ci = _resolve_registered(
                ctx, str(meta["server_module"]), str(meta["server_name"])
            )
            if ci is None:
                continue
            found = ctx.index.find_method(ci, "handle_read")
            if found is None:
                continue
            owner, handle_read = found
            sites = _deferral_sites(handle_read)
            if not sites:
                continue
            # unreachable deferral: the concrete can_serve is `return True`
            can_serve = ctx.index.find_method(ci, "can_serve")
            if can_serve is not None and _returns_constant_true(can_serve[1]):
                continue
            anchor = _anchor(ctx, ci)
            if anchor is None:
                continue
            fctx, node = anchor
            yield fctx.finding(
                self.code,
                node,
                f"protocol {proto!r} claims non-blocking reads "
                f'(PaperRow.nonblocking == "yes") but {owner.name}.'
                f"handle_read (at {owner.rel}:{sites[0].lineno}) defers the "
                "reply into server state — a blocked read contradicts the row",
            )


def _reachable_methods(
    ctx: LintContext, ci: ClassInfo, roots: Tuple[str, ...]
) -> List[Tuple[ClassInfo, ast.FunctionDef]]:
    """Methods reachable from ``roots`` through ``self.m()`` calls."""
    out: List[Tuple[ClassInfo, ast.FunctionDef]] = []
    seen: Set[str] = set()
    work: List[str] = [r for r in roots]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        found = ctx.index.find_method(ci, name)
        if found is None:
            continue
        out.append(found)
        for node in ast.walk(found[1]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                work.append(node.func.attr)
    return out


class OneRoundClaimRule(Rule):
    code = "RL302"
    name = "one-round-claim"
    summary = 'rounds == "1" PaperRow vs multi-round client read loop'

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.registry is None:
            return
        for proto in sorted(ctx.registry):
            meta = ctx.registry[proto]
            if meta["rounds"] != "1":
                continue
            ci = _resolve_registered(
                ctx, str(meta["client_module"]), str(meta["client_name"])
            )
            if ci is None:
                continue
            offending: Optional[Tuple[ClassInfo, ast.AST]] = None
            for owner, meth in _reachable_methods(
                ctx, ci, ("handle_message", "on_idle")
            ):
                for node in ast.walk(meth):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "ReadRequest"
                    ):
                        offending = (owner, node)
                        break
                if offending:
                    break
            if offending is None:
                continue
            anchor = _anchor(ctx, ci)
            if anchor is None:
                continue
            fctx, node = anchor
            owner, call = offending
            yield fctx.finding(
                self.code,
                node,
                f"protocol {proto!r} claims one-round reads "
                f'(PaperRow.rounds == "1") but {owner.name} can issue a '
                f"ReadRequest from its reply handler "
                f"(at {owner.rel}:{call.lineno}) — a multi-round read loop "
                "contradicts the row",
            )


class NoWtxGuardRule(Rule):
    code = "RL303"
    name = "no-wtx-guard"
    summary = 'wtx == "no" PaperRow without an UnsupportedTransaction guard'

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.registry is None:
            return
        for proto in sorted(ctx.registry):
            meta = ctx.registry[proto]
            if meta["wtx"] != "no":
                continue
            ci = _resolve_registered(
                ctx, str(meta["client_module"]), str(meta["client_name"])
            )
            if ci is None:
                continue
            guarded = False
            for owner in ctx.index.mro(ci):
                validate = owner.methods.get("validate")
                if validate is None:
                    continue
                for node in ast.walk(validate):
                    if isinstance(node, ast.Raise) and node.exc is not None:
                        exc = node.exc
                        name = ""
                        if isinstance(exc, ast.Call) and isinstance(
                            exc.func, ast.Name
                        ):
                            name = exc.func.id
                        elif isinstance(exc, ast.Name):
                            name = exc.id
                        if name == "UnsupportedTransaction":
                            guarded = True
            if guarded:
                continue
            anchor = _anchor(ctx, ci)
            if anchor is None:
                continue
            fctx, node = anchor
            yield fctx.finding(
                self.code,
                node,
                f"protocol {proto!r} claims no write transactions "
                f'(PaperRow.wtx == "no") but {ci.name} never raises '
                "UnsupportedTransaction in validate() — the sacrifice the "
                "row records must be enforced, not implied",
            )


CONTRACT_RULES = (
    NonBlockingClaimRule(),
    OneRoundClaimRule(),
    NoWtxGuardRule(),
)
