"""The lint engine: findings, suppressions, the project index, the driver.

``repro.lint`` is a *protocol-contract and determinism* linter: it
checks the code of the protocol implementations against the invariants
the rest of the repository assumes — PYTHONHASHSEED-independent
execution, honest value accounting through ``Payload.value_fields``,
registry rows (:mod:`repro.protocols.registry`) that match the code, and
simulator purity.  The property monitors judge *executions*; this module
judges the *source*, so a dishonest implementation is caught before a
single execution runs.

Architecture
------------

* :class:`Finding` — one diagnostic, addressed by ``(path, line, col)``
  with a stable rule code (``RL1xx`` determinism, ``RL2xx`` value flow,
  ``RL3xx`` registry contract, ``RL4xx`` simulator purity).
* :class:`FileCtx` — a parsed file: source lines, AST (with parent
  links), and the suppressions declared in comments.
* :class:`ProjectIndex` — a cross-file class index (name → bases →
  methods → annotations) so rules can reason about inheritance without
  importing the code under analysis.
* :func:`run_lint` — parse, index, run every rule, filter suppressed
  findings, return the rest sorted.

Suppressions
------------

A finding is suppressed by a comment on the same line or on the line
directly above::

    self.clock = time.time()  # repro-lint: disable=RL101 — wall clock is
                              # intentional here: ...

Multiple codes separate with commas.  A suppression **must** carry a
justification after the codes (introduced by ``—``, ``--`` or ``:``);
a bare suppression still silences its target but is itself reported as
``RL001`` so that unexplained exemptions cannot accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

#: codes that may never be suppressed (the suppression meta-rules)
UNSUPPRESSABLE = ("RL001", "RL002")

#: per-directory rule policies: a finding whose path contains the
#: directory segment is dropped when its code matches one of the
#: prefixes.  Benchmarks measure wall time by design, so the
#: determinism family stays src-only.
DEFAULT_DIR_POLICIES: Mapping[str, Tuple[str, ...]] = {
    "benchmarks": ("RL1",),
}

CODE_RE = re.compile(r"^RL\d{3}$")

SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)\s*(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    code: str
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int            #: line the comment sits on (1-based)
    target_line: int     #: line the suppression applies to
    codes: Tuple[str, ...]
    reason: str

    @property
    def has_reason(self) -> bool:
        return bool(self.reason)


def _parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    out: List[Suppression] = []
    for i, text in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(text)
        if m is None:
            continue
        codes = tuple(c.strip().upper() for c in m.group(1).split(","))
        reason = m.group(2).strip().lstrip("—-–: ").strip()
        target = i
        if text.lstrip().startswith("#"):
            # standalone comment: applies to the next code-bearing line
            for j in range(i + 1, len(lines) + 1):
                nxt = lines[j - 1].strip()
                if nxt and not nxt.startswith("#"):
                    target = j
                    break
        out.append(Suppression(line=i, target_line=target, codes=codes, reason=reason))
    return out


class FileCtx:
    """A parsed source file plus its lint bookkeeping."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            self.parse_error = exc
        self.suppressions = _parse_suppressions(self.lines)
        self._suppressed: Dict[int, Set[str]] = {}
        for sup in self.suppressions:
            self._suppressed.setdefault(sup.target_line, set()).update(sup.codes)
        if self.tree is not None:
            self.parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self.parents[child] = parent

    # -- suppression queries ------------------------------------------------

    def is_suppressed(self, code: str, line: int) -> bool:
        if code in UNSUPPRESSABLE:
            return False
        return code in self._suppressed.get(line, ())

    # -- AST helpers --------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=code,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# --------------------------------------------------------------------------
# project-wide class index
# --------------------------------------------------------------------------


@dataclass
class ClassInfo:
    """Statically gathered facts about one class definition."""

    name: str
    module: str           #: dotted module ("repro.protocols.cops")
    rel: str              #: path relative to the lint root
    node: ast.ClassDef
    base_names: Tuple[str, ...] = ()
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: class-level and ``self.x`` annotations: attr name -> annotation head
    attr_heads: Dict[str, str] = field(default_factory=dict)
    #: class-body ``value_fields = (...)`` declaration, if any
    value_fields: Optional[Tuple[str, ...]] = None
    #: annotated dataclass-style fields: name -> annotation source text
    ann_fields: Dict[str, str] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


def annotation_head(node: Optional[ast.AST]) -> str:
    """The outermost constructor of a type annotation (``Dict[...]`` → ``Dict``)."""
    if node is None:
        return ""
    if isinstance(node, ast.Subscript):
        return annotation_head(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the head token
        head = re.split(r"[\[\s]", node.value, maxsplit=1)[0]
        return head.strip()
    return ""


def _base_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] style
        return _base_name(expr.value)
    return ""


def _collect_class(ci: ClassInfo) -> None:
    node = ci.node
    ci.base_names = tuple(n for n in (_base_name(b) for b in node.bases) if n)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ci.methods[stmt.name] = stmt  # type: ignore[assignment]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ci.attr_heads[stmt.target.id] = annotation_head(stmt.annotation)
            ci.ann_fields[stmt.target.id] = ast.unparse(stmt.annotation)
        elif isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id == "value_fields":
                    names: List[str] = []
                    if isinstance(stmt.value, (ast.Tuple, ast.List)):
                        for elt in stmt.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                names.append(elt.value)
                    ci.value_fields = tuple(names)
    # ``self.x: T = ...`` annotations anywhere in the class's methods
    for meth in ci.methods.values():
        for sub in ast.walk(meth):
            if (
                isinstance(sub, ast.AnnAssign)
                and isinstance(sub.target, ast.Attribute)
                and isinstance(sub.target.value, ast.Name)
                and sub.target.value.id == "self"
            ):
                ci.attr_heads.setdefault(
                    sub.target.attr, annotation_head(sub.annotation)
                )


class ProjectIndex:
    """Cross-file class hierarchy for the linted tree."""

    def __init__(self) -> None:
        self.by_name: Dict[str, List[ClassInfo]] = {}
        self.by_qualname: Dict[str, ClassInfo] = {}

    @classmethod
    def build(cls, files: Sequence[FileCtx]) -> "ProjectIndex":
        index = cls()
        for fctx in files:
            if fctx.tree is None:
                continue
            module = _module_name(fctx.rel)
            for node in ast.walk(fctx.tree):
                if isinstance(node, ast.ClassDef):
                    ci = ClassInfo(
                        name=node.name, module=module, rel=fctx.rel, node=node
                    )
                    _collect_class(ci)
                    index.by_name.setdefault(node.name, []).append(ci)
                    index.by_qualname[ci.qualname] = ci
        return index

    def resolve(self, name: str, prefer_module: str = "") -> Optional[ClassInfo]:
        cands = self.by_name.get(name)
        if not cands:
            return None
        if prefer_module:
            for ci in cands:
                if ci.module == prefer_module:
                    return ci
        return cands[0]

    def mro(self, ci: ClassInfo) -> List[ClassInfo]:
        """Left-to-right DFS linearization (a practical MRO approximation)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()

        def visit(c: ClassInfo) -> None:
            if c.qualname in seen:
                return
            seen.add(c.qualname)
            out.append(c)
            for base in c.base_names:
                resolved = self.resolve(base, prefer_module=c.module)
                if resolved is not None:
                    visit(resolved)

        visit(ci)
        return out

    def is_subclass(self, ci: ClassInfo, root: str) -> bool:
        """Whether ``root`` (a simple class name) appears in the base chain."""
        if ci.name == root:
            return True
        for c in self.mro(ci):
            if c.name == root or root in c.base_names:
                return True
        return False

    def find_method(
        self, ci: ClassInfo, name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        for c in self.mro(ci):
            if name in c.methods:
                return c, c.methods[name]
        return None

    def attr_head(self, ci: ClassInfo, attr: str) -> str:
        for c in self.mro(ci):
            head = c.attr_heads.get(attr)
            if head:
                return head
        return ""

    def effective_value_fields(self, ci: ClassInfo) -> Tuple[str, ...]:
        for c in self.mro(ci):
            if c.value_fields is not None:
                return c.value_fields
        return ()

    def effective_ann_fields(self, ci: ClassInfo) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for c in reversed(self.mro(ci)):
            out.update(c.ann_fields)
        return out

    def payload_classes(self) -> List[ClassInfo]:
        out = []
        for name in sorted(self.by_name):
            for ci in self.by_name[name]:
                if ci.name != "Payload" and self.is_subclass(ci, "Payload"):
                    out.append(ci)
        return out


def _module_name(rel: str) -> str:
    parts = Path(rel).with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# --------------------------------------------------------------------------
# rules and the driver
# --------------------------------------------------------------------------


class Rule:
    """Base class: one rule, one primary code.

    ``check_file`` runs once per file; ``check_project`` once per lint
    invocation (for cross-file rules).  Either may be a no-op.
    """

    code = "RL000"
    name = "unnamed"
    summary = ""

    def check_file(self, fctx: FileCtx, ctx: "LintContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctx: "LintContext") -> Iterator[Finding]:
        return iter(())


@dataclass
class LintContext:
    """Everything a rule may consult."""

    files: List[FileCtx]
    index: ProjectIndex
    #: protocol name -> registry facts (None when the registry could not
    #: be loaded; RL3xx rules then skip)
    registry: Optional[Mapping[str, Mapping[str, object]]] = None

    def file_for_module(self, module: str) -> Optional[FileCtx]:
        for fctx in self.files:
            if _module_name(fctx.rel) == module:
                return fctx
        return None


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py") if "__pycache__" not in q.parts))
        elif p.suffix == ".py":
            out.append(p)
    # de-duplicate, keep deterministic order
    seen: Set[str] = set()
    unique: List[Path] = []
    for p in out:
        key = str(p)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def suppression_counts(files: Iterable[FileCtx]) -> Dict[str, int]:
    """Per-code tallies of every suppression comment in ``files``.

    Every ``# repro-lint: disable=`` comment counts, justified or not:
    the budget machinery bounds the *amount* of suppression, the RL001
    meta-rule bounds its *quality*.
    """
    out: Dict[str, int] = {}
    for fctx in files:
        for sup in fctx.suppressions:
            for code in sup.codes:
                if CODE_RE.match(code):
                    out[code] = out.get(code, 0) + 1
    return dict(sorted(out.items()))


def check_budget(
    counts: Mapping[str, int],
    budget: Mapping[str, object],
    budget_path: str,
) -> List[Finding]:
    """RL002 findings where suppression tallies exceed the committed budget.

    ``budget`` maps code prefixes ("RL1", "RL404") to ceilings.  A code
    matched by no budget key has an implicit ceiling of zero, so new
    suppression families cannot appear without an in-diff budget entry.
    """
    findings: List[Finding] = []
    for prefix in sorted(budget):
        total = sum(n for code, n in counts.items() if code.startswith(prefix))
        ceiling = int(budget[prefix])  # type: ignore[call-overload]
        if total > ceiling:
            findings.append(
                Finding(
                    "RL002",
                    budget_path,
                    1,
                    1,
                    f"suppression budget exceeded for {prefix}: {total} "
                    f"suppression(s) committed, budget allows {ceiling} — "
                    "remove suppressions or raise the budget in the same "
                    "diff with justification",
                )
            )
    for code in sorted(counts):
        if not any(code.startswith(p) for p in budget):
            findings.append(
                Finding(
                    "RL002",
                    budget_path,
                    1,
                    1,
                    f"{counts[code]} suppression(s) for {code} have no "
                    "budget entry — add one to the committed budget file",
                )
            )
    return findings


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    registry: Optional[Mapping[str, Mapping[str, object]]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    dir_policies: Optional[Mapping[str, Sequence[str]]] = None,
) -> Tuple[List[Finding], LintContext]:
    """Lint ``paths`` and return (findings, context).

    ``registry``: pass the mapping from
    :func:`repro.lint.rules_contract.load_registry_meta`, or ``None`` to
    skip the RL3xx cross-checks.  ``select``/``ignore`` filter by code
    prefix ("RL1", "RL110", ...).  ``dir_policies`` maps directory
    segments to ignored code prefixes (default:
    :data:`DEFAULT_DIR_POLICIES`); pass ``{}`` to disable.
    """
    if dir_policies is None:
        dir_policies = DEFAULT_DIR_POLICIES
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    files: List[FileCtx] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding("RL000", str(path), 1, 1, f"cannot read file: {exc}")
            )
            continue
        fctx = FileCtx(path, str(path), text)
        if fctx.parse_error is not None:
            findings.append(
                Finding(
                    "RL000",
                    fctx.rel,
                    fctx.parse_error.lineno or 1,
                    (fctx.parse_error.offset or 0) + 1,
                    f"syntax error: {fctx.parse_error.msg}",
                )
            )
            continue
        files.append(fctx)

    ctx = LintContext(files=files, index=ProjectIndex.build(files), registry=registry)

    for fctx in files:
        # the suppression meta-rule: justifications are not optional
        for sup in fctx.suppressions:
            if not sup.has_reason:
                findings.append(
                    Finding(
                        "RL001",
                        fctx.rel,
                        sup.line,
                        1,
                        "suppression without justification: write "
                        "`# repro-lint: disable=<CODE> — <why this is safe>`",
                    )
                )
            for code in sup.codes:
                if not CODE_RE.match(code):
                    findings.append(
                        Finding(
                            "RL001",
                            fctx.rel,
                            sup.line,
                            1,
                            f"suppression names malformed code {code!r}",
                        )
                    )
        for rule in rules:
            findings.extend(rule.check_file(fctx, ctx))
    for rule in rules:
        findings.extend(rule.check_project(ctx))

    by_rel = {f.rel: f for f in files}
    kept: List[Finding] = []
    for finding in findings:
        fctx = by_rel.get(finding.path)
        if fctx is not None and fctx.is_suppressed(finding.code, finding.line):
            continue
        if select and not any(finding.code.startswith(s) for s in select):
            continue
        if ignore and any(finding.code.startswith(s) for s in ignore):
            continue
        if dir_policies:
            parts = Path(finding.path).parts
            if any(
                segment in parts
                and any(finding.code.startswith(p) for p in prefixes)
                for segment, prefixes in dir_policies.items()
            ):
                continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept, ctx
