"""RL2xx — value-flow rules.

The one-value property (paper Definition 5, footnote 3) is judged by
counting the written values a reply carries — and that count is honest
only if every value crossing the wire is visible to the monitors.  The
runtime contract (:mod:`repro.protocols.base`): values travel as
:class:`~repro.protocols.base.ValueEntry` objects reachable through a
payload field listed in ``Payload.value_fields``.  The dynamic leak
detector (``tests/test_value_leaks.py``) scans live payloads; these
rules are its static complement — they catch the smuggling patterns
before any execution exists.

``RL201``
    A ``ValueEntry(...)`` constructed inside a server class must flow
    into a *declared* value field of a payload (directly, via a local
    name, or via ``.append`` onto a local list that is shipped).  A
    ValueEntry parked anywhere else — say inside a ``meta`` mapping or
    a ``ServerMsg.data`` dict — would cross the wire invisible to the
    one-value monitor.

``RL202``
    A payload dataclass field whose annotation mentions ``ValueEntry``
    must be listed in that payload's ``value_fields``.  An undeclared
    value-bearing field is exactly the hole the monitors cannot see.

``RL203``
    Every name in ``value_fields`` must be an actual field of the
    payload class (or its bases).  A typo here silently exempts the
    field from monitoring.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import ClassInfo, FileCtx, Finding, LintContext, Rule

VALUE_ENTRY_RE = re.compile(r"\bValueEntry\b")


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _root_name(expr: ast.expr) -> str:
    """The leftmost Name an expression hangs off (``g.items()`` → ``g``)."""
    while True:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            expr = expr.value
        elif isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            return ""


class PayloadFieldDeclarationRule(Rule):
    code = "RL202"
    name = "undeclared-value-field"
    summary = "payload field carries ValueEntry but is not in value_fields"

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        by_rel = {f.rel: f for f in ctx.files}
        for ci in ctx.index.payload_classes():
            fctx = by_rel.get(ci.rel)
            if fctx is None:
                continue
            declared = set(ctx.index.effective_value_fields(ci))
            for fname, ann in sorted(ci.ann_fields.items()):
                if VALUE_ENTRY_RE.search(ann) and fname not in declared:
                    node = self._field_node(ci, fname)
                    yield fctx.finding(
                        self.code,
                        node if node is not None else ci.node,
                        f"{ci.name}.{fname} is annotated {ann!r} but is not "
                        "declared in value_fields — the one-value monitor "
                        "cannot see values carried here",
                    )

    @staticmethod
    def _field_node(ci: ClassInfo, fname: str) -> Optional[ast.AST]:
        for stmt in ci.node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == fname
            ):
                return stmt
        return None


class ValueFieldsNameRule(Rule):
    code = "RL203"
    name = "unknown-value-field"
    summary = "value_fields names a field the payload does not define"

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        by_rel = {f.rel: f for f in ctx.files}
        for ci in ctx.index.payload_classes():
            if ci.value_fields is None:
                continue
            fctx = by_rel.get(ci.rel)
            if fctx is None:
                continue
            known = set(ctx.index.effective_ann_fields(ci))
            for fname in ci.value_fields:
                if fname not in known:
                    yield fctx.finding(
                        self.code,
                        ci.node,
                        f"{ci.name}.value_fields names {fname!r} which is not "
                        "a field of the payload — carried_values() would "
                        "raise or silently skip it",
                    )


class ServerValueEntryFlowRule(Rule):
    """RL201: every server-constructed ValueEntry reaches a declared field.

    Intra-procedural by design: a ValueEntry that (a) appears directly
    inside a value-field keyword of a payload constructor, (b) is bound
    to a local that some payload constructor ships in a value field, or
    (c) is returned / yielded to the caller (the caller is then
    checked at *its* construction site) is considered accounted for.
    Anything else — stored into ``meta``/``data`` mappings, attached to
    a non-value field, or simply dropped into an attribute that later
    serializes into a message — is flagged.
    """

    code = "RL201"
    name = "value-entry-flow"
    summary = "server-constructed ValueEntry does not reach a declared value field"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        index = ctx.index
        payload_fields: Dict[str, Tuple[str, ...]] = {
            ci.name: index.effective_value_fields(ci)
            for ci in index.payload_classes()
        }
        for node in ast.walk(fctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            ci = None
            for cand in index.by_name.get(node.name, []):
                if cand.rel == fctx.rel:
                    ci = cand
                    break
            if ci is None or not index.is_subclass(ci, "ServerBase"):
                continue
            for meth in sorted(ci.methods):
                yield from self._check_method(
                    fctx, ci.methods[meth], payload_fields
                )

    # -- per-method flow ----------------------------------------------------

    def _check_method(
        self,
        fctx: FileCtx,
        meth: ast.FunctionDef,
        payload_fields: Dict[str, Tuple[str, ...]],
    ) -> Iterator[Finding]:
        creations = [
            node
            for node in ast.walk(meth)
            if isinstance(node, ast.Call) and _call_name(node.func) == "ValueEntry"
        ]
        if not creations:
            return
        shipped_names = self._names_shipped_in_value_fields(meth, payload_fields)
        for call in creations:
            if self._is_accounted(fctx, call, payload_fields, shipped_names):
                continue
            yield fctx.finding(
                self.code,
                call,
                "ValueEntry constructed here never reaches a payload field "
                "declared in value_fields — values must not cross the wire "
                "outside declared fields (footnote 3)",
            )

    @staticmethod
    def _value_field_exprs(
        call: ast.Call, payload_fields: Dict[str, Tuple[str, ...]]
    ) -> List[ast.expr]:
        """Argument expressions of ``call`` that land in declared value fields."""
        name = _call_name(call.func)
        fields = payload_fields.get(name)
        if not fields:
            return []
        out: List[ast.expr] = []
        for kw in call.keywords:
            if kw.arg in fields:
                out.append(kw.value)
        return out

    def _names_shipped_in_value_fields(
        self, meth: ast.FunctionDef, payload_fields: Dict[str, Tuple[str, ...]]
    ) -> Set[str]:
        """Local names that some payload constructor ships as values.

        Closed over iteration: if ``items`` is shipped and bound by
        ``for server, items in groups.items()``, then ``groups`` is a
        shipped container too (the setdefault/append accumulation idiom).
        """
        shipped: Set[str] = set()
        for node in ast.walk(meth):
            if isinstance(node, ast.Call):
                for expr in self._value_field_exprs(node, payload_fields):
                    for sub in ast.walk(expr):
                        if isinstance(sub, ast.Name):
                            shipped.add(sub.id)
        for _ in range(3):
            grew = False
            for node in ast.walk(meth):
                if not isinstance(node, (ast.For, ast.comprehension)):
                    continue
                target, source = node.target, node.iter
                bound = {
                    n.id for n in ast.walk(target) if isinstance(n, ast.Name)
                }
                if not bound & shipped:
                    continue
                root = _root_name(source)
                if root and root not in shipped:
                    shipped.add(root)
                    grew = True
            if not grew:
                break
        return shipped

    def _is_accounted(
        self,
        fctx: FileCtx,
        call: ast.Call,
        payload_fields: Dict[str, Tuple[str, ...]],
        shipped_names: Set[str],
    ) -> bool:
        # (a) directly inside a value-field argument of a payload ctor
        child: ast.AST = call
        for anc in fctx.ancestors(call):
            if isinstance(anc, ast.Call):
                for expr in self._value_field_exprs(anc, payload_fields):
                    if child is expr or call in ast.walk(expr):
                        return True
            if isinstance(anc, (ast.Return, ast.Yield, ast.YieldFrom)):
                return True  # (c) escapes to the caller's construction site
            if isinstance(anc, ast.stmt):
                stmt = anc
                break
            child = anc
        else:
            return False
        # (b) bound to a name (or appended to a list) that gets shipped
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id in shipped_names:
                    return True
                # Version-store installs assign/keep entries locally;
                # a ``self.store``-style assignment is state, not wire
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("append", "extend", "add")
                and _root_name(func.value) in shipped_names
            ):
                return True
        return False


VALUEFLOW_RULES = (
    ServerValueEntryFlowRule(),
    PayloadFieldDeclarationRule(),
    ValueFieldsNameRule(),
)
