"""The rule registry: every rule, in documentation order.

Rule modules export a tuple of rule *instances*; this module strings
them together so the engine, CLI and docs all see the same list.  The
rule families:

==========  ============================================
``RL0xx``   the linter itself (parse errors, suppressions, budgets)
``RL1xx``   determinism (:mod:`repro.lint.rules_determinism`)
``RL2xx``   value flow (:mod:`repro.lint.rules_valueflow`)
``RL3xx``   registry contract (:mod:`repro.lint.rules_contract`)
``RL4xx``   simulator purity (:mod:`repro.lint.rules_purity`)
``RL5xx``   snapshot honesty (:mod:`repro.lint.rules_dirty`)
``RL6xx``   concurrency discipline (:mod:`repro.lint.rules_locks`)
==========  ============================================

The RL5xx/RL6xx families are flow-sensitive: they run on the CFG +
worklist-dataflow core (:mod:`repro.lint.cfg`,
:mod:`repro.lint.dataflow`) with cross-module class summaries
(:mod:`repro.lint.summaries`).
"""

from __future__ import annotations

from typing import Tuple

from repro.lint.engine import Rule
from repro.lint.rules_contract import CONTRACT_RULES
from repro.lint.rules_determinism import DETERMINISM_RULES
from repro.lint.rules_dirty import DIRTY_RULES
from repro.lint.rules_locks import LOCK_RULES
from repro.lint.rules_purity import PURITY_RULES
from repro.lint.rules_valueflow import VALUEFLOW_RULES

ALL_RULES: Tuple[Rule, ...] = (
    DETERMINISM_RULES
    + VALUEFLOW_RULES
    + CONTRACT_RULES
    + PURITY_RULES
    + DIRTY_RULES
    + LOCK_RULES
)

#: codes emitted by the engine itself, not by a Rule subclass
ENGINE_CODES = {
    "RL000": "file cannot be read or parsed",
    "RL001": "suppression without justification / malformed code",
    "RL002": "suppression count exceeds the committed per-family budget",
}


def rule_catalog() -> Tuple[Tuple[str, str, str], ...]:
    """(code, name, summary) for every rule, engine codes included."""
    rows = [(code, "engine", summary) for code, summary in sorted(ENGINE_CODES.items())]
    rows.extend((r.code, r.name, r.summary) for r in ALL_RULES)
    rows.sort(key=lambda row: row[0])
    return tuple(rows)
