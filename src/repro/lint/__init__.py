"""repro.lint — static protocol-contract and determinism linter.

The dynamic layer of this repository checks *executions*: the one-value
monitor counts values on live payloads, the Table-1 benchmark measures
rounds and blocking, the replay harness checks determinism by running
twice.  This package is the static layer: it reads the *source* of the
protocol implementations and flags code that could not honestly pass
those dynamic checks — wall-clock reads, hash-ordered iteration leaking
into message order, ``ValueEntry`` objects smuggled outside declared
``value_fields``, registry rows the code contradicts, and state the
simulator's snapshots cannot see.

Programmatic use::

    from repro.lint import run_lint, load_registry_meta
    findings, ctx = run_lint(["src/"], registry=load_registry_meta())

Command line::

    python -m repro.lint src/            # or: make lint
"""

from repro.lint.engine import (
    Finding,
    LintContext,
    Rule,
    check_budget,
    run_lint,
    suppression_counts,
)
from repro.lint.rules import ALL_RULES, rule_catalog
from repro.lint.rules_contract import load_registry_meta

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "check_budget",
    "load_registry_meta",
    "rule_catalog",
    "run_lint",
    "suppression_counts",
]
