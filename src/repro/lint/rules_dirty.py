"""RL5xx — snapshot honesty (dirty-tracking) rules.

The snapshot machinery is a per-component cache keyed on each
:class:`~repro.sim.process.Process`'s and the
:class:`~repro.sim.network.Network`'s ``_version`` counter.  A mutation
that can return without bumping the counter makes the cache serve a
*stale* capture and delta restores keep a component they should reload
— the exploration silently walks the wrong state space and the paper's
Table-1 verdicts drift with no test failing.  These rules machine-check
the contract that used to be a ``docs/extending.md`` checklist, on the
CFG/dataflow core (:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`)
with cross-module summaries (:mod:`repro.lint.summaries`).

``RL501``
    A method of a dirty-tracked class (subclass of ``Process`` /
    ``Network``, or anything defining ``mark_dirty``) mutates tracked
    state — attribute assign/augassign/del, a mutating container call
    on state reachable from ``self`` (aliases included), or a call to
    a helper summarized as mutating — and some path from the mutation
    reaches a normal ``return`` without crossing a mark
    (``self.mark_dirty()``, a ``self._version`` bump, or a helper that
    always marks).  Methods the executor already brackets with a bump
    are exempt: ``on_step``/``on_invoke``/anything handed a
    ``StepContext``, closed transitively over ``self.<m>()`` calls per
    concrete subclass.  Paths ending in an explicit ``raise`` are not
    flagged — an aborting path publishes no state.

``RL502``
    ``fp_state()`` or ``__getstate__()`` of a dirty-tracked class
    mutates ``self``, directly or through a helper.  Fingerprints and
    snapshots must observe, never perturb: a mutating observer makes
    exploration counts depend on *when* the cache looked.

``RL503``
    A dirty-tracked class overrides ``__getstate__`` without excluding
    ``_version`` (the counter is identity-local: a restored component
    must not inherit the donor's counter), or overrides
    ``__setstate__`` without resetting ``self._version`` (a restored
    component with no counter silently disables its own dirty
    tracking).  Delegating to ``super()`` counts as handling it.

``RL504``
    A dirty-tracked class whose MRO declares a ``codec_schema`` assigns
    a ``self.<attr>`` that no class in the MRO declares.  The schema
    codec (``snapshot_mode="codec"``) builds its per-component ledger
    from the declared fields at construction time; an undeclared state
    field makes the ledger reject the component and every snapshot of
    it silently pays the O(process) pickled-blob fallback — correct,
    but exactly the cost the schema exists to avoid, and invisible
    until someone reads the ``codec_fallbacks`` counter.  Fields a
    custom ``__getstate__`` pops are exempt (they are not snapshot
    state), as is ``_version``.  Classes with no ``codec_schema``
    anywhere in their MRO are skipped: the blob fallback is the
    *declared* representation there, not an accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import dirty_mutations
from repro.lint.engine import ClassInfo, Finding, LintContext, Rule
from repro.lint.summaries import (
    EXCLUDED_METHODS,
    MARK,
    MUTATION,
    DirtySummaries,
    build_summaries,
)


def get_summaries(ctx: LintContext) -> DirtySummaries:
    """The per-run summary database, built once and cached on the context."""
    db = getattr(ctx, "_dirty_summaries", None)
    if db is None:
        db = build_summaries(ctx.index)
        ctx._dirty_summaries = db
    return db


def _finding(ci: ClassInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        code=code,
        path=ci.rel,
        line=getattr(node, "lineno", ci.node.lineno),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


class MarkDirtyPathRule(Rule):
    code = "RL501"
    name = "mark-dirty-path"
    summary = "mutation of dirty-tracked state can return without mark_dirty()"

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        db = get_summaries(ctx)
        for ci in db.dirty_classes:
            for mname in sorted(ci.methods):
                if mname in EXCLUDED_METHODS:
                    continue
                if (ci.qualname, mname) in db.covered:
                    continue
                msum = db.methods.get((ci.qualname, mname))
                if msum is None or not msum.mutates:
                    continue
                cfg = db.cfg_for(msum.node)
                kinds = db.classify(msum, cfg)
                muts = {i for i, k in kinds.items() if k == MUTATION}
                marks = {i for i, k in kinds.items() if k == MARK}
                for idx in sorted(dirty_mutations(cfg, muts, marks)):
                    node = cfg.nodes[idx]
                    yield _finding(
                        ci,
                        node.stmt,
                        self.code,
                        f"{ci.name}.{mname} mutates dirty-tracked state but "
                        "can return without mark_dirty()/a self._version "
                        "bump on this path — snapshots and canonical "
                        "fingerprints go stale",
                    )


class FingerprintPurityRule(Rule):
    code = "RL502"
    name = "fingerprint-purity"
    summary = "fp_state()/__getstate__() of a dirty-tracked class mutates self"

    OBSERVERS = ("fp_state", "__getstate__")

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        db = get_summaries(ctx)
        for ci in db.dirty_classes:
            for mname in self.OBSERVERS:
                if mname not in ci.methods:
                    continue
                msum = db.methods.get((ci.qualname, mname))
                if msum is None or not msum.mutates:
                    continue
                yield _finding(
                    ci,
                    msum.node,
                    self.code,
                    f"{ci.name}.{mname} mutates self — snapshot/fingerprint "
                    "observers must be pure, or exploration counts depend on "
                    "when the cache looked",
                )


class VersionCounterRule(Rule):
    code = "RL503"
    name = "version-counter-pickle"
    summary = "__getstate__/__setstate__ override mishandles the _version counter"

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        db = get_summaries(ctx)
        for ci in db.dirty_classes:
            if "__getstate__" in ci.methods:
                fn = ci.methods["__getstate__"]
                if not self._mentions_version(fn) and not self._delegates(
                    fn, "__getstate__"
                ):
                    yield _finding(
                        ci,
                        fn,
                        self.code,
                        f"{ci.name}.__getstate__ does not exclude '_version' "
                        "— the dirty counter is identity-local and must not "
                        "travel with the pickled state",
                    )
            if "__setstate__" in ci.methods:
                fn = ci.methods["__setstate__"]
                if not self._assigns_version(fn) and not self._delegates(
                    fn, "__setstate__"
                ):
                    yield _finding(
                        ci,
                        fn,
                        self.code,
                        f"{ci.name}.__setstate__ does not reset "
                        "self._version — a restored component without a "
                        "counter disables its own dirty tracking",
                    )

    @staticmethod
    def _mentions_version(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Constant) and node.value == "_version":
                return True
        return False

    @staticmethod
    def _assigns_version(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and tgt.attr == "_version"
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        return True
        return False

    @staticmethod
    def _delegates(fn: ast.FunctionDef, name: str) -> bool:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == name
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"
            ):
                return True
        return False


class CodecSchemaRule(Rule):
    code = "RL504"
    name = "codec-schema-coverage"
    summary = "state field assigned on a schema-coded class but absent from codec_schema"

    #: never snapshot state: the dirty counter is identity-local
    EXEMPT = frozenset({"_version"})

    def check_project(self, ctx: LintContext) -> Iterator[Finding]:
        db = get_summaries(ctx)
        reported = set()
        for ci in db.dirty_classes:
            mro = db.index.mro(ci)
            declared: set = set()
            has_schema = False
            for c in mro:
                names = self._schema_names(c)
                if names is not None:
                    has_schema = True
                    declared.update(names)
            if not has_schema:
                continue
            exempt = set(self.EXEMPT)
            for c in mro:
                fn = c.methods.get("__getstate__")
                if fn is not None:
                    exempt.update(self._popped_keys(fn))
            for c in mro:
                for mname in sorted(c.methods):
                    if mname == "__setstate__":
                        continue
                    for node, attr in self._self_stores(c.methods[mname]):
                        if attr in declared or attr in exempt:
                            continue
                        key = (c.qualname, attr)
                        if key in reported:
                            continue
                        reported.add(key)
                        yield _finding(
                            c,
                            node,
                            self.code,
                            f"{c.name}.{mname} assigns self.{attr} but no "
                            f"codec_schema in {ci.name}'s MRO declares it — "
                            "the schema codec rejects the component and "
                            "every snapshot pays the O(process) blob "
                            "fallback",
                        )

    @staticmethod
    def _schema_names(ci: ClassInfo):
        """Names in ``ci``'s own class-body ``codec_schema = (...)``, or
        ``None`` when the class declares no schema of its own."""
        for stmt in ci.node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "codec_schema"
                for t in stmt.targets
            ):
                continue
            names = []
            value = stmt.value
            elts = value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
            for elt in elts:
                if isinstance(elt, ast.Call):
                    for arg in elt.args:
                        if isinstance(arg, ast.Constant) and isinstance(
                            arg.value, str
                        ):
                            names.append(arg.value)
                            break
            return tuple(names)
        return None

    @staticmethod
    def _popped_keys(fn: ast.FunctionDef):
        """String keys a ``__getstate__`` removes from its state dict."""
        keys = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                keys.add(node.args[0].value)
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.slice, ast.Constant)
                        and isinstance(tgt.slice.value, str)
                    ):
                        keys.add(tgt.slice.value)
        return keys

    @staticmethod
    def _self_stores(fn: ast.FunctionDef):
        """(node, attr) for every ``self.<attr>`` store in ``fn`` —
        plain/annotated/augmented assigns, tuple unpacking, for/with
        targets all carry a Store context on the Attribute node."""
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                yield node, node.attr


DIRTY_RULES = (
    MarkDirtyPathRule(),
    FingerprintPurityRule(),
    VersionCounterRule(),
    CodecSchemaRule(),
)
