"""RL6xx — shared-memory concurrency discipline rules.

The work-stealing pool (:mod:`repro.engine.parallel`) and its shared
claim table (:mod:`repro.engine.seenset`) are the one place in the
tree where plain Python touches memory that other *processes* write
concurrently.  The soundness argument there is narrow and explicit:
every access to the shared buffer happens under the owning stripe
lock, locks are released on every path, and everything shipped into a
worker bootstrap survives pickling.  These rules keep those three
claims machine-checked as the concurrency surface grows (ROADMAP items
2 and 4 both add to it).

``RL601``
    A shared-memory buffer access (``self.shm.buf[...]`` or through a
    local alias) not dominated by a stripe-lock acquire.  Scoped
    structurally: only classes that own both a ``shm`` and a ``locks``
    attribute are checked, and ``__init__``/``__setstate__`` are
    exempt (the object is private until published).  The check is the
    forward must-analysis of :mod:`repro.lint.dataflow`: lock
    ``with``-entries and ``.acquire()`` calls gen, ``with``-exits and
    ``.release()`` calls kill, and the access is flagged when the
    held-count can be zero on entry.

``RL602``
    A manual ``.acquire()`` that is not release-safe: neither inside a
    ``try`` whose ``finally`` releases the same receiver, nor
    immediately followed by one (simple assignments may intervene).
    Also flags the inverse hazard: a manual ``.release()`` *inside* a
    ``try`` body whose ``finally`` releases the same receiver
    unconditionally — an exception in the window between the inner
    release and the next acquire makes the ``finally`` release a lock
    the frame no longer holds, corrupting the semaphore count for
    every other process.  Prefer ``with lock:``; a hand-over-hand
    pattern must guard its ``finally`` release with a held-flag.

``RL603``
    A spawned-worker entry point that will not survive the pickle into
    the child process: ``Process(...)``/``Thread(...)`` with a
    ``target=`` that is a lambda, a nested function, or a bound
    method, or a lambda anywhere in ``args=``.  Spawn-context workers
    rebuild their arguments by pickling; anything closure-captured
    dies at the boundary, on some platforms only at runtime.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.cfg import STMT, WITH_ENTER, WITH_EXIT, CFGNode, build_cfg, own_exprs
from repro.lint.engine import ClassInfo, FileCtx, Finding, LintContext, Rule

#: RL601 applies to classes owning both of these attributes
_SHARED_SHAPE = ("shm", "locks")

#: methods where the object is not yet shared with other processes
_PREPUBLICATION = frozenset({"__init__", "__setstate__", "__getstate__"})

#: spawn constructors worth checking for picklability
_SPAWNERS = frozenset({"Process", "Thread", "Pool"})


def _assigned_attrs(ci: ClassInfo) -> Set[str]:
    out: Set[str] = set(ci.attr_heads)
    for meth in ci.methods.values():
        for node in ast.walk(meth):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        out.add(tgt.attr)
    return out


def _is_buffer_expr(expr: ast.expr, aliases: Set[str]) -> bool:
    """``self.shm.buf`` or a local name bound from it."""
    if isinstance(expr, ast.Name):
        return expr.id in aliases
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "buf"
        and isinstance(expr.value, ast.Attribute)
        and expr.value.attr == "shm"
        and isinstance(expr.value.value, ast.Name)
        and expr.value.value.id == "self"
    )


def _buffer_aliases(fn: ast.FunctionDef) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_buffer_expr(node.value, out | set()):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
    return out


def _lockish(expr: ast.expr) -> bool:
    try:
        return "lock" in ast.unparse(expr).lower()
    except Exception:  # pragma: no cover - unparse of exotic nodes
        return False


def _lock_delta(node: CFGNode) -> int:
    """Gen/kill for the LockHeld analysis at one CFG node."""
    if node.kind == WITH_ENTER:
        return sum(
            1 for item in node.stmt.items if _lockish(item.context_expr)
        )
    if node.kind == WITH_EXIT:
        return -sum(
            1 for item in node.stmt.items if _lockish(item.context_expr)
        )
    if node.kind != STMT:
        return 0
    delta = 0
    for expr in own_exprs(node):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr == "acquire":
                    delta += 1
                elif sub.func.attr == "release":
                    delta -= 1
    return delta


class LockedBufferRule(Rule):
    code = "RL601"
    name = "unlocked-shared-buffer"
    summary = "shared-memory buffer access not dominated by the stripe lock"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        from repro.lint.dataflow import unlocked_at

        for name in sorted(ctx.index.by_name):
            for ci in ctx.index.by_name[name]:
                if ci.rel != fctx.rel:
                    continue
                attrs = _assigned_attrs(ci)
                if not all(a in attrs for a in _SHARED_SHAPE):
                    continue
                for mname in sorted(ci.methods):
                    if mname in _PREPUBLICATION:
                        continue
                    fn = ci.methods[mname]
                    if isinstance(fn, ast.AsyncFunctionDef):
                        continue
                    aliases = _buffer_aliases(fn)
                    cfg = build_cfg(fn)
                    accesses: Dict[int, ast.AST] = {}
                    for node in cfg.nodes:
                        for expr in own_exprs(node):
                            for sub in ast.walk(expr):
                                if isinstance(sub, ast.Subscript) and _is_buffer_expr(
                                    sub.value, aliases
                                ):
                                    accesses.setdefault(node.idx, sub)
                    if not accesses:
                        continue
                    for idx in sorted(unlocked_at(cfg, _lock_delta, accesses)):
                        yield fctx.finding(
                            self.code,
                            accesses[idx],
                            f"{ci.name}.{mname} touches the shared buffer "
                            "without certainly holding a stripe lock — "
                            "cross-process reads/writes of shm.buf are "
                            "unordered without it",
                        )


def _call_text(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover
        return ""


def _releases_in(stmts: Sequence[ast.stmt], recv: str, unconditional: bool) -> bool:
    """Whether ``stmts`` contain ``<recv>.release()``.

    ``unconditional=True`` looks only at top-level ``Expr`` statements
    (a release guarded by ``if held:`` does not count); otherwise the
    whole subtree is searched.
    """
    if unconditional:
        pool: List[ast.AST] = [
            s.value for s in stmts if isinstance(s, ast.Expr)
        ]
    else:
        pool = [n for s in stmts for n in ast.walk(s)]
    for node in pool:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
            and _call_text(node.func.value) == recv
        ):
            return True
    return False


def _enclosing_stmt(fctx: FileCtx, node: ast.AST) -> Optional[ast.stmt]:
    cur: Optional[ast.AST] = node
    while cur is not None and not isinstance(cur, ast.stmt):
        cur = fctx.parent(cur)
    return cur


def _block_of(fctx: FileCtx, stmt: ast.stmt) -> Optional[List[ast.stmt]]:
    parent = fctx.parent(stmt)
    if parent is None:
        return None
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(parent, attr, None)
        if isinstance(block, list) and stmt in block:
            return block
    return None


class ReleaseSafeAcquireRule(Rule):
    code = "RL602"
    name = "release-safe-acquire"
    summary = "manual acquire()/release() not exception-safe"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(fctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr == "acquire":
                yield from self._check_acquire(fctx, node)
            elif node.func.attr == "release":
                yield from self._check_release(fctx, node)

    def _enclosing_trys(
        self, fctx: FileCtx, node: ast.AST
    ) -> Iterator[Tuple[ast.Try, bool]]:
        """(try, node_is_in_body) for each enclosing try, inner first."""
        cur: ast.AST = node
        for anc in fctx.ancestors(node):
            if isinstance(anc, ast.Try):
                # cur is a direct child of anc here (parent links), so
                # block membership is an identity check
                in_body = any(cur is s for s in anc.body + anc.orelse)
                yield anc, in_body
            cur = anc

    def _check_acquire(self, fctx: FileCtx, call: ast.Call) -> Iterator[Finding]:
        recv = _call_text(call.func.value)
        # (a) inside a try whose finally releases the receiver?
        for try_node, _in_body in self._enclosing_trys(fctx, call):
            if try_node.finalbody and _releases_in(
                try_node.finalbody, recv, unconditional=False
            ):
                return
        # (b) immediately followed by such a try (assignments may intervene)?
        stmt = _enclosing_stmt(fctx, call)
        block = _block_of(fctx, stmt) if stmt is not None else None
        if block is not None:
            for nxt in block[block.index(stmt) + 1 :]:
                if isinstance(nxt, (ast.Assign, ast.AnnAssign)):
                    continue
                if (
                    isinstance(nxt, ast.Try)
                    and nxt.finalbody
                    and _releases_in(nxt.finalbody, recv, unconditional=False)
                ):
                    return
                break
        yield fctx.finding(
            self.code,
            call,
            f"{recv}.acquire() is not release-safe — no try/finally (or "
            "with-block) guarantees the release on exception paths; a "
            "leaked stripe lock deadlocks every sibling claimer",
        )

    def _check_release(self, fctx: FileCtx, call: ast.Call) -> Iterator[Finding]:
        recv = _call_text(call.func.value)
        for try_node, in_body in self._enclosing_trys(fctx, call):
            if not in_body or not try_node.finalbody:
                continue
            if _releases_in(try_node.finalbody, recv, unconditional=True):
                yield fctx.finding(
                    self.code,
                    call,
                    f"{recv}.release() inside a try whose finally also "
                    f"releases {recv} unconditionally — an exception in the "
                    "window releases a lock this frame no longer holds and "
                    "corrupts the semaphore count; guard the finally "
                    "release with a held-flag",
                )
                return


class PicklableWorkerRule(Rule):
    code = "RL603"
    name = "picklable-worker-target"
    summary = "spawned-worker target/args will not survive pickling"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(fctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else ""
            )
            if fname not in _SPAWNERS:
                continue
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "target"), None
            )
            if target is None:
                continue
            yield from self._check_target(fctx, node, target)
            for kw in node.keywords:
                if kw.arg == "args" or kw.arg == "kwargs":
                    for sub in ast.walk(kw.value):
                        if isinstance(sub, ast.Lambda):
                            yield fctx.finding(
                                self.code,
                                sub,
                                "lambda in spawned-worker args — the spawn "
                                "context pickles arguments into the child, "
                                "and lambdas do not pickle",
                            )

    def _check_target(
        self, fctx: FileCtx, call: ast.Call, target: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Lambda):
            yield fctx.finding(
                self.code,
                target,
                "lambda as spawned-worker target — spawn-context workers "
                "import their target by qualified name; use a module-level "
                "function",
            )
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield fctx.finding(
                self.code,
                target,
                "bound method as spawned-worker target — pickling it drags "
                "the whole instance across the spawn boundary; use a "
                "module-level function taking the state it needs",
            )
            return
        if isinstance(target, ast.Name):
            for anc in fctx.ancestors(call):
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for sub in ast.walk(anc):
                        if (
                            isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and sub is not anc
                            and sub.name == target.id
                        ):
                            yield fctx.finding(
                                self.code,
                                target,
                                f"nested function {target.id!r} as "
                                "spawned-worker target — it is not "
                                "importable from the child process; move it "
                                "to module level",
                            )
                            return
                    break


LOCK_RULES = (
    LockedBufferRule(),
    ReleaseSafeAcquireRule(),
    PicklableWorkerRule(),
)
