"""RL1xx — determinism rules.

The simulator's exploration and replay stack (``repro.core.explore``,
``repro.sim.replay``) assumes a *bit-for-bit deterministic* simulation:
the same command log must produce the same trace, the same message ids
and the same value-canonical fingerprints regardless of
``PYTHONHASHSEED``, wall-clock time or interpreter address layout.
These rules enforce the three classic ways Python code breaks that:

``RL101``
    Wall-clock reads (``time.time``, ``datetime.now``, ...).  Simulated
    time is logical (:mod:`repro.sim.clock`); a wall-clock read makes a
    run irreproducible by construction.

``RL102``
    The process-global RNG (``random.random()``, ``random.shuffle``,
    ``numpy.random.<fn>``).  Randomized components must own a seeded
    ``random.Random(seed)`` / ``default_rng(seed)`` instance, as
    :class:`repro.sim.scheduler.RandomScheduler` does — the global RNG
    is shared mutable state whose draw order depends on unrelated code.

``RL103``
    ``id()`` in a hash- or order-sensitive position (dict key, set
    element, ``hash()`` argument, ``key=id`` sort key).  CPython ids are
    address-dependent: they vary run to run, so any container keyed on
    them iterates — and serializes — differently each run.

``RL110``
    Iterating a hash-ordered container (``set``/``frozenset``) into an
    order-sensitive sink — a send, an ``append``, a ``tuple``/``list``
    materialization, a dict insertion — without ``sorted(...)``.  String
    hashing is randomized per interpreter run, so set iteration order is
    not reproducible; if it reaches message construction or emission
    order, trace replay and fingerprints silently diverge.  Iteration
    into order-*insensitive* consumers (``sum``, ``max``, ``any``,
    ``all``, another set, membership tests) is fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    ClassInfo,
    FileCtx,
    Finding,
    LintContext,
    Rule,
    annotation_head,
)

WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "localtime",
        "gmtime",
        "asctime",
        "ctime",
    }
)
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: ``random.<fn>()`` calls that are fine: constructing an owned,
#: seedable generator object.
RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

SET_HEADS = frozenset({"Set", "set", "FrozenSet", "frozenset", "AbstractSet", "MutableSet"})

#: call targets whose consumption of an iterable is order-insensitive
ORDER_INSENSITIVE_CALLS = frozenset(
    {
        "set",
        "frozenset",
        "sorted",
        "sum",
        "max",
        "min",
        "any",
        "all",
        "len",
        "Counter",
    }
)

#: method names that mutate an ordered container in-place
ORDERED_MUTATORS = frozenset({"append", "extend", "insert", "appendleft", "push"})

SEND_METHODS = frozenset({"send", "queue_send"})


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class WallClockRule(Rule):
    code = "RL101"
    name = "wall-clock"
    summary = "wall-clock read in simulation code"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        # names imported directly: ``from time import time`` etc.
        direct: Set[str] = set()
        for node in ast.walk(fctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    direct.update(
                        a.asname or a.name
                        for a in node.names
                        if a.name in WALL_CLOCK_TIME_FNS
                    )
        for node in ast.walk(fctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in direct:
                yield fctx.finding(
                    self.code,
                    node,
                    f"wall-clock call {func.id}() — simulated time must come "
                    "from the logical clock (repro.sim.clock)",
                )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "time"
                    and func.attr in WALL_CLOCK_TIME_FNS
                ):
                    yield fctx.finding(
                        self.code,
                        node,
                        f"wall-clock call time.{func.attr}() — simulated time "
                        "must come from the logical clock (repro.sim.clock)",
                    )
                elif func.attr in WALL_CLOCK_DATETIME_FNS and (
                    (isinstance(base, ast.Name) and base.id in ("datetime", "date"))
                    or (
                        isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date")
                    )
                ):
                    yield fctx.finding(
                        self.code,
                        node,
                        f"wall-clock call datetime {func.attr}() — executions "
                        "must not observe real time",
                    )


class GlobalRandomRule(Rule):
    code = "RL102"
    name = "global-random"
    summary = "unseeded process-global RNG"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(fctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name) and base.id == "random":
                if func.attr not in RANDOM_OK:
                    yield fctx.finding(
                        self.code,
                        node,
                        f"random.{func.attr}() uses the process-global RNG; "
                        "own a seeded random.Random(seed) instance instead",
                    )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("np", "numpy")
                and func.attr != "default_rng"
            ):
                yield fctx.finding(
                    self.code,
                    node,
                    f"numpy.random.{func.attr}() uses the global RNG; use "
                    "numpy.random.default_rng(seed)",
                )


class IdHashRule(Rule):
    code = "RL103"
    name = "id-in-hash-position"
    summary = "id() in a hash- or order-sensitive position"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(fctx.tree):
            if isinstance(node, ast.Call):
                # sorted(..., key=id) / min(..., key=id) / max(..., key=id)
                if _call_name(node.func) in ("sorted", "min", "max", "list.sort", "sort"):
                    for kw in node.keywords:
                        if (
                            kw.arg == "key"
                            and isinstance(kw.value, ast.Name)
                            and kw.value.id == "id"
                        ):
                            yield fctx.finding(
                                self.code,
                                kw.value,
                                "key=id sorts by memory address — ordering "
                                "varies run to run",
                            )
                if not (
                    isinstance(node.func, ast.Name) and node.func.id == "id"
                ):
                    continue
                # an id(...) call: inspect where its value flows
                for anc in fctx.ancestors(node):
                    if isinstance(anc, ast.stmt):
                        break
                    if isinstance(anc, (ast.Set, ast.SetComp)):
                        yield fctx.finding(
                            self.code,
                            node,
                            "id() as a set element — membership and iteration "
                            "depend on memory addresses",
                        )
                        break
                    if isinstance(anc, ast.Subscript) and node in ast.walk(anc.slice):
                        yield fctx.finding(
                            self.code,
                            node,
                            "id() as a container key — keys vary run to run",
                        )
                        break
                    if isinstance(anc, ast.Dict) and any(
                        k is not None and node in ast.walk(k) for k in anc.keys
                    ):
                        yield fctx.finding(
                            self.code,
                            node,
                            "id() as a dict key — keys vary run to run",
                        )
                        break
                    if (
                        isinstance(anc, ast.Call)
                        and isinstance(anc.func, ast.Name)
                        and anc.func.id == "hash"
                    ):
                        yield fctx.finding(
                            self.code, node, "hash(id(...)) is address-dependent"
                        )
                        break


# --------------------------------------------------------------------------
# RL110 — hash-ordered iteration
# --------------------------------------------------------------------------


class _FunctionTaint:
    """Flow-insensitive 'is this expression hash-ordered?' oracle.

    Hash-ordered means: iterating it yields elements in hash-table
    order (a ``set``/``frozenset``), which under randomized string
    hashing differs between interpreter runs.  Dicts are insertion-
    ordered and therefore *not* hash-ordered — but a dict *filled while
    iterating a set* inherits the taint (tracked through local
    assignments inside tainted loops).
    """

    def __init__(
        self,
        func: ast.FunctionDef,
        owner: Optional[ClassInfo],
        ctx: LintContext,
    ):
        self.func = func
        self.owner = owner
        self.ctx = ctx
        self.param_class: Dict[str, str] = {}
        self.tainted_names: Set[str] = set()
        args = list(func.args.posonlyargs) + list(func.args.args) + list(
            func.args.kwonlyargs
        )
        for a in args:
            head = annotation_head(a.annotation)
            if head in SET_HEADS:
                self.tainted_names.add(a.arg)
            elif head:
                self.param_class[a.arg] = head
        # flow-insensitive pass: any assignment of a hash-ordered value
        # taints the name for the whole function (iterate to fixpoint so
        # chains like a = set(); b = a propagate)
        for _ in range(4):
            changed = False
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and self.is_hash_ordered(node.value):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name) and tgt.id not in self.tainted_names:
                            self.tainted_names.add(tgt.id)
                            changed = True
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if (
                        annotation_head(node.annotation) in SET_HEADS
                        and node.target.id not in self.tainted_names
                    ):
                        self.tainted_names.add(node.target.id)
                        changed = True
            if not changed:
                break

    # -- classification ----------------------------------------------------

    def _attr_head(self, value: ast.expr, attr: str) -> str:
        index = self.ctx.index
        if isinstance(value, ast.Name):
            if value.id == "self" and self.owner is not None:
                return index.attr_head(self.owner, attr)
            cls_name = self.param_class.get(value.id, "")
            if cls_name:
                ci = index.resolve(cls_name)
                if ci is not None:
                    return index.attr_head(ci, attr)
        return ""

    def _return_head(self, func: ast.expr) -> str:
        """Annotation head of the return type of a resolvable call target."""
        index = self.ctx.index
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.owner is not None
        ):
            found = index.find_method(self.owner, func.attr)
            if found is not None:
                return annotation_head(found[1].returns)
        return ""

    def is_hash_ordered(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted_names
        if isinstance(expr, ast.Attribute):
            return self._attr_head(expr.value, expr.attr) in SET_HEADS
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_hash_ordered(expr.left) or self.is_hash_ordered(expr.right)
        if isinstance(expr, ast.Call):
            name = _call_name(expr.func)
            if name in ("set", "frozenset"):
                return True
            if name == "sorted":
                return False
            if name in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ) and isinstance(expr.func, ast.Attribute):
                return self.is_hash_ordered(expr.func.value)
            head = self._return_head(expr.func)
            if head in SET_HEADS:
                return True
        return False


def _iter_functions(
    fctx: FileCtx, ctx: LintContext
) -> Iterator[Tuple[ast.FunctionDef, Optional[ClassInfo]]]:
    """Every function in the file, paired with its owning class (if any)."""
    index = ctx.index
    for node in ast.walk(fctx.tree):
        if isinstance(node, ast.FunctionDef):
            owner: Optional[ClassInfo] = None
            parent = fctx.parent(node)
            if isinstance(parent, ast.ClassDef):
                owner = index.resolve(parent.name)
                if owner is not None and owner.rel != fctx.rel:
                    # same-named class in another file: prefer exact match
                    for cand in index.by_name.get(parent.name, []):
                        if cand.rel == fctx.rel:
                            owner = cand
                            break
            yield node, owner


def _body_has_ordered_sink(body: List[ast.stmt], ctx: LintContext) -> Optional[str]:
    """If the loop body feeds an order-sensitive sink, name it."""
    payload_names = {ci.name for ci in ctx.index.payload_classes()}
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in SEND_METHODS:
                    return f"{name}() (message emission order)"
                if name in ORDERED_MUTATORS:
                    return f".{name}() on an ordered container"
                if name in payload_names:
                    return f"{name}(...) (message construction)"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript):
                        return "container insertion (insertion order escapes)"
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yield (element order escapes)"
    return None


class HashOrderIterationRule(Rule):
    code = "RL110"
    name = "hash-ordered-iteration"
    summary = "unsorted set iteration feeding an order-sensitive sink"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        for func, owner in _iter_functions(fctx, ctx):
            taint = _FunctionTaint(func, owner, ctx)
            yield from self._check_function(fctx, ctx, func, taint)

    def _check_function(
        self,
        fctx: FileCtx,
        ctx: LintContext,
        func: ast.FunctionDef,
        taint: _FunctionTaint,
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            # materializations: tuple(s) / list(s) of a hash-ordered s
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if (
                    name in ("tuple", "list")
                    and len(node.args) == 1
                    and not node.keywords
                    and taint.is_hash_ordered(node.args[0])
                ):
                    yield fctx.finding(
                        self.code,
                        node,
                        f"{name}() over a set materializes hash order; wrap "
                        "the set in sorted(...)",
                    )
            elif isinstance(node, ast.For) and taint.is_hash_ordered(node.iter):
                sink = _body_has_ordered_sink(node.body, ctx)
                if sink is not None:
                    yield fctx.finding(
                        self.code,
                        node.iter,
                        "iterating a set in hash order into an order-sensitive "
                        f"sink [{sink}]; iterate sorted(...) instead",
                    )
                    # a dict/list filled by this loop inherits the taint
                    for stmt in node.body:
                        for sub in ast.walk(stmt):
                            if isinstance(sub, ast.Assign):
                                for tgt in sub.targets:
                                    if isinstance(tgt, ast.Subscript) and isinstance(
                                        tgt.value, ast.Name
                                    ):
                                        taint.tainted_names.add(tgt.value.id)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                hot = [
                    gen
                    for gen in node.generators
                    if taint.is_hash_ordered(gen.iter)
                ]
                if not hot:
                    continue
                parent = fctx.parent(node)
                if (
                    isinstance(parent, ast.Call)
                    and node in parent.args
                    and _call_name(parent.func) in ORDER_INSENSITIVE_CALLS
                ):
                    continue
                if isinstance(node, ast.GeneratorExp) and isinstance(
                    parent, ast.Call
                ) and _call_name(parent.func) in ("join",):
                    yield fctx.finding(
                        self.code,
                        node,
                        "join() over a set concatenates in hash order; use "
                        "sorted(...)",
                    )
                    continue
                kind = {
                    ast.ListComp: "list comprehension",
                    ast.GeneratorExp: "generator expression",
                    ast.DictComp: "dict comprehension",
                }[type(node)]
                yield fctx.finding(
                    self.code,
                    node,
                    f"{kind} over a set preserves hash order; iterate "
                    "sorted(...) or feed an order-insensitive consumer",
                )


DETERMINISM_RULES = (
    WallClockRule(),
    GlobalRandomRule(),
    IdHashRule(),
    HashOrderIterationRule(),
)
