"""RL4xx — simulator purity rules.

The executor's configuration machinery (snapshot / restore /
fingerprint, :mod:`repro.sim.executor`) is sound only if *all* mutable
state lives in process attributes and the network, and all communication
flows through the :class:`~repro.sim.process.StepContext` the executor
hands to each step.  State smuggled through module globals would survive
``restore()``; messages injected around the StepContext would bypass the
one-message-per-neighbour rule, the trace and the replay log.

``RL401``
    A :class:`~repro.sim.process.Process` method mutates a module-level
    container or declares ``global``/writes module state.  Such state is
    invisible to snapshots: a restored branch would observe leftovers
    from a future the exploration engine believes it rewound.

``RL402``
    Protocol or analysis code constructs a raw
    :class:`~repro.sim.messages.Message` or touches the network's
    buffers (``in_transit`` / ``income`` / ``post`` / ``drain_income``)
    directly.  Messages are minted only by the executor's ``step`` —
    that is what makes ``msg_id``/``link_seq`` addressing and replay
    coherent.

``RL403``
    A ``.send(...)`` whose receiver is not the step's ``StepContext``
    (nor ``queue_send``, the outbox-aware wrapper).  All sends go
    through the capability object so the at-most-one-message-per-
    neighbour rule is enforced in one place.

``RL404``
    A Process method mutates a received payload (a parameter annotated
    with a Payload type, or anything reached through ``msg.payload``).
    Messages are immutable once sent — links "do not modify messages" —
    and payload objects are shared by reference with the network and
    the trace, so in-place mutation corrupts history.

``RL405``
    A raw ``sim.step(...)`` / ``sim.deliver(...)`` /
    ``sim.deliver_msg(...)`` outside the exploration engine and the sim
    core.  Schedule choices belong to :mod:`repro.engine` (via
    ``enabled_events`` and ``Event.apply``) so the seen-set, the
    partial-order reduction and the counters all observe the same moves;
    ad-hoc driving elsewhere silently forks the schedule vocabulary.
    The theorem constructions (:mod:`repro.core.constructions`) are the
    one deliberate exception: σ_old/σ_new *are* hand-built schedules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    ClassInfo,
    FileCtx,
    Finding,
    LintContext,
    Rule,
    annotation_head,
)

#: modules whose job *is* minting messages / touching buffers
SIM_CORE_MODULES = (
    "repro.sim.executor",
    "repro.sim.network",
    "repro.sim.messages",
    "repro.sim.trace",
    "repro.sim.replay",
    "repro.sim.adversaries",
    "repro.sim.scheduler",
    "repro.sim.events",
)

#: modules whose *purpose* is authoring schedules move by move: the
#: exploration engine itself, and the paper's σ_old/σ_new constructions
#: (Lemma 1 builds one specific adversarial schedule by hand — routing
#: it through the engine would obscure the proof it transcribes).
SCHEDULE_AUTHORITIES = (
    "repro.engine",
    "repro.engine.core",
    "repro.engine.parallel",
    "repro.core.constructions",
)

#: the Simulation methods that advance the schedule by one move
SCHEDULE_MOVES = frozenset({"step", "deliver", "deliver_msg"})

MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "remove",
        "discard",
        "clear",
        "appendleft",
    }
)

NETWORK_INTERNALS = frozenset({"in_transit", "income", "post", "drain_income", "link_counts"})


def _module_of(fctx: FileCtx) -> str:
    from repro.lint.engine import _module_name

    return _module_name(fctx.rel)


def _process_classes(fctx: FileCtx, ctx: LintContext) -> List[ClassInfo]:
    out: List[ClassInfo] = []
    for name in sorted(ctx.index.by_name):
        for ci in ctx.index.by_name[name]:
            if ci.rel == fctx.rel and ctx.index.is_subclass(ci, "Process"):
                out.append(ci)
    return out


def _module_level_mutables(tree: ast.Module) -> Set[str]:
    """Names bound at module scope to mutable containers."""
    out: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "dict", "set", "deque", "defaultdict")
            )
            if mutable:
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        out.add(tgt.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if annotation_head(stmt.annotation) in (
                "List",
                "Dict",
                "Set",
                "dict",
                "list",
                "set",
                "DefaultDict",
                "Deque",
            ):
                out.add(stmt.target.id)
    return out


class ModuleGlobalMutationRule(Rule):
    code = "RL401"
    name = "module-global-mutation"
    summary = "Process method mutates module-global state"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        mutables = _module_level_mutables(fctx.tree)
        for ci in _process_classes(fctx, ctx):
            for mname in sorted(ci.methods):
                meth = ci.methods[mname]
                for node in ast.walk(meth):
                    if isinstance(node, ast.Global):
                        yield fctx.finding(
                            self.code,
                            node,
                            f"{ci.name}.{mname} declares global — module "
                            "state is outside snapshots and breaks "
                            "RC(C, α) restore",
                        )
                    elif (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in MUTATOR_METHODS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in mutables
                    ):
                        yield fctx.finding(
                            self.code,
                            node,
                            f"{ci.name}.{mname} mutates module-level "
                            f"{node.func.value.id!r} — process state must "
                            "live in attributes the snapshot can capture",
                        )
                    elif isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for tgt in targets:
                            if (
                                isinstance(tgt, ast.Subscript)
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id in mutables
                            ):
                                yield fctx.finding(
                                    self.code,
                                    node,
                                    f"{ci.name}.{mname} writes into module-"
                                    f"level {tgt.value.id!r} — invisible to "
                                    "snapshots",
                                )


class RawMessageRule(Rule):
    code = "RL402"
    name = "raw-message"
    summary = "Message minted / network buffers touched outside the sim core"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        module = _module_of(fctx)
        if module in SIM_CORE_MODULES:
            return
        for node in ast.walk(fctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Message"
            ):
                yield fctx.finding(
                    self.code,
                    node,
                    "raw Message(...) constructed outside the sim core — "
                    "only Simulation.step mints messages (msg_id/link_seq "
                    "addressing and replay depend on it)",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in NETWORK_INTERNALS
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "network"
            ):
                yield fctx.finding(
                    self.code,
                    node,
                    f"direct access to network.{node.attr} outside the sim "
                    "core — deliveries and sends must go through the "
                    "executor",
                )


class SendOutsideContextRule(Rule):
    code = "RL403"
    name = "send-outside-context"
    summary = "send() not routed through the StepContext"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        module = _module_of(fctx)
        if module in SIM_CORE_MODULES:
            return
        for ci in _process_classes(fctx, ctx):
            for mname in sorted(ci.methods):
                meth = ci.methods[mname]
                ok_receivers = {"ctx"} | {
                    a.arg
                    for a in meth.args.args
                    if annotation_head(a.annotation) == "StepContext"
                }
                for node in ast.walk(meth):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "send"
                    ):
                        continue
                    recv = node.func.value
                    if isinstance(recv, ast.Name) and recv.id in ok_receivers:
                        continue
                    yield fctx.finding(
                        self.code,
                        node,
                        f"{ci.name}.{mname} calls .send() on something other "
                        "than the StepContext — the at-most-one-message-per-"
                        "neighbour rule is enforced only there",
                    )


class PayloadMutationRule(Rule):
    code = "RL404"
    name = "payload-mutation"
    summary = "received payload mutated in place"

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        payload_names = {ci.name for ci in ctx.index.payload_classes()} | {
            "Payload",
            "Message",
        }
        for ci in _process_classes(fctx, ctx):
            for mname in sorted(ci.methods):
                meth = ci.methods[mname]
                tainted: Set[str] = {
                    a.arg
                    for a in meth.args.args
                    if annotation_head(a.annotation) in payload_names
                }
                # names bound from <msg>.payload
                for node in ast.walk(meth):
                    if isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.Attribute
                    ):
                        if (
                            node.value.attr == "payload"
                            and isinstance(node.value.value, ast.Name)
                            and node.value.value.id in tainted
                        ):
                            for tgt in node.targets:
                                if isinstance(tgt, ast.Name):
                                    tainted.add(tgt.id)
                if not tainted:
                    continue
                yield from self._mutations(fctx, ci, mname, meth, tainted)

    def _mutations(
        self,
        fctx: FileCtx,
        ci: ClassInfo,
        mname: str,
        meth: ast.FunctionDef,
        tainted: Set[str],
    ) -> Iterator[Finding]:
        def rooted_in_tainted(expr: ast.expr) -> bool:
            while isinstance(expr, (ast.Attribute, ast.Subscript)):
                expr = expr.value
            return isinstance(expr, ast.Name) and expr.id in tainted

        for node in ast.walk(meth):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if isinstance(
                        tgt, (ast.Attribute, ast.Subscript)
                    ) and rooted_in_tainted(tgt):
                        yield fctx.finding(
                            self.code,
                            node,
                            f"{ci.name}.{mname} mutates a received payload — "
                            "messages are immutable once sent; copy into "
                            "server state instead",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and isinstance(node.func.value, (ast.Attribute, ast.Subscript))
                and rooted_in_tainted(node.func.value)
            ):
                yield fctx.finding(
                    self.code,
                    node,
                    f"{ci.name}.{mname} calls .{node.func.attr}() on a "
                    "received payload's state — messages are immutable once "
                    "sent",
                )


class RawScheduleRule(Rule):
    code = "RL405"
    name = "raw-schedule"
    summary = "raw sim.step()/sim.deliver() outside the exploration engine"

    @staticmethod
    def _sim_receiver(expr: ast.expr) -> bool:
        """``sim.step(...)``, ``self.sim.step(...)``, ``system.sim...``."""
        if isinstance(expr, ast.Name):
            return expr.id == "sim"
        if isinstance(expr, ast.Attribute):
            return expr.attr == "sim"
        return False

    def check_file(self, fctx: FileCtx, ctx: LintContext) -> Iterator[Finding]:
        module = _module_of(fctx)
        if module in SIM_CORE_MODULES or module in SCHEDULE_AUTHORITIES:
            return
        for node in ast.walk(fctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SCHEDULE_MOVES
                and self._sim_receiver(node.func.value)
            ):
                yield fctx.finding(
                    self.code,
                    node,
                    f"raw sim.{node.func.attr}() outside the exploration "
                    "engine — schedule moves go through repro.engine "
                    "(enabled_events / Event.apply) or System.execute so "
                    "seen-sets, POR and counters see the same vocabulary",
                )


PURITY_RULES = (
    ModuleGlobalMutationRule(),
    RawMessageRule(),
    SendOutsideContextRule(),
    PayloadMutationRule(),
    RawScheduleRule(),
)
