"""A worklist dataflow framework over :mod:`repro.lint.cfg` graphs.

:func:`solve` is the generic fixed-point engine: give it a CFG and an
:class:`Analysis` (direction, boundary value, join, transfer) and it
iterates to convergence.  The two analyses the flow-sensitive rule
families actually run are provided here so rules stay declarative:

* :class:`ExitExposure` — backward *may* analysis: from which nodes can
  the normal ``exit`` be reached **without** passing through a blocker
  node?  RL501 instantiates blockers = mark nodes; a mutation node with
  an exposed successor has a path to return that misses ``mark_dirty``.
  Explicit ``raise`` exits are deliberately not exposure sources: an
  aborting path hands no stale snapshot to anyone.
* :class:`LockHeld` — forward *must* analysis over a small gen/kill
  vocabulary: how many lock handles are certainly held at each point?
  RL601 instantiates gens = lock acquires / lock ``with`` entries and
  kills = releases / ``with`` exits, then flags shared-buffer accesses
  whose in-state holds nothing.

Both lattices are tiny (bool / small int), so convergence is a handful
of passes even on the largest methods in the tree.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, Iterable, Optional, Set, Tuple, TypeVar

from repro.lint.cfg import CFG, CFGNode

V = TypeVar("V")

FORWARD = "forward"
BACKWARD = "backward"


class Analysis(Generic[V]):
    """One dataflow problem: direction, lattice and transfer."""

    direction: str = FORWARD

    def boundary(self) -> V:
        """Value at the boundary node (entry forward, exits backward)."""
        raise NotImplementedError

    def initial(self) -> V:
        """The optimistic starting value for every other node (⊥)."""
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        raise NotImplementedError

    def transfer(self, node: CFGNode, value: V) -> V:
        return value


def solve(cfg: CFG, analysis: Analysis[V]) -> Dict[int, Tuple[V, V]]:
    """Run ``analysis`` to fixed point; ``node.idx -> (in, out)``.

    Forward: *in* joins predecessors' *out*; *out* = transfer(node, in).
    Backward the roles flip (in = transfer over joined successor ins),
    but the returned pair keeps the same orientation — ``(toward
    entry, toward exit)`` — so callers index it uniformly.
    """
    forward = analysis.direction == FORWARD
    values: Dict[int, V] = {n.idx: analysis.initial() for n in cfg.nodes}
    if forward:
        boundary_nodes = [cfg.entry]
    else:
        boundary_nodes = [cfg.exit, cfg.raise_exit]

    work = deque(cfg.nodes)
    in_work: Set[int] = {n.idx for n in cfg.nodes}
    while work:
        node = work.popleft()
        in_work.discard(node.idx)
        sources = node.preds if forward else node.succs
        if node in boundary_nodes:
            incoming = analysis.boundary()
            for s in sources:
                incoming = analysis.join(incoming, values[s.idx])
        elif sources:
            it = iter(sources)
            incoming = values[next(it).idx]
            for s in it:
                incoming = analysis.join(incoming, values[s.idx])
        else:
            incoming = analysis.initial()
        new = analysis.transfer(node, incoming)
        if new != values[node.idx]:
            values[node.idx] = new
            for dep in node.succs if forward else node.preds:
                if dep.idx not in in_work:
                    in_work.add(dep.idx)
                    work.append(dep)

    out: Dict[int, Tuple[V, V]] = {}
    for n in cfg.nodes:
        sources = n.preds if forward else n.succs
        if n in boundary_nodes:
            incoming = analysis.boundary()
            for s in sources:
                incoming = analysis.join(incoming, values[s.idx])
        elif sources:
            it = iter(sources)
            incoming = values[next(it).idx]
            for s in it:
                incoming = analysis.join(incoming, values[s.idx])
        else:
            incoming = analysis.initial()
        if forward:
            out[n.idx] = (incoming, values[n.idx])
        else:
            out[n.idx] = (values[n.idx], incoming)
    return out


# --------------------------------------------------------------------------
# exit exposure (RL501)
# --------------------------------------------------------------------------


class ExitExposure(Analysis[bool]):
    """Backward may-analysis: "can this node reach ``exit`` without
    crossing a blocker?"  A blocker node's value is forced False — the
    path is considered covered the moment it hits a mark."""

    direction = BACKWARD

    def __init__(self, blockers: Set[int]):
        self.blockers = blockers

    def boundary(self) -> bool:
        return True

    def initial(self) -> bool:
        return False

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer(self, node: CFGNode, value: bool) -> bool:
        if node.idx in self.blockers:
            return False
        return value


def exposed_nodes(cfg: CFG, blockers: Set[int]) -> Set[int]:
    """Node indices from which ``exit`` is reachable blocker-free.

    The ``raise_exit`` boundary is excluded: only normal returns expose
    stale state to the snapshot cache.  A node that *is* a blocker is
    never exposed; a mutation node is "dirty" when any of its
    *successors* is exposed (the mutation happens, then a return path
    exists that never marks).
    """
    exposure = _RaiseBlindExposure(blockers)
    sol = solve(cfg, exposure)
    return {idx for idx, (toward_entry, _toward_exit) in sol.items() if toward_entry}


class _RaiseBlindExposure(ExitExposure):
    """ExitExposure with the raise_exit boundary pinned False."""

    def transfer(self, node: CFGNode, value: bool) -> bool:
        if node.kind == "raise_exit":
            return False
        return super().transfer(node, value)


def dirty_mutations(
    cfg: CFG,
    mutation_idxs: Iterable[int],
    mark_idxs: Set[int],
) -> Set[int]:
    """The mutation nodes with an unmarked path to the normal exit.

    A mutation node's own exposure value already encodes "there is a
    path *from here on* that returns without crossing a mark" — the
    backward transfer at the node joins over its successors, so a
    mutation immediately followed by a mark on every path is clean.
    """
    exposed = exposed_nodes(cfg, mark_idxs)
    return {m for m in mutation_idxs if m in exposed}


# --------------------------------------------------------------------------
# lock tracking (RL601)
# --------------------------------------------------------------------------


class LockHeld(Analysis[Optional[int]]):
    """Forward must-analysis: the number of lock handles certainly held.

    The value is ``None`` for not-yet-reached (⊥, join identity) or a
    small int.  Join is ``min`` — a point reachable both with and
    without the lock counts as unlocked.  ``classify(node)`` returns
    +1 for an acquire-like node, -1 for a release-like node, 0
    otherwise; the count is floored at zero so an unmatched release
    cannot manufacture negative credit.
    """

    direction = FORWARD

    def __init__(self, classify: Callable[[CFGNode], int]):
        self.classify = classify

    def boundary(self) -> Optional[int]:
        return 0

    def initial(self) -> Optional[int]:
        return None

    def join(self, a: Optional[int], b: Optional[int]) -> Optional[int]:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    def transfer(self, node: CFGNode, value: Optional[int]) -> Optional[int]:
        if value is None:
            return None
        return max(0, value + self.classify(node))


def unlocked_at(
    cfg: CFG,
    classify: Callable[[CFGNode], int],
    interesting: Iterable[int],
) -> Set[int]:
    """The subset of ``interesting`` node indices whose in-state holds
    no lock on some path (must-held count is 0 or unreached)."""
    sol = solve(cfg, LockHeld(classify))
    out: Set[int] = set()
    for idx in interesting:
        held_in, _held_out = sol[idx]
        if not held_in:
            out.add(idx)
    return out
