"""A statement-level control-flow graph over stdlib ``ast``.

The flow-sensitive rule families (RL5xx dirty-tracking honesty, RL6xx
lock discipline) need to reason about *paths* — "does every path from
this mutation reach ``mark_dirty()`` before the method returns?",
"is this buffer access dominated by a lock acquire?".  This module
builds the graph those questions are asked on; the solvers live in
:mod:`repro.lint.dataflow`.

Design, deliberately modest:

* **Statement granularity.**  One node per executable statement.  A
  compound statement contributes the node for the part evaluated *at*
  that point — an ``if``/``while`` node stands for its test, a ``for``
  node for its iterator, a ``with`` node for entering its contexts —
  and its body statements get their own nodes.  Rules that classify a
  node must therefore look only at the statement's *own* expressions
  (:func:`own_exprs`), never ``ast.walk`` the whole subtree.
* **Three distinguished nodes.**  ``entry`` (before the first
  statement), ``exit`` (every normal return path), and ``raise_exit``
  (explicit ``raise`` paths).  Falling off the end of the body flows to
  ``exit``; ``return`` threads any enclosing ``finally`` bodies (and
  ``with`` exits) and then flows to ``exit``.
* **``finally`` by jump threading.**  A ``return``/``break``/
  ``continue``/``raise`` that escapes a ``try ... finally`` executes a
  *fresh copy* of the finally body on its way out, exactly like the
  interpreter does.  ``with`` blocks are treated as ``try/finally``
  sugar: a synthetic ``with_exit`` node (the ``__exit__`` call) runs on
  both the fall-through and the jump-out paths.
* **Coarse exception edges.**  Every statement inside a ``try`` body
  may raise: each body node gets an edge to every handler entry.  That
  over-approximates (a plain assignment rarely raises) in exactly the
  safe direction for the rules built on top — more paths can only make
  a must-analysis (lock held) more conservative and an exists-path
  analysis (mark missed) no worse than the interpreter allows.
  Uncaught exceptions escaping through a ``finally`` are *not*
  modelled; neither rule family draws conclusions from implicit
  exception exits.

Nested ``def``/``class``/``lambda`` bodies are opaque single nodes —
the analyses are intraprocedural; cross-method effects come from
:mod:`repro.lint.summaries`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: node kinds
ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise_exit"
STMT = "stmt"
WITH_ENTER = "with_enter"
WITH_EXIT = "with_exit"
EXCEPT = "except"


class CFGNode:
    """One node: a statement (or synthetic point) plus its edges."""

    __slots__ = ("idx", "kind", "stmt", "succs", "preds")

    def __init__(self, idx: int, kind: str, stmt: Optional[ast.stmt]):
        self.idx = idx
        self.kind = kind
        self.stmt = stmt
        self.succs: List["CFGNode"] = []
        self.preds: List["CFGNode"] = []

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"<CFGNode {self.idx} {self.kind} {tag} L{self.line}>"


class CFG:
    """The graph for one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self.add(ENTRY, None)
        self.exit = self.add(EXIT, None)
        self.raise_exit = self.add(RAISE_EXIT, None)

    def add(self, kind: str, stmt: Optional[ast.stmt]) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node

    def edge(self, a: CFGNode, b: CFGNode) -> None:
        if b not in a.succs:
            a.succs.append(b)
            b.preds.append(a)

    def stmt_nodes(self, stmt: ast.stmt) -> List[CFGNode]:
        """Every node carrying ``stmt`` (finally bodies are duplicated,
        so one source statement may own several nodes)."""
        return [n for n in self.nodes if n.stmt is stmt]


def own_exprs(node: CFGNode) -> List[ast.AST]:
    """The expressions evaluated *at* this node.

    For simple statements that is the whole statement; for compound
    statements only the header part this node stands for.  Rules must
    classify nodes through this accessor — walking ``node.stmt`` for an
    ``if`` would leak the branch bodies into the test node.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == WITH_EXIT:
        return []  # __exit__ evaluates no user expression
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []  # opaque: nested scopes are not this method's flow
    return [stmt]


# -- the builder -----------------------------------------------------------

#: cleanup-stack entries threaded by escaping jumps
_FIN_FINALLY = "finally"
_FIN_WITH = "with"


class _LoopFrame:
    __slots__ = ("head", "breaks", "depth")

    def __init__(self, head: CFGNode, depth: int):
        self.head = head
        self.breaks: List[CFGNode] = []
        self.depth = depth  # cleanup-stack depth at loop entry


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: List[_LoopFrame] = []
        #: cleanup stack, outermost first: (_FIN_FINALLY, [stmts]) or
        #: (_FIN_WITH, ast.With)
        self.cleanups: List[Tuple[str, object]] = []

    # frontier: the set of nodes whose fall-through reaches the next
    # statement.  An empty frontier means the next statement is dead.

    def seq(self, stmts: Sequence[ast.stmt], frontier: List[CFGNode]) -> List[CFGNode]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code: stop wiring
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: List[CFGNode]) -> List[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._jump_exit(stmt, frontier, self.cfg.exit)
        if isinstance(stmt, ast.Raise):
            return self._jump_exit(stmt, frontier, self.cfg.raise_exit)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, frontier)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, frontier)
        # simple statement (incl. nested def/class, treated opaquely)
        node = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, node)
        return [node]

    # -- cleanup threading -------------------------------------------------

    def _thread_cleanups(
        self, frontier: List[CFGNode], down_to: int = 0
    ) -> List[CFGNode]:
        """Run fresh copies of the cleanup stack (innermost first) down
        to depth ``down_to``, returning the post-cleanup frontier."""
        for kind, payload in reversed(self.cleanups[down_to:]):
            if not frontier:
                return frontier
            if kind == _FIN_FINALLY:
                # a fresh copy: the finally body may itself contain
                # loops/trys, built with the *outer* cleanup stack not
                # re-entered (matching CPython: a finally body's own
                # jumps do not re-run the same finally)
                saved = self.cleanups
                self.cleanups = []
                frontier = self.seq(list(payload), frontier)  # type: ignore[arg-type]
                self.cleanups = saved
            else:  # _FIN_WITH
                wexit = self.cfg.add(WITH_EXIT, payload)  # type: ignore[arg-type]
                for f in frontier:
                    self.cfg.edge(f, wexit)
                frontier = [wexit]
        return frontier

    def _jump_exit(
        self, stmt: ast.stmt, frontier: List[CFGNode], target: CFGNode
    ) -> List[CFGNode]:
        node = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, node)
        out = self._thread_cleanups([node])
        for n in out:
            self.cfg.edge(n, target)
        return []

    def _break(self, stmt: ast.stmt, frontier: List[CFGNode]) -> List[CFGNode]:
        node = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, node)
        if self.loops:
            frame = self.loops[-1]
            out = self._thread_cleanups([node], down_to=frame.depth)
            frame.breaks.extend(out)
        return []

    def _continue(self, stmt: ast.stmt, frontier: List[CFGNode]) -> List[CFGNode]:
        node = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, node)
        if self.loops:
            frame = self.loops[-1]
            out = self._thread_cleanups([node], down_to=frame.depth)
            for n in out:
                self.cfg.edge(n, frame.head)
        return []

    # -- compound statements ----------------------------------------------

    def _if(self, stmt: ast.If, frontier: List[CFGNode]) -> List[CFGNode]:
        test = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, test)
        then_out = self.seq(stmt.body, [test])
        else_out = self.seq(stmt.orelse, [test]) if stmt.orelse else [test]
        return then_out + else_out

    def _loop(self, stmt: ast.stmt, frontier: List[CFGNode]) -> List[CFGNode]:
        head = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, head)
        frame = _LoopFrame(head, depth=len(self.cleanups))
        self.loops.append(frame)
        body_out = self.seq(stmt.body, [head])  # type: ignore[attr-defined]
        for n in body_out:
            self.cfg.edge(n, head)
        self.loops.pop()
        orelse = getattr(stmt, "orelse", [])
        normal_out = self.seq(orelse, [head]) if orelse else [head]
        return normal_out + frame.breaks

    def _with(self, stmt: ast.stmt, frontier: List[CFGNode]) -> List[CFGNode]:
        enter = self.cfg.add(WITH_ENTER, stmt)
        for f in frontier:
            self.cfg.edge(f, enter)
        self.cleanups.append((_FIN_WITH, stmt))
        body_out = self.seq(stmt.body, [enter])  # type: ignore[attr-defined]
        self.cleanups.pop()
        if not body_out:
            return []
        wexit = self.cfg.add(WITH_EXIT, stmt)
        for n in body_out:
            self.cfg.edge(n, wexit)
        return [wexit]

    def _match(self, stmt: ast.Match, frontier: List[CFGNode]) -> List[CFGNode]:
        subject = self.cfg.add(STMT, stmt)
        for f in frontier:
            self.cfg.edge(f, subject)
        outs: List[CFGNode] = [subject]  # no case may match
        for case in stmt.cases:
            outs.extend(self.seq(case.body, [subject]))
        return outs

    def _try(self, stmt: ast.Try, frontier: List[CFGNode]) -> List[CFGNode]:
        # handler entries exist before the body so raise edges can land
        handler_entries = [self.cfg.add(EXCEPT, h) for h in stmt.handlers]
        if stmt.finalbody:
            self.cleanups.append((_FIN_FINALLY, stmt.finalbody))
        first = len(self.cfg.nodes)
        body_out = self.seq(stmt.body, frontier)
        body_nodes = self.cfg.nodes[first:]
        # coarse: any body statement may raise into any handler
        for bn in body_nodes:
            for he in handler_entries:
                self.cfg.edge(bn, he)
        if not body_nodes and handler_entries:
            for f in frontier:
                for he in handler_entries:
                    self.cfg.edge(f, he)
        body_out = self.seq(stmt.orelse, body_out)
        handler_out: List[CFGNode] = []
        for he, h in zip(handler_entries, stmt.handlers):
            handler_out.extend(self.seq(h.body, [he]))
        if stmt.finalbody:
            self.cleanups.pop()
        normal = body_out + handler_out
        if stmt.finalbody:
            normal = self.seq(stmt.finalbody, normal)
        return normal


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """Build the CFG for one function/method body."""
    b = _Builder()
    out = b.seq(fn.body, [b.cfg.entry])
    for n in out:
        b.cfg.edge(n, b.cfg.exit)
    return b.cfg


def iter_reachable(cfg: CFG) -> Iterator[CFGNode]:
    """Nodes reachable from entry, in a deterministic order."""
    seen = {cfg.entry.idx}
    stack = [cfg.entry]
    order: List[CFGNode] = []
    while stack:
        n = stack.pop()
        order.append(n)
        for s in n.succs:
            if s.idx not in seen:
                seen.add(s.idx)
                stack.append(s)
    order.sort(key=lambda n: n.idx)
    return iter(order)


def dump(cfg: CFG) -> str:  # pragma: no cover - debugging aid
    lines = []
    for n in cfg.nodes:
        succ = ",".join(str(s.idx) for s in n.succs)
        tag = type(n.stmt).__name__ if n.stmt is not None else "-"
        lines.append(f"{n.idx:3d} {n.kind:10s} {tag:12s} L{n.line:<4d} -> [{succ}]")
    return "\n".join(lines)
