"""Cross-module class summaries for the flow-sensitive rule families.

The RL5xx rules reason about the *dirty-tracking contract*: every
mutation of a :class:`~repro.sim.process.Process`'s or
:class:`~repro.sim.network.Network`'s state must be visible to the
snapshot cache, either because the executor bumps the version counter
around the entry point (``on_step``/``on_invoke``/anything handed a
``StepContext``) or because the method bumps it itself
(``mark_dirty()`` / ``self._version``).  Checking that intraprocedurally
requires interprocedural facts:

* which classes are dirty-tracked at all (subclass of ``Process`` or
  ``Network`` — matched by base-name chain so fixture stand-ins count —
  or anything defining ``mark_dirty``);
* which methods *mutate* ``self`` state, directly or through helper
  calls (``self._flush()`` that appends to ``self.outbox`` is a
  mutation of the caller too);
* which helpers *always mark* before returning, so a call to one
  counts as a mark at the call site;
* which methods are *covered* by the executor's own bump: the entry
  points above, closed transitively over ``self.<m>()`` calls **per
  concrete subclass** (``ServerBase.install`` has no ``ctx`` parameter,
  but every path to it goes through a covered handler of some concrete
  server, so it is covered at its defining class).

Everything here is a fixed point over those mutually recursive facts.
The lattice only grows (pure → mutates, not-always-marks →
always-marks, uncovered → covered), so iteration terminates.

Classification is *statement-level*, aligned with
:mod:`repro.lint.cfg` nodes via :func:`repro.lint.cfg.own_exprs`:
:meth:`DirtySummaries.classify` maps each CFG node of a method to
``mutation`` / ``mark`` / neither, which is exactly the input the
RL501 exposure analysis needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, STMT, build_cfg, own_exprs
from repro.lint.dataflow import exposed_nodes
from repro.lint.engine import ClassInfo, ProjectIndex, annotation_head

#: the dirty-tracked roots (simple names, so fixtures can stand them in)
DIRTY_ROOTS = ("Process", "Network")

#: methods RL501 never checks: lifecycle/serialization hooks with their
#: own rules (RL502/RL503), and the marker itself
EXCLUDED_METHODS = frozenset(
    {"__init__", "__getstate__", "__setstate__", "__reduce__", "mark_dirty", "fp_state"}
)

#: container methods that mutate their receiver in place
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "sort",
        "reverse",
    }
)

#: executor-covered entry points: the simulator bumps the counter
#: around these, so their (transitive) mutations are already visible
COVERED_ENTRY_POINTS = ("on_step", "on_invoke")


def _root_name(expr: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, else None."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_self_version(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "_version"
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


def collect_aliases(fn: ast.FunctionDef) -> Set[str]:
    """Local names that (may) alias state reachable from ``self``.

    Flow-insensitive and transitive: ``chain = self.store[k]`` makes
    ``chain`` an alias; ``for v in chain`` then makes ``v`` one too.
    Over-approximate on purpose — an alias that is never mutated costs
    nothing, a missed alias hides a mutation.
    """
    aliases: Set[str] = {"self"}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                root = _root_name(node.value)
                if root in aliases and isinstance(
                    node.value, (ast.Attribute, ast.Subscript)
                ):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name) and tgt.id not in aliases:
                            aliases.add(tgt.id)
                            changed = True
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                root = _root_name(node.iter)
                if root in aliases and isinstance(
                    node.iter, (ast.Attribute, ast.Subscript)
                ):
                    if isinstance(node.target, ast.Name) and node.target.id not in aliases:
                        aliases.add(node.target.id)
                        changed = True
    return aliases


def _self_call_names(fn: ast.FunctionDef) -> Tuple[str, ...]:
    """Names of ``self.<m>(...)`` calls, in source order, de-duplicated."""
    out: List[str] = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr not in out
        ):
            out.append(node.func.attr)
    return tuple(out)


def _is_super_receiver(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "super"
    )


def _super_call_names(fn: ast.FunctionDef) -> Tuple[str, ...]:
    """Names of ``super().<m>(...)`` calls, de-duplicated."""
    out: List[str] = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and _is_super_receiver(node.func.value)
            and node.func.attr not in out
        ):
            out.append(node.func.attr)
    return tuple(out)


def _has_ctx_param(fn: ast.FunctionDef) -> bool:
    for a in list(fn.args.args) + list(fn.args.kwonlyargs):
        if a.arg == "ctx" or annotation_head(a.annotation) == "StepContext":
            return True
    return False


@dataclass
class MethodSummary:
    """Interprocedural facts about one method, at its defining class."""

    owner: ClassInfo
    name: str
    node: ast.FunctionDef
    aliases: Set[str] = field(default_factory=set)
    self_calls: Tuple[str, ...] = ()
    super_calls: Tuple[str, ...] = ()
    #: mutates self state in its own body (helpers not counted)
    direct_mutates: bool = False
    #: mutates self state, transitively through self-calls
    mutates: bool = False
    #: every normal-return path crosses a mark (fixed point result)
    marks_always: bool = False

    @property
    def key(self) -> Tuple[str, str]:
        return (self.owner.qualname, self.name)


#: classification results for one CFG node
MUTATION = "mutation"
MARK = "mark"


class DirtySummaries:
    """The summary database for one lint run.  Build via :func:`build_summaries`."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        #: dirty-tracked classes, deterministic order
        self.dirty_classes: List[ClassInfo] = []
        #: (defining qualname, method name) -> summary
        self.methods: Dict[Tuple[str, str], MethodSummary] = {}
        #: (defining qualname, method name) pairs covered by the
        #: executor bump, unioned over every concrete subclass
        self.covered: Set[Tuple[str, str]] = set()
        self._cfgs: Dict[int, CFG] = {}

    # -- queries -----------------------------------------------------------

    def is_dirty_tracked(self, ci: ClassInfo) -> bool:
        if self.index.is_subclass(ci, DIRTY_ROOTS[0]) or self.index.is_subclass(
            ci, DIRTY_ROOTS[1]
        ):
            return True
        return self.index.find_method(ci, "mark_dirty") is not None

    def cfg_for(self, fn: ast.FunctionDef) -> CFG:
        key = id(fn)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(fn)
        return self._cfgs[key]

    def summary_for(self, ci: ClassInfo, name: str) -> Optional[MethodSummary]:
        """Resolve ``self.<name>`` from ``ci`` through its MRO."""
        found = self.index.find_method(ci, name)
        if found is None:
            return None
        def_ci, _node = found
        return self.methods.get((def_ci.qualname, name))

    def resolve_after(
        self, ci: ClassInfo, after_qualname: Optional[str], name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """``find_method`` restricted to MRO entries *after* a class —
        the static approximation of ``super().<name>`` resolution."""
        started = after_qualname is None
        for c in self.index.mro(ci):
            if not started:
                if c.qualname == after_qualname:
                    started = True
                continue
            if name in c.methods:
                return c, c.methods[name]
        return None

    def super_summary_for(
        self, owner: ClassInfo, name: str
    ) -> Optional[MethodSummary]:
        """The summary ``super().<name>`` resolves to from ``owner``."""
        found = self.resolve_after(owner, owner.qualname, name)
        if found is None:
            return None
        def_ci, _node = found
        return self.methods.get((def_ci.qualname, name))

    def is_covered(self, ci: ClassInfo, name: str) -> bool:
        return (ci.qualname, name) in self.covered

    # -- node classification ------------------------------------------------

    def classify(self, msum: MethodSummary, cfg: CFG) -> Dict[int, str]:
        """``node.idx -> MUTATION | MARK`` for one method's CFG.

        A statement that both mutates and marks (``self.buf.append(x);
        self._version += 1`` collapsed into one expression via a
        marking helper) classifies as MARK: the path is covered the
        moment the counter bumps, which is the property RL501 checks.
        """
        out: Dict[int, str] = {}
        for node in cfg.nodes:
            if node.kind != STMT or node.stmt is None:
                continue
            kind = self._classify_stmt(node, msum)
            if kind is not None:
                out[node.idx] = kind
        return out

    def _classify_stmt(self, node, msum: MethodSummary) -> Optional[str]:
        stmt = node.stmt
        aliases = msum.aliases
        is_mut = False
        is_mark = False
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for tgt in targets:
                for leaf in self._assign_leaves(tgt):
                    if _is_self_version(leaf):
                        is_mark = True
                    elif isinstance(
                        leaf, (ast.Attribute, ast.Subscript)
                    ) and _root_name(leaf) in aliases:
                        is_mut = True
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, (ast.Attribute, ast.Subscript)) and _root_name(
                    tgt
                ) in aliases:
                    is_mut = True
        # calls anywhere in the expressions this node evaluates
        for expr in own_exprs(node):
            if not isinstance(expr, ast.AST):
                continue
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if not isinstance(func, ast.Attribute):
                    continue
                recv = func.value
                if (
                    func.attr in MUTATOR_METHODS
                    and isinstance(recv, (ast.Name, ast.Attribute, ast.Subscript))
                    and _root_name(recv) in aliases
                    and not (isinstance(recv, ast.Name) and recv.id == "self")
                ):
                    is_mut = True
                elif (
                    isinstance(recv, ast.Name) and recv.id == "self"
                ) or _is_super_receiver(recv):
                    if func.attr == "mark_dirty":
                        is_mark = True
                    else:
                        if _is_super_receiver(recv):
                            callee = self.super_summary_for(msum.owner, func.attr)
                        else:
                            callee = self.summary_for(msum.owner, func.attr)
                        if callee is not None:
                            if callee.mutates and callee.marks_always:
                                is_mark = True
                            elif callee.mutates:
                                is_mut = True
                            elif callee.marks_always:
                                is_mark = True
        if is_mark:
            return MARK
        if is_mut:
            return MUTATION
        return None

    @staticmethod
    def _assign_leaves(tgt: ast.expr) -> Iterable[ast.expr]:
        """Flatten tuple/list targets to assignable leaves."""
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                yield from DirtySummaries._assign_leaves(elt)
        elif isinstance(tgt, ast.Starred):
            yield tgt.value
        else:
            yield tgt


def build_summaries(index: ProjectIndex) -> DirtySummaries:
    db = DirtySummaries(index)

    # 1. dirty-tracked classes, and the classes whose methods they can
    #    reach through self (the full MRO of every dirty class)
    reachable: Dict[str, ClassInfo] = {}
    for name in sorted(index.by_name):
        for ci in index.by_name[name]:
            if db.is_dirty_tracked(ci):
                db.dirty_classes.append(ci)
                for base in index.mro(ci):
                    reachable.setdefault(base.qualname, base)

    # 2. per-method structural facts
    for qual in sorted(reachable):
        ci = reachable[qual]
        for mname in sorted(ci.methods):
            fn = ci.methods[mname]
            if isinstance(fn, ast.AsyncFunctionDef):
                continue
            msum = MethodSummary(
                owner=ci,
                name=mname,
                node=fn,
                aliases=collect_aliases(fn),
                self_calls=_self_call_names(fn),
                super_calls=_super_call_names(fn),
            )
            db.methods[msum.key] = msum

    # 3. fixed point: mutates / marks_always feed classification which
    #    feeds them back.  Both flags only ever flip one way.
    for msum in db.methods.values():
        msum.direct_mutates = _any_mutation(db, msum)
        msum.mutates = msum.direct_mutates
    changed = True
    while changed:
        changed = False
        for msum in db.methods.values():
            if not msum.mutates:
                callees = [
                    db.summary_for(msum.owner, n) for n in msum.self_calls
                ] + [db.super_summary_for(msum.owner, n) for n in msum.super_calls]
                if any(c is not None and c.mutates for c in callees):
                    msum.mutates = True
                    changed = True
            if not msum.marks_always and _always_marks(db, msum):
                msum.marks_always = True
                changed = True

    # 4. executor coverage: entry points, closed over self-calls per
    #    concrete class, recorded at the defining class
    for ci in db.dirty_classes:
        roots: List[str] = []
        seen_names: Set[str] = set()
        for base in index.mro(ci):
            for mname, fn in base.methods.items():
                if mname in seen_names:
                    continue
                seen_names.add(mname)
                if mname in COVERED_ENTRY_POINTS or _has_ctx_param(fn):
                    roots.append(mname)
        # closure items are (method name, resolve-after qualname): plain
        # self-calls resolve from the top of ci's MRO, super-calls resolve
        # past the class whose body made them — so an override that
        # delegates with ``super().m()`` still covers the base body
        work: List[Tuple[str, Optional[str]]] = [(r, None) for r in roots]
        visited: Set[Tuple[str, Optional[str]]] = set()
        while work:
            item = work.pop()
            if item in visited:
                continue
            visited.add(item)
            mname, after = item
            found = db.resolve_after(ci, after, mname)
            if found is None:
                continue
            def_ci, _fn = found
            db.covered.add((def_ci.qualname, mname))
            msum = db.methods.get((def_ci.qualname, mname))
            if msum is not None:
                work.extend((n, None) for n in msum.self_calls)
                work.extend((n, def_ci.qualname) for n in msum.super_calls)

    return db


def _any_mutation(db: DirtySummaries, msum: MethodSummary) -> bool:
    cfg = db.cfg_for(msum.node)
    for node in cfg.nodes:
        if node.kind == STMT and db._classify_stmt(node, msum) == MUTATION:
            return True
    return False


def _always_marks(db: DirtySummaries, msum: MethodSummary) -> bool:
    """No normal-return path avoids a mark node."""
    cfg = db.cfg_for(msum.node)
    kinds = db.classify(msum, cfg)
    marks = {idx for idx, k in kinds.items() if k == MARK}
    if not marks:
        return False
    return cfg.entry.idx not in exposed_nodes(cfg, marks)
