"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.lint.engine import Finding


def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    """``path:line:col: CODE message`` lines plus a one-line summary."""
    out: List[str] = []
    for f in findings:
        out.append(f"{f.location}: {f.code} {f.message}")
    if findings:
        by_code: Dict[str, int] = {}
        for f in findings:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        breakdown = ", ".join(f"{code}×{n}" for code, n in sorted(by_code.items()))
        out.append("")
        out.append(
            f"{len(findings)} finding(s) in {files_scanned} file(s): {breakdown}"
        )
    else:
        out.append(f"repro.lint: {files_scanned} file(s) clean")
    return "\n".join(out)


def render_json(
    findings: Sequence[Finding],
    files_scanned: int,
    suppressions: Optional[Mapping[str, int]] = None,
) -> str:
    """A stable JSON document (schema version 1).

    ``suppressions`` (per-code tallies of ``# repro-lint: disable``
    comments in the scanned files) is an additive section: CI archives
    it with the report so budget drift is visible in artifacts.
    """
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    doc = {
        "version": 1,
        "tool": "repro.lint",
        "files_scanned": files_scanned,
        "counts": {code: counts[code] for code in sorted(counts)},
        "suppressions": dict(suppressions or {}),
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
