"""``python -m repro.lint`` — the command-line entry point.

Exit codes::

    0   no findings
    1   findings reported
    2   usage error / nothing to lint

Examples::

    python -m repro.lint src/
    python -m repro.lint src/repro/protocols --format json
    python -m repro.lint src/ --select RL1 --ignore RL110
    python -m repro.lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import run_lint
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES, rule_catalog
from repro.lint.rules_contract import load_registry_meta


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Static protocol-contract and determinism linter for the "
            "repro tree."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PREFIX",
        help="only report codes matching this prefix (repeatable): RL1, RL302, ...",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="PREFIX",
        help="drop codes matching this prefix (repeatable)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the RL3xx registry cross-checks (no import of the registry)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(code) for code, _, _ in rule_catalog())
        for code, name, summary in rule_catalog():
            print(f"{code:<{width}}  {name:<24}  {summary}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro.lint: error: no paths given", file=sys.stderr)
        return 2

    registry = None if args.no_registry else load_registry_meta()
    findings, ctx = run_lint(
        args.paths,
        rules=ALL_RULES,
        registry=registry,
        select=args.select,
        ignore=args.ignore,
    )
    files_scanned = len(ctx.files)
    if files_scanned == 0 and not findings:
        print("repro.lint: error: no Python files found", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings, files_scanned))
    else:
        print(render_text(findings, files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
