"""``python -m repro.lint`` — the command-line entry point.

Exit codes::

    0   no findings
    1   findings reported
    2   usage error / nothing to lint

Examples::

    python -m repro.lint src/
    python -m repro.lint src/repro/protocols --format json
    python -m repro.lint src/ --select RL1 --ignore RL110
    python -m repro.lint --changed                 # git-diff-aware
    python -m repro.lint src/ --budget lint_budget.json
    python -m repro.lint --list-rules
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import check_budget, run_lint, suppression_counts
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES, rule_catalog
from repro.lint.rules_contract import load_registry_meta

#: what ``--changed`` scopes to when no paths are given: everything the
#: repository lints in CI (`make lint`)
DEFAULT_TARGETS = ("src", "benchmarks", "tests/helpers.py")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Static protocol-contract and determinism linter for the "
            "repro tree."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PREFIX",
        help="only report codes matching this prefix (repeatable): RL1, RL302, ...",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="PREFIX",
        help="drop codes matching this prefix (repeatable)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the RL3xx registry cross-checks (no import of the registry)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only Python files changed vs git HEAD (plus untracked), "
            "intersected with the given paths (default: src benchmarks "
            "tests/helpers.py)"
        ),
    )
    parser.add_argument(
        "--budget",
        metavar="FILE",
        default=None,
        help=(
            "enforce the committed per-family suppression budget (a JSON "
            "mapping of code prefixes to ceilings); overruns report RL002"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _git_changed_files() -> Optional[List[str]]:
    """Python files changed vs HEAD plus untracked ones, or None when
    git is unavailable / this is not a checkout."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        others = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = {
        line.strip()
        for line in (diff.stdout + others.stdout).splitlines()
        if line.strip().endswith(".py")
    }
    return sorted(names)


def _scoped(changed: Sequence[str], scope: Sequence[str]) -> List[str]:
    """The changed files that still exist and fall under a scope path."""
    roots = [Path(s).resolve() for s in scope]
    out: List[str] = []
    for name in changed:
        p = Path(name)
        if not p.exists():
            continue
        rp = p.resolve()
        for root in roots:
            if rp == root or root in rp.parents:
                out.append(name)
                break
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(code) for code, _, _ in rule_catalog())
        for code, name, summary in rule_catalog():
            print(f"{code:<{width}}  {name:<24}  {summary}")
        return 0

    paths = list(args.paths)
    if args.changed:
        changed = _git_changed_files()
        if changed is None:
            print(
                "repro.lint: error: --changed needs a git checkout",
                file=sys.stderr,
            )
            return 2
        paths = _scoped(changed, paths or list(DEFAULT_TARGETS))
        if not paths:
            print("repro.lint: no changed Python files to lint")
            return 0
    elif not paths:
        parser.print_usage(sys.stderr)
        print("repro.lint: error: no paths given", file=sys.stderr)
        return 2

    budget = None
    if args.budget is not None:
        try:
            budget = json.loads(Path(args.budget).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"repro.lint: error: cannot read budget: {exc}", file=sys.stderr)
            return 2
        if not isinstance(budget, dict):
            print(
                "repro.lint: error: budget must be a JSON object of "
                "code-prefix -> ceiling",
                file=sys.stderr,
            )
            return 2

    registry = None if args.no_registry else load_registry_meta()
    findings, ctx = run_lint(
        paths,
        rules=ALL_RULES,
        registry=registry,
        select=args.select,
        ignore=args.ignore,
    )
    files_scanned = len(ctx.files)
    if files_scanned == 0 and not findings:
        print("repro.lint: error: no Python files found", file=sys.stderr)
        return 2

    suppressions = suppression_counts(ctx.files)
    if budget is not None:
        findings = sorted(
            list(findings) + check_budget(suppressions, budget, args.budget),
            key=lambda f: f.sort_key(),
        )

    if args.format == "json":
        print(render_json(findings, files_scanned, suppressions=suppressions))
    else:
        print(render_text(findings, files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
