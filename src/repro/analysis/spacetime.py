"""Space-time diagrams: one column per process, one row per event.

The textual cousin of the classic message-sequence chart.  Used by the
Figure 2 renderer and the ``python -m repro trace`` command; handy
whenever a protocol does something surprising and you want to *see* the
execution.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.trace import DeliverEvent, InvokeEvent, StepEvent, Trace, TraceEvent


def lane_diagram(
    events: Iterable[TraceEvent], pids: Sequence[str], width: int = 14
) -> List[str]:
    """Render events as lanes; returns the lines."""
    lines = []
    header = " ".join(p.center(width) for p in pids)
    lines.append(header)
    lines.append("-" * len(header))
    for ev in events:
        cells = {p: "" for p in pids}
        if isinstance(ev, StepEvent):
            rx = ",".join(f"m{m.msg_id}" for m in ev.received)
            tx = ",".join(f"m{m.msg_id}>{m.dst}" for m in ev.sent)
            label = "step"
            if rx:
                label += f" rx[{rx}]"
            if tx:
                label += f" tx[{tx}]"
            if ev.pid in cells:
                cells[ev.pid] = label
        elif isinstance(ev, DeliverEvent):
            m = ev.message
            if m.dst in cells:
                cells[m.dst] = f"<~ m{m.msg_id} from {m.src}"
        elif isinstance(ev, InvokeEvent):
            if ev.pid in cells:
                cells[ev.pid] = f"invoke {getattr(ev.txn, 'txid', ev.txn)}"
        row = " ".join(
            cells.get(p, "").ljust(width)[: max(width, len(cells.get(p, "")))]
            for p in pids
        )
        lines.append(row.rstrip())
    return lines


def render_spacetime(
    trace: Trace,
    pids: Optional[Sequence[str]] = None,
    start: int = 0,
    end: Optional[int] = None,
    width: int = 14,
) -> str:
    """Render a trace slice as a space-time diagram string."""
    events = trace.events[start:end]
    if pids is None:
        seen: List[str] = []
        for ev in events:
            cands = []
            if isinstance(ev, (StepEvent, InvokeEvent)):
                cands.append(ev.pid)
            if isinstance(ev, DeliverEvent):
                cands.extend([ev.message.src, ev.message.dst])
            for c in cands:
                if c not in seen:
                    seen.append(c)
        pids = seen
    return "\n".join(lane_diagram(events, pids, width=width))
