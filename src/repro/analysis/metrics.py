"""Measuring the fast-ROT properties (and more) from execution traces.

Everything here is a pure function of the trace and the history — the
properties of Definition 4/5 are *measured*, never declared:

* **rounds** — the number of distinct computation steps in which the
  client sent at least one message on behalf of the transaction (the
  one-roundtrip property requires exactly 1);
* **blocking** — a server reply for the transaction sent in a later
  computation step than the one that received the triggering request
  (the non-blocking property requires same-step replies);
* **values per object** — how many written values were communicated to
  the client for each object over the whole transaction, plus values for
  objects the client did not even read (the one-value property requires
  at most one, only for requested objects stored at the sender);
* **hops** — critical-path message-chain depth (distinguishes Calvin's
  client→sequencer→server→client from a direct request/reply);
* **payload bytes** — approximate value/metadata sizes on the wire
  (quantifies COPS-RW's "prohibitively big amount of data" and
  GentleRain-vs-Orbe metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.messages import Message, Payload
from repro.sim.trace import DeliverEvent, StepEvent, Trace
from repro.txn.history import History
from repro.txn.types import ObjectId, TxnRecord


# ---------------------------------------------------------------------------
# payload introspection
# ---------------------------------------------------------------------------


def payload_references(payload: Any, txid: str) -> bool:
    """Whether a payload pertains to transaction ``txid``."""
    if getattr(payload, "txid", None) == txid:
        return True
    data = getattr(payload, "data", None)
    if isinstance(data, Mapping):
        if data.get("txid") == txid:
            return True
        for entry in data.get("entries", ()):  # Calvin batches
            if isinstance(entry, Mapping) and entry.get("txid") == txid:
                return True
    return False


def approx_size(obj: Any) -> int:
    """Rough wire size of a python value, in bytes."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, Mapping):
        return sum(approx_size(k) + approx_size(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(approx_size(x) for x in obj)
    if hasattr(obj, "__dataclass_fields__"):
        return sum(
            approx_size(getattr(obj, f)) for f in obj.__dataclass_fields__
        )
    return len(repr(obj))


def payload_sizes(payload: Payload) -> Tuple[int, int]:
    """(value bytes, metadata bytes) of one payload."""
    total = approx_size(payload)
    values = 0
    if isinstance(payload, Payload):
        for entry in payload.carried_values():
            values += approx_size(getattr(entry, "value", entry))
    return values, max(0, total - values)


# ---------------------------------------------------------------------------
# per-transaction statistics
# ---------------------------------------------------------------------------


@dataclass
class TxnStats:
    txid: str
    client: str
    read_only: bool
    rounds: int = 0
    hops: int = 0
    blocked: bool = False
    #: values communicated to the client per object over the transaction
    values_per_object: Dict[ObjectId, int] = field(default_factory=dict)
    #: values for objects the client did not request (one-value breach)
    unrequested_values: int = 0
    max_values_in_message: int = 0
    n_messages: int = 0
    value_bytes: int = 0
    metadata_bytes: int = 0
    latency_events: int = 0

    @property
    def max_values_per_object(self) -> int:
        return max(self.values_per_object.values(), default=0)

    @property
    def one_round(self) -> bool:
        return self.rounds == 1

    @property
    def one_value(self) -> bool:
        return self.max_values_per_object <= 1 and self.unrequested_values == 0

    @property
    def nonblocking(self) -> bool:
        return not self.blocked

    @property
    def fast(self) -> bool:
        return self.read_only and self.one_round and self.one_value and self.nonblocking


def _step_of_message(trace: Trace) -> Dict[int, StepEvent]:
    """msg_id → the step event that sent it."""
    out: Dict[int, StepEvent] = {}
    for ev in trace:
        if isinstance(ev, StepEvent):
            for m in ev.sent:
                out[m.msg_id] = ev
    return out


def analyze_transactions(
    trace: Trace,
    history: History,
    servers: Sequence[str],
    start: int = 0,
) -> Dict[str, TxnStats]:
    """Compute :class:`TxnStats` for every completed transaction."""
    server_set = set(servers)
    stats: Dict[str, TxnStats] = {}
    for rec in history.records:
        stats[rec.txid] = TxnStats(
            txid=rec.txid,
            client=rec.client,
            read_only=rec.txn.is_read_only,
            latency_events=rec.completed_at - rec.invoked_at,
        )
    requested: Dict[str, Set[ObjectId]] = {
        rec.txid: set(rec.txn.read_set) for rec in history.records
    }
    clients = {rec.txid: rec.client for rec in history.records}

    sender_step = _step_of_message(trace)
    # depth of each message in its transaction's causal message chain
    depth: Dict[int, int] = {}

    events = trace.events[start:]
    for ev in events:
        if not isinstance(ev, StepEvent):
            continue
        for m in ev.sent:
            txid = _owning_txid(m.payload, stats)
            if txid is None:
                continue
            st = stats[txid]
            st.n_messages += 1
            vb, mb = payload_sizes(m.payload)
            st.value_bytes += vb
            st.metadata_bytes += mb
            # chain depth: 1 + max depth of same-txn messages received in
            # this step (0 if none — an originating client send)
            parent = 0
            triggered_same_step = False
            for r in ev.received:
                if payload_references(r.payload, txid) and r.msg_id in depth:
                    parent = max(parent, depth[r.msg_id])
                    triggered_same_step = True
            depth[m.msg_id] = parent + 1
            if ev.pid == st.client and m.dst != st.client:
                pass
            # server → client replies: blocking & one-value accounting
            if ev.pid in server_set and m.dst == clients.get(txid):
                st.hops = max(st.hops, depth[m.msg_id])
                if not triggered_same_step:
                    st.blocked = True
                if isinstance(m.payload, Payload):
                    n_vals = 0
                    for entry in m.payload.carried_values():
                        obj = getattr(entry, "obj", None)
                        n_vals += 1
                        if obj is not None:
                            st.values_per_object[obj] = (
                                st.values_per_object.get(obj, 0) + 1
                            )
                            if obj not in requested[txid]:
                                st.unrequested_values += 1
                    st.max_values_in_message = max(st.max_values_in_message, n_vals)

        # client send-phases (rounds)
        txids_sent: Set[str] = set()
        for m in ev.sent:
            txid = _owning_txid(m.payload, stats)
            if txid is not None and ev.pid == stats[txid].client:
                txids_sent.add(txid)
        for txid in txids_sent:
            stats[txid].rounds += 1
    return stats


def _owning_txid(payload: Any, stats: Mapping[str, TxnStats]) -> Optional[str]:
    txid = getattr(payload, "txid", None)
    if txid in stats:
        return txid
    data = getattr(payload, "data", None)
    if isinstance(data, Mapping):
        t = data.get("txid")
        if t in stats:
            return t
        for entry in data.get("entries", ()):
            if isinstance(entry, Mapping) and entry.get("txid") in stats:
                return entry["txid"]
    return None


# ---------------------------------------------------------------------------
# system-level characterization (one Table 1 row)
# ---------------------------------------------------------------------------


@dataclass
class Characterization:
    protocol: str
    n_rots: int
    max_rounds: int
    max_hops: int
    max_values_per_object: int
    any_unrequested_values: bool
    any_blocked: bool
    supports_wtx: bool
    consistency_level: str
    consistency_ok: bool
    consistency_conclusive: bool
    avg_rot_latency: float
    avg_value_bytes: float
    avg_metadata_bytes: float

    @property
    def fast_rots(self) -> bool:
        return (
            self.max_rounds <= 1
            and self.max_values_per_object <= 1
            and not self.any_unrequested_values
            and not self.any_blocked
        )

    def row(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "R": self.max_rounds,
            "V": self.max_values_per_object + (1 if self.any_unrequested_values else 0),
            "N": "yes" if not self.any_blocked else "no",
            "WTX": "yes" if self.supports_wtx else "no",
            "fast": "yes" if self.fast_rots else "no",
            "consistency": self.consistency_level,
            "verified": "yes" if self.consistency_ok else "VIOLATED",
        }


def characterize(
    system: "Any",
    history: History,
    check: bool = True,
    exact: Optional[bool] = None,
) -> Characterization:
    """Measure one protocol run into a Table-1-style row."""
    from repro.consistency import check_history

    stats = analyze_transactions(
        system.sim.trace, history, servers=system.servers
    )
    rots = [s for s in stats.values() if s.read_only]
    if check:
        report = check_history(history, level=system.info.consistency, exact=exact)
        ok, conclusive = report.ok, report.conclusive
    else:
        ok, conclusive = True, False
    n = max(1, len(rots))
    return Characterization(
        protocol=system.info.name,
        n_rots=len(rots),
        max_rounds=max((s.rounds for s in rots), default=0),
        max_hops=max((s.hops for s in rots), default=0),
        max_values_per_object=max((s.max_values_per_object for s in rots), default=0),
        any_unrequested_values=any(s.unrequested_values for s in rots),
        any_blocked=any(s.blocked for s in rots),
        supports_wtx=system.info.supports_wtx,
        consistency_level=system.info.consistency,
        consistency_ok=ok,
        consistency_conclusive=conclusive,
        avg_rot_latency=sum(s.latency_events for s in rots) / n,
        avg_value_bytes=sum(s.value_bytes for s in rots) / n,
        avg_metadata_bytes=sum(s.metadata_bytes for s in rots) / n,
    )
