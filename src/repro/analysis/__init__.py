"""Metrics, Table-1 rendering, and figure regeneration."""

from repro.analysis.metrics import (
    Characterization,
    TxnStats,
    analyze_transactions,
    approx_size,
    characterize,
    payload_references,
    payload_sizes,
)
from repro.analysis.tables import UNIMPLEMENTED_ROWS, format_table, render_table1
from repro.analysis.figures import figure1, figure2, figure3
from repro.analysis.spacetime import lane_diagram, render_spacetime

__all__ = [
    "Characterization",
    "TxnStats",
    "analyze_transactions",
    "approx_size",
    "characterize",
    "payload_references",
    "payload_sizes",
    "UNIMPLEMENTED_ROWS",
    "format_table",
    "render_table1",
    "figure1",
    "figure2",
    "figure3",
    "lane_diagram",
    "render_spacetime",
]
