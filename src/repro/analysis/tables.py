"""Rendering Table 1: paper-claimed vs measured characterization."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import Characterization
from repro.protocols.registry import REGISTRY, PaperRow

#: Table 1 rows for systems we do not implement (kept for completeness of
#: the reproduction; the benchmark prints them greyed as "not implemented")
UNIMPLEMENTED_ROWS: Dict[str, PaperRow] = {
    "ChainReaction": PaperRow(">=1", ">=1", "no", "no", "Causal Consistency"),
    "POCC": PaperRow("2", "1", "no", "no", "Causal Consistency"),
    "Yesquel": PaperRow("1", "1", "no", "yes", "Snapshot Isolation"),
    "Granola": PaperRow("2", "1", "yes", "yes", "Serializability"),
    "TAPIR": PaperRow("<=2", "1", "yes", "yes", "Serializability"),
    "Eiger-PS†": PaperRow("1", "1", "yes", "yes", "PO-Serializability"),
    "DrTM": PaperRow(">=1", ">=1", "no", "yes", "Strict Serializability"),
    "RoCoCo": PaperRow(">=1", ">=1", "no", "yes", "Strict Serializability"),
    "RoCoCo-SNOW": PaperRow("1", "1", "no", "yes", "Strict Serializability"),
}


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Plain-text table with aligned columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(
    characterizations: Sequence[Characterization],
    include_unimplemented: bool = False,
) -> str:
    """Render the Table-1 reproduction.

    For each implemented system: the paper's claimed R/V/N/WTX row next
    to the values measured on this run's trace, and the verdict of the
    matching consistency checker.
    """
    headers = [
        "System",
        "paper R",
        "meas R",
        "paper V",
        "meas V",
        "paper N",
        "meas N",
        "WTX",
        "fast ROT",
        "Consistency",
        "verified",
    ]
    rows: List[List[str]] = []
    for ch in characterizations:
        info = REGISTRY[ch.protocol]
        paper = info.paper_row
        measured = ch.row()
        rows.append(
            [
                info.title,
                paper.rounds,
                str(measured["R"]),
                paper.values,
                str(measured["V"]),
                paper.nonblocking,
                measured["N"],
                measured["WTX"],
                measured["fast"],
                paper.consistency,
                measured["verified"],
            ]
        )
    if include_unimplemented:
        for name, paper in UNIMPLEMENTED_ROWS.items():
            rows.append(
                [
                    name,
                    paper.rounds,
                    "-",
                    paper.values,
                    "-",
                    paper.nonblocking,
                    "-",
                    paper.wtx,
                    "-",
                    paper.consistency,
                    "(not implemented)",
                ]
            )
    return format_table(
        headers,
        rows,
        title="Table 1 — characterization of systems (paper-claimed vs measured)",
    )
