"""Regenerating the paper's figures as annotated execution diagrams.

The paper's three figures are *proof illustrations*; here each is
regenerated from an actual run of the corresponding machinery:

* **Figure 1** — the initialization phase ``Q_in → Q_0 → C_0``
  (:func:`figure1`): the initial writes become visible, ``c_w`` reads
  them, the system quiesces;
* **Figure 2** — Constructions 1 and 2 (:func:`figure2`): the same fast
  ROT returns ``(x_in0, x_in1)`` when a server answers before the write
  is visible and ``(x0, x1)`` after;
* **Figure 3** — execution β, its spliced subsequence β_new, and the
  contradictory γ (:func:`figure3`): run against a protocol that claims
  all four properties, ending in the mixed read.

Each function returns a plain-text diagram; the corresponding benchmark
prints it so the reproduction artifacts are regenerable on demand.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.constructions import finish_with_new, run_sigma_old
from repro.core.induction import InductionConfig, run_induction
from repro.core.setup import TheoremSystem, prepare_theorem_system
from repro.core.splicing import RecordedFragment, splice_new
from repro.core.visibility import probe_read
from repro.sim.scheduler import RoundRobinScheduler
from repro.analysis.spacetime import lane_diagram as _lane_diagram
from repro.sim.trace import DeliverEvent, InvokeEvent, StepEvent


def figure1(protocol: str = "cops_snow", **params) -> str:
    """The initialization Q_in → Q_0 → C_0 (Figure 1), from a real run."""
    tsys = prepare_theorem_system(protocol, **params)
    lines = [
        f"Figure 1 — configurations Q_in, Q_0, C_0 ({protocol})",
        "",
        "Q_in : all processes in initial state, no message in transit.",
    ]
    for i, obj in enumerate(tsys.objects):
        lines.append(
            f"  T_in{i} by {tsys.init_clients[i]}: w({obj}){tsys.init_values[obj]!r}"
        )
    lines.append(
        "Q_0  : all initial values visible "
        f"(verified by a frozen-adversary probe over {tsys.objects})."
    )
    rec = tsys.system.client(tsys.cw).completed[-1]
    reads = ", ".join(f"r({o}){v!r}" for o, v in sorted(rec.reads.items()))
    lines.append(f"  T_in_r by {tsys.cw}: {reads}")
    lines.append(
        "C_0  : T_in_r complete, no message in transit "
        f"(in-transit = {tsys.sim.network.n_in_transit()})."
    )
    return "\n".join(lines)


def figure2(protocol: str = "fastclaim", **params) -> str:
    """Constructions 1 and 2 (Figure 2), executed."""
    tsys = prepare_theorem_system(protocol, **params)
    sim = tsys.sim
    servers = tsys.servers
    c0 = tsys.c0
    lines = [f"Figure 2 — Constructions 1 and 2 ({protocol})", ""]

    # Construction 1: T_w has not made its values visible (here: not even
    # started); the reader must return the initial values.
    sim.restore(c0)
    mark = sim.trace.mark()
    sigma = run_sigma_old(
        sim,
        tsys.probes[1],
        tsys.objects,
        old_servers=[servers[0]],
        new_servers=list(servers[1:]),
        txid="Tr_old",
    )
    rec_old = finish_with_new(sim, sigma)
    lines.append("Construction 1 (γ_old): C with x_i not visible; p_i answers first")
    lines.extend(
        "  " + ln
        for ln in _lane_diagram(
            sim.trace.events[mark:], (tsys.probes[1],) + tuple(servers)
        )
    )
    lines.append(f"  ⇒ T_r returns {dict(sorted(rec_old.reads.items()))}  (all initial)")
    lines.append("")

    # Construction 2: run T_w solo to visibility, then read.
    sim.restore(c0)
    sim.invoke(tsys.cw, tsys.tw())
    sched = RoundRobinScheduler()
    sched.run(sim, pids=(tsys.cw,) + tuple(servers), max_events=50_000)
    mark = sim.trace.mark()
    sigma = run_sigma_old(
        sim,
        tsys.probes[2],
        tsys.objects,
        old_servers=[servers[1]],
        new_servers=[servers[0]],
        txid="Tr_new",
    )
    rec_new = finish_with_new(sim, sigma)
    lines.append("Construction 2 (γ_new): C with x_i visible; p_{1-i} answers first")
    lines.extend(
        "  " + ln
        for ln in _lane_diagram(
            sim.trace.events[mark:], (tsys.probes[2],) + tuple(servers)
        )
    )
    lines.append(f"  ⇒ T_r returns {dict(sorted(rec_new.reads.items()))}  (all written)")
    return "\n".join(lines)


def figure3(protocol: str = "fastclaim", max_k: int = 6, **params) -> str:
    """Execution β, the splice β_new, and the contradictory γ (Figure 3)."""
    tsys = prepare_theorem_system(protocol, **params)
    verdict = run_induction(tsys, InductionConfig(max_k=max_k))
    lines = [
        f"Figure 3 — β, β_new and the contradictory execution γ ({protocol})",
        "",
        f"Engine verdict: {verdict.outcome} at k={verdict.k_reached}",
    ]
    for f in verdict.forced_messages:
        lines.append(f"  necessary message {f}")
    if verdict.witness is not None:
        w = verdict.witness
        lines.append("")
        lines.append(
            f"Spliced execution {w.construction} (σ_old · "
            f"{'β' if w.construction == 'gamma' else 'ρ'}_new · σ_new):"
        )
        lines.append(f"  reader {w.reader} returned:")
        for obj in sorted(w.reads):
            val = w.reads[obj]
            origin = (
                "OLD (pre-T_w)"
                if val == w.old_values.get(obj)
                else "NEW (written by T_w)"
                if val == w.new_values.get(obj)
                else "?"
            )
            lines.append(f"    r({obj}) = {val!r}   <- {origin}")
        lines.append("  — a mix of old and new values: Lemma 1 is contradicted.")
        for a in w.anomalies[:4]:
            lines.append(f"  checker: {a.describe()}")
    return "\n".join(lines)
