"""Consistency checker tests on hand-crafted histories.

Each classic anomaly gets a minimal history; the witness scanner, the
exact Definition-1 search, the serializability checkers and the session
checkers are validated against each other.
"""

import pytest

from repro.consistency import (
    check_causal,
    check_causal_exact,
    check_history,
    check_read_atomic,
    check_serializable,
    check_sessions,
    check_strict_serializable,
    find_causal_anomalies,
    find_fractured_reads,
)
from repro.consistency.search import find_legal_serialization
from repro.txn.types import BOTTOM

from helpers import history_of, rec


# ---------------------------------------------------------------------------
# the serialization search engine
# ---------------------------------------------------------------------------


class TestSearchEngine:
    def test_empty_history(self):
        res = find_legal_serialization([], [])
        assert res.found and res.order == []

    def test_single_write(self):
        res = find_legal_serialization([rec("w", "c", writes={"X": 1})], [])
        assert res.found

    def test_read_needs_write_first(self):
        records = [
            rec("r", "c1", reads={"X": 1}),
            rec("w", "c2", writes={"X": 1}),
        ]
        res = find_legal_serialization(records, [])
        assert res.found
        assert res.order.index("w") < res.order.index("r")

    def test_respects_order_edges(self):
        records = [
            rec("a", "c", writes={"X": 1}),
            rec("b", "c", writes={"X": 2}),
        ]
        res = find_legal_serialization(records, [("a", "b")])
        assert res.found and res.order == ["a", "b"]

    def test_impossible_read(self):
        records = [rec("r", "c", reads={"X": 99})]
        res = find_legal_serialization(records, [])
        assert not res.found and res.conclusive

    def test_legality_scoped_to_clients(self):
        # the stale read is fine if only c2's transactions must be legal
        records = [
            rec("w", "c2", writes={"X": 1}),
            rec("r", "c1", reads={"X": 99}),
        ]
        assert not find_legal_serialization(records, []).found
        assert find_legal_serialization(records, [], legality_clients={"c2"}).found

    def test_read_of_bottom_before_write(self):
        records = [
            rec("r", "c1", reads={"X": BOTTOM}),
            rec("w", "c2", writes={"X": 1}),
        ]
        res = find_legal_serialization(records, [])
        assert res.found
        assert res.order.index("r") < res.order.index("w")

    def test_budget_reports_inconclusive(self):
        records = [rec(f"w{i}", f"c{i}", writes={f"X{i}": i}) for i in range(12)]
        records.append(rec("r", "c", reads={"X0": 999}))
        res = find_legal_serialization(records, [], max_steps=5)
        assert not res.found and res.exhausted_budget


# ---------------------------------------------------------------------------
# causal consistency
# ---------------------------------------------------------------------------


def lemma1_history():
    """The paper's Lemma 1 scenario: a reader sees a mix of old/new."""
    return history_of(
        rec("Tin0", "cin0", writes={"X0": "old0"}, invoked_at=0),
        rec("Tin1", "cin1", writes={"X1": "old1"}, invoked_at=1),
        rec("Tinr", "cw", reads={"X0": "old0", "X1": "old1"}, invoked_at=5),
        rec("Tw", "cw", writes={"X0": "new0", "X1": "new1"}, invoked_at=10),
        rec("Tr", "cr", reads={"X0": "old0", "X1": "new1"}, invoked_at=15),
    )


class TestCausalCheckers:
    def test_clean_sequential_history(self):
        h = history_of(
            rec("w1", "c1", writes={"X": 1}, invoked_at=0),
            rec("r1", "c2", reads={"X": 1}, invoked_at=5),
        )
        assert find_causal_anomalies(h) == []
        assert check_causal_exact(h).consistent

    def test_lemma1_mixed_read_caught_by_scan(self):
        anomalies = find_causal_anomalies(lemma1_history())
        assert anomalies
        a = anomalies[0]
        assert a.reader == "Tr" and a.obj == "X0"
        assert a.fresher_writer == "Tw"

    def test_lemma1_mixed_read_caught_by_exact(self):
        res = check_causal_exact(lemma1_history())
        assert not res.consistent and res.conclusive

    def test_mixed_read_without_causal_link_is_allowed(self):
        # without T_inr, Tw is concurrent with the initial writes; a
        # fractured read of concurrent transactions is causally fine
        h = history_of(
            rec("Tin0", "cin0", writes={"X0": "old0"}, invoked_at=0),
            rec("Tin1", "cin1", writes={"X1": "old1"}, invoked_at=1),
            rec("Tw", "cw", writes={"X0": "new0", "X1": "new1"}, invoked_at=10),
            rec("Tr", "cr", reads={"X0": "old0", "X1": "new1"}, invoked_at=15),
        )
        assert find_causal_anomalies(h) == []
        assert check_causal_exact(h).consistent

    def test_session_stale_read_caught(self):
        # c reads its own write, then an older value
        h = history_of(
            rec("w1", "c1", writes={"X": 1}, invoked_at=0),
            rec("w2", "c1", writes={"X": 2}, invoked_at=5),
            rec("r", "c1", reads={"X": 1}, invoked_at=10),
        )
        assert find_causal_anomalies(h)
        assert not check_causal_exact(h).consistent

    def test_read_of_unwritten_value(self):
        h = history_of(rec("r", "c", reads={"X": "ghost"}))
        assert find_causal_anomalies(h)

    def test_causal_chain_across_clients(self):
        # c2 reads c1's write then writes; c3 sees c2's write but then
        # reads the initial X — violation via the transitive chain
        h = history_of(
            rec("w1", "c1", writes={"X": 1}, invoked_at=0),
            rec("r2", "c2", reads={"X": 1}, invoked_at=5),
            rec("w2", "c2", writes={"Y": 2}, invoked_at=6),
            rec("r3", "c3", reads={"Y": 2, "X": BOTTOM}, invoked_at=10),
        )
        anomalies = find_causal_anomalies(h)
        assert anomalies and anomalies[0].obj == "X"
        assert not check_causal_exact(h).consistent

    def test_combined_checker_prefers_witness(self):
        res = check_causal(lemma1_history())
        assert not res.consistent and res.conclusive and res.anomalies

    def test_combined_checker_exact_for_small(self):
        h = history_of(rec("w", "c", writes={"X": 1}))
        res = check_causal(h)
        assert res.consistent and res.conclusive

    def test_combined_checker_large_clean_inconclusive(self):
        records = [
            rec(f"w{i}", f"c{i%3}", writes={f"X{i}": i}, invoked_at=i)
            for i in range(30)
        ]
        res = check_causal(history_of(*records))
        assert res.consistent is True and res.conclusive is False

    def test_exact_agrees_with_scan_on_clean(self):
        h = history_of(
            rec("w1", "c1", writes={"X": 1}, invoked_at=0),
            rec("w2", "c2", writes={"Y": 2}, invoked_at=1),
            rec("r1", "c3", reads={"X": 1, "Y": BOTTOM}, invoked_at=2),
            rec("r2", "c3", reads={"Y": 2}, invoked_at=3),
        )
        assert find_causal_anomalies(h) == []
        assert check_causal_exact(h).consistent


# ---------------------------------------------------------------------------
# serializability
# ---------------------------------------------------------------------------


class TestSerializability:
    def test_serializable_history(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1}, invoked_at=0, completed_at=2),
            rec("r", "c2", reads={"X": 1}, invoked_at=5, completed_at=6),
        )
        assert check_serializable(h).serializable
        assert check_strict_serializable(h).serializable

    def test_fractured_read_not_serializable(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1, "Y": 1}),
            rec("r", "c2", reads={"X": 1, "Y": BOTTOM}, invoked_at=5),
        )
        res = check_serializable(h)
        assert not res.serializable and res.conclusive

    def test_strict_adds_realtime(self):
        # r completed before w started yet reads w's value: serializable
        # (order w before r) but NOT strictly serializable
        h = history_of(
            rec("r", "c2", reads={"X": 1}, invoked_at=0, completed_at=1),
            rec("w", "c1", writes={"X": 1}, invoked_at=10, completed_at=12),
        )
        assert check_serializable(h).serializable
        assert not check_strict_serializable(h).serializable

    def test_write_skew_is_serializable_when_reads_allow(self):
        h = history_of(
            rec("t1", "c1", reads={"X": BOTTOM}, writes={"Y": 1}, invoked_at=0),
            rec("t2", "c2", reads={"Y": BOTTOM}, writes={"X": 2}, invoked_at=0),
        )
        # classic write skew: both read ⊥ — no single legal order exists
        res = check_serializable(h)
        assert not res.serializable


# ---------------------------------------------------------------------------
# read atomicity
# ---------------------------------------------------------------------------


class TestReadAtomicity:
    def test_atomic_reads_pass(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1, "Y": 2}, invoked_at=0, completed_at=1),
            rec("r", "c2", reads={"X": 1, "Y": 2}, invoked_at=5),
        )
        assert check_read_atomic(h)

    def test_fractured_read_caught(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1, "Y": 2}, invoked_at=0, completed_at=1),
            rec("r", "c2", reads={"X": 1, "Y": BOTTOM}, invoked_at=5),
        )
        fr = find_fractured_reads(h)
        assert fr and fr[0].obj_missed == "Y" and fr[0].sibling_txn == "w"

    def test_newer_sibling_version_allowed(self):
        h = history_of(
            rec("w1", "c1", writes={"X": 1, "Y": 1}, invoked_at=0, completed_at=1),
            rec("w2", "c1", writes={"Y": 2}, invoked_at=2, completed_at=3),
            rec("r", "c2", reads={"X": 1, "Y": 2}, invoked_at=5),
        )
        assert check_read_atomic(h)

    def test_concurrent_writers_not_flagged(self):
        h = history_of(
            rec("w1", "c1", writes={"X": 1, "Y": 1}, invoked_at=0, completed_at=9),
            rec("w2", "c2", writes={"Y": 2}, invoked_at=0, completed_at=9),
            rec("r", "c3", reads={"X": 1, "Y": 2}, invoked_at=20),
        )
        assert check_read_atomic(h)


# ---------------------------------------------------------------------------
# session guarantees
# ---------------------------------------------------------------------------


class TestSessions:
    def test_clean(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1}, invoked_at=0),
            rec("r", "c1", reads={"X": 1}, invoked_at=5),
        )
        assert check_sessions(h) == []

    def test_read_your_writes_violation(self):
        h = history_of(
            rec("old", "c2", writes={"X": 0}, invoked_at=0),
            rec("r0", "c1", reads={"X": 0}, invoked_at=2),
            rec("w", "c1", writes={"X": 1}, invoked_at=5),
            rec("r", "c1", reads={"X": 0}, invoked_at=9),
        )
        v = check_sessions(h)
        assert any(x.guarantee == "read-your-writes" for x in v)

    def test_monotonic_reads_violation(self):
        h = history_of(
            rec("w1", "c2", writes={"X": 1}, invoked_at=0),
            rec("w2", "c3", reads={"X": 1}, writes={"X": 2}, invoked_at=3),
            rec("ra", "c1", reads={"X": 2}, invoked_at=6),
            rec("rb", "c1", reads={"X": 1}, invoked_at=9),
        )
        v = check_sessions(h)
        assert any(x.guarantee == "monotonic-reads" for x in v)

    def test_concurrent_reads_not_flagged(self):
        h = history_of(
            rec("w1", "c2", writes={"X": 1}, invoked_at=0),
            rec("w2", "c3", writes={"X": 2}, invoked_at=0),
            rec("ra", "c1", reads={"X": 2}, invoked_at=6),
            rec("rb", "c1", reads={"X": 1}, invoked_at=9),
        )
        assert check_sessions(h) == []


# ---------------------------------------------------------------------------
# one-call verdicts
# ---------------------------------------------------------------------------


class TestCheckHistory:
    def test_levels_validated(self):
        with pytest.raises(ValueError):
            check_history(history_of(), level="bogus")

    def test_causal_fail_report(self):
        report = check_history(lemma1_history(), level="causal")
        assert not report.ok and report.conclusive
        assert "Tw" in report.describe()

    def test_read_atomic_report(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1, "Y": 2}, invoked_at=0, completed_at=1),
            rec("r", "c2", reads={"X": 1, "Y": BOTTOM}, invoked_at=5),
        )
        report = check_history(h, level="read-atomic")
        assert not report.ok and report.violations

    def test_strict_serializable_report(self):
        h = history_of(
            rec("w", "c1", writes={"X": 1}, invoked_at=0, completed_at=1),
            rec("r", "c2", reads={"X": 1}, invoked_at=5),
        )
        assert check_history(h, level="strict-serializable").ok
