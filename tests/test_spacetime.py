"""Space-time renderer tests."""

from repro.analysis import render_spacetime
from repro.sim.executor import Simulation

from helpers import Echo, Pinger


class TestRenderSpacetime:
    def make(self):
        sim = Simulation([Pinger("p", "e", n=1), Echo("e")])
        sim.step("p")
        sim.deliver("p", "e")
        sim.step("e")
        return sim

    def test_auto_pid_discovery(self):
        sim = self.make()
        out = render_spacetime(sim.trace)
        assert "p" in out.splitlines()[0] and "e" in out.splitlines()[0]

    def test_slicing(self):
        sim = self.make()
        full = render_spacetime(sim.trace, pids=("p", "e"))
        sliced = render_spacetime(sim.trace, pids=("p", "e"), start=1)
        assert len(sliced.splitlines()) == len(full.splitlines()) - 1

    def test_width(self):
        sim = self.make()
        narrow = render_spacetime(sim.trace, pids=("p", "e"), width=8)
        wide = render_spacetime(sim.trace, pids=("p", "e"), width=30)
        assert len(wide.splitlines()[0]) > len(narrow.splitlines()[0])

    def test_unknown_pids_ignored(self):
        sim = self.make()
        out = render_spacetime(sim.trace, pids=("ghost",))
        assert "ghost" in out
