"""Property-based protocol testing: random transaction scripts under
random adversaries, checked exactly.

Each example builds a fresh small deployment, runs a hypothesis-chosen
script of reads and writes with a hypothesis-chosen scheduler seed, and
decides causal consistency (or the protocol's claimed level) with the
exact checker.  Shrinking then gives minimal counterexample scripts —
this is how the Occult bugs were reduced once the workload sweep caught
them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency import check_history
from repro.protocols import build_system, get_protocol
from repro.sim.scheduler import RandomScheduler
from repro.txn.client import UnsupportedTransaction
from repro.txn.types import read_only_txn, write_only_txn

OBJECTS = ("X0", "X1")
CLIENTS = ("c0", "c1")


@st.composite
def scripts(draw):
    """A short script of (client, op) pairs over two objects."""
    n = draw(st.integers(2, 8))
    out = []
    for i in range(n):
        client = draw(st.sampled_from(CLIENTS))
        kind = draw(st.sampled_from(["r1", "r2", "w", "w2"]))
        out.append((client, kind, i))
    return out


def run_script(protocol, script, sched_seed, replication=1, n_servers=2):
    system = build_system(
        protocol,
        objects=OBJECTS,
        n_servers=n_servers,
        clients=CLIENTS,
        replication=replication,
    )
    sched = RandomScheduler(sched_seed)
    supports_wtx = get_protocol(protocol).supports_wtx
    for client, kind, i in script:
        if kind == "r1":
            txn = read_only_txn((OBJECTS[i % 2],), txid=f"t{i}")
        elif kind == "r2":
            txn = read_only_txn(OBJECTS, txid=f"t{i}")
        elif kind == "w" or not supports_wtx:
            txn = write_only_txn({OBJECTS[i % 2]: f"v{i}@{client}"}, txid=f"t{i}")
        else:
            txn = write_only_txn(
                {OBJECTS[0]: f"v{i}a@{client}", OBJECTS[1]: f"v{i}b@{client}"},
                txid=f"t{i}",
            )
        system.execute(client, txn, scheduler=sched, max_events=100_000)
    system.settle()
    return system


@pytest.mark.parametrize("protocol", ["cops_snow", "cops", "wren", "contrarian"])
class TestCausalProtocolsProperty:
    @given(script=scripts(), sched_seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_exact_causal(self, protocol, script, sched_seed):
        system = run_script(protocol, script, sched_seed)
        report = check_history(system.history(), level="causal", exact=True)
        assert report.ok, report.describe()


class TestOccultProperty:
    @given(script=scripts(), sched_seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_exact_causal_with_slaves(self, script, sched_seed):
        system = run_script("occult", script, sched_seed, replication=2,
                            n_servers=3)
        report = check_history(system.history(), level="causal", exact=True)
        assert report.ok, report.describe()


class TestRampProperty:
    @given(script=scripts(), sched_seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_read_atomic(self, script, sched_seed):
        system = run_script("ramp", script, sched_seed)
        report = check_history(system.history(), level="read-atomic")
        assert report.ok, report.describe()


class TestSpannerProperty:
    @given(script=scripts(), sched_seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_strict_serializable(self, script, sched_seed):
        system = run_script("spanner", script, sched_seed)
        report = check_history(system.history(), level="strict-serializable")
        assert report.ok, report.describe()
