"""Targeted per-protocol scenario tests: the distinctive mechanism of
each system is driven deterministically with explicit schedules."""

import pytest

from repro.protocols import build_system
from repro.protocols.base import ReadReply, ReadRequest
from repro.sim.scheduler import RoundRobinScheduler, run_until_quiescent
from repro.txn.types import BOTTOM, read_only_txn, write_only_txn


def quiesce(system, pids=None):
    run_until_quiescent(system.sim, pids=pids)


def do(system, client, txn):
    return system.execute(client, txn, scheduler=RoundRobinScheduler())


def do_frozen(system, client, txn, frozen_msgs):
    """Execute a transaction while keeping specific messages in transit."""
    from repro.core.visibility import FrozenScheduler

    c = system.client(client)
    before = len(c.completed)
    system.sim.invoke(client, txn)
    FrozenScheduler({m.msg_id for m in frozen_msgs}).run(
        system.sim,
        until=lambda s: len(c.completed) > before,
        max_events=50_000,
    )
    return c.completed[-1]


# ---------------------------------------------------------------------------
# COPS: the two-round dependency-check read
# ---------------------------------------------------------------------------


class TestCopsTwoRounds:
    def build(self):
        return build_system("cops", objects=("X0", "X1"), n_servers=2,
                            clients=("w", "r"))

    def test_round2_triggered_by_delayed_read(self):
        """Reproduce the paper's motivating race: the ROT's request to p0
        is delivered before the writes, the one to p1 after — round 1
        returns (old X0, new X1 with dep on new X0), and COPS repairs
        with a second round."""
        system = self.build()
        sim = system.sim
        writer = system.client("w")
        reader = system.client("r")

        # establish causal chain: w writes X0 then X1 (dep on X0)
        do(system, "w", write_only_txn({"X0": "x0-old"}, txid="pre"))
        # reader's ROT: send both requests, deliver only the one to s0
        sim.invoke("r", read_only_txn(("X0", "X1"), txid="rot"))
        ev = sim.step("r")
        req = {m.dst: m for m in ev.sent}
        assert set(req) == {"s0", "s1"}
        sim.deliver_msg(req["s0"])
        sim.step("s0")  # replies with the old X0
        # now the writer updates X0 and X1 (X1 depends on new X0),
        # while the reader's request to s1 stays in transit
        do_frozen(system, "w", write_only_txn({"X0": "x0-new"}, txid="w0"),
                  [req["s1"]])
        do_frozen(system, "w", write_only_txn({"X1": "x1-new"}, txid="w1"),
                  [req["s1"]])
        # deliver the reader's request to s1: reply carries dep X0@new
        sim.deliver_msg(req["s1"])
        sim.step("s1")
        # let the reader finish (it will issue round 2 for X0)
        run_until_quiescent(sim)
        rec = reader.completed[-1]
        assert rec.reads == {"X0": "x0-new", "X1": "x1-new"}
        # and it really took two rounds
        from repro.analysis.metrics import analyze_transactions

        stats = analyze_transactions(sim.trace, system.history(), system.servers)
        assert stats["rot"].rounds == 2
        assert stats["rot"].values_per_object["X0"] == 2  # old + refetch

    def test_one_round_when_no_race(self):
        system = self.build()
        do(system, "w", write_only_txn({"X0": "a"}))
        do(system, "w", write_only_txn({"X1": "b"}))
        rec = do(system, "r", read_only_txn(("X0", "X1"), txid="rot2"))
        assert rec.reads == {"X0": "a", "X1": "b"}
        from repro.analysis.metrics import analyze_transactions

        stats = analyze_transactions(
            system.sim.trace, system.history(), system.servers
        )
        assert stats["rot2"].rounds == 1


# ---------------------------------------------------------------------------
# COPS-SNOW: readers checks keep one-round reads causal
# ---------------------------------------------------------------------------


class TestCopsSnowReadersCheck:
    def build(self):
        return build_system(
            "cops_snow", objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )

    def test_old_reader_pinned_to_old_snapshot(self):
        """The same race as above: COPS-SNOW serves the ROT old values at
        *both* servers — in one round — by hiding the dependent write
        from the ROT that already read the old dependency."""
        system = self.build()
        sim = system.sim
        reader = system.client("r")

        do(system, "w", write_only_txn({"X0": "x0-old"}, txid="pre"))
        sim.invoke("r", read_only_txn(("X0", "X1"), txid="rot"))
        ev = sim.step("r")
        req = {m.dst: m for m in ev.sent}
        sim.deliver_msg(req["s0"])
        sim.step("s0")  # serves x0-old; rot recorded as reader
        do_frozen(system, "w", write_only_txn({"X0": "x0-new"}, txid="w0"),
                  [req["s1"]])
        do_frozen(system, "w", write_only_txn({"X1": "x1-new"}, txid="w1"),
                  [req["s1"]])
        sim.deliver_msg(req["s1"])
        sim.step("s1")  # must hide x1-new from this rot
        run_until_quiescent(sim)
        rec = reader.completed[-1]
        assert rec.reads == {"X0": "x0-old", "X1": None} or rec.reads == {
            "X0": "x0-old",
            "X1": "x1-old",
        } or rec.reads["X1"] is not None and rec.reads["X1"] != "x1-new" or (
            rec.reads["X1"] is None
        ), rec.reads
        # precisely: X1 must NOT be the new dependent value
        assert rec.reads["X1"] != "x1-new"
        from repro.analysis.metrics import analyze_transactions

        stats = analyze_transactions(sim.trace, system.history(), system.servers)
        assert stats["rot"].rounds == 1
        assert not stats["rot"].blocked

    def test_writes_hidden_only_from_old_readers(self):
        system = self.build()
        sim = system.sim
        do(system, "w", write_only_txn({"X0": "x0-old"}, txid="pre"))
        # rot1 reads the old X0 while delaying nothing else
        sim.invoke("r", read_only_txn(("X0", "X1"), txid="rot1"))
        ev = sim.step("r")
        req = {m.dst: m for m in ev.sent}
        sim.deliver_msg(req["s0"])
        sim.step("s0")
        do(system, "w", write_only_txn({"X0": "x0-new"}, txid="w0"))
        do(system, "w", write_only_txn({"X1": "x1-new"}, txid="w1"))
        run_until_quiescent(sim)
        # a *fresh* ROT sees both new values
        rec = do(system, "r", read_only_txn(("X0", "X1"), txid="rot2"))
        assert rec.reads == {"X0": "x0-new", "X1": "x1-new"}

    def test_ack_deferred_until_visible(self):
        """A dependent write is acknowledged only after its readers check,
        so a client's next transaction can rely on it being visible."""
        system = self.build()
        sim = system.sim
        do(system, "w", write_only_txn({"X0": "a"}, txid="w0"))
        do(system, "w", write_only_txn({"X1": "b"}, txid="w1"))  # dep on X0
        server = system.server("s1")
        chain = server.versions("X1")
        assert chain[-1].visible
        assert chain[-1].value == "b"


# ---------------------------------------------------------------------------
# snapshot family: blocking vs pre-stabilized
# ---------------------------------------------------------------------------


class TestSnapshotFamily:
    def _race(self, protocol):
        """Writer advances its dependency time; a dependent read at the
        other server exposes blocking (or not)."""
        system = build_system(
            protocol, objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )
        do(system, "w", write_only_txn({"X0": "a"}, txid="w0"))
        rec = do(system, "w", read_only_txn(("X0", "X1"), txid="rot_w"))
        assert rec.reads["X0"] == "a"  # read-your-writes
        rec2 = do(system, "r", read_only_txn(("X0", "X1"), txid="rot_r"))
        from repro.analysis.metrics import analyze_transactions

        stats = analyze_transactions(
            system.sim.trace, system.history(), system.servers
        )
        return stats

    @pytest.mark.parametrize("protocol", ["gentlerain", "orbe"])
    def test_fresh_family_blocks_under_dependencies(self, protocol):
        stats = self._race(protocol)
        assert stats["rot_w"].rounds == 2
        # the writer's own ROT pushes its dependency time: blocking occurs
        assert stats["rot_w"].blocked

    @pytest.mark.parametrize("protocol", ["contrarian", "wren"])
    def test_stable_family_never_blocks(self, protocol):
        stats = self._race(protocol)
        assert all(not s.blocked for s in stats.values())
        assert stats["rot_w"].rounds == 2

    @pytest.mark.parametrize(
        "protocol", ["gentlerain", "orbe", "contrarian", "wren", "cure"]
    )
    def test_one_value_per_object(self, protocol):
        stats = self._race(protocol)
        for s in stats.values():
            assert s.max_values_per_object <= 1
            assert s.unrequested_values == 0

    def test_wren_prepared_txn_holds_frontier(self):
        """A prepared-but-uncommitted write transaction must keep the
        stable frontier below its timestamp so snapshots cannot straddle
        the commit."""
        system = build_system(
            "wren", objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )
        sim = system.sim
        from repro.txn.types import write_only_txn as wtx

        sim.invoke("w", wtx({"X0": "a", "X1": "b"}, txid="big"))
        sim.step("w")  # prepares sent
        for m in list(sim.network.pending(dst="s0")):
            sim.deliver_msg(m)
        sim.step("s0")  # s0 prepared; commit never arrives yet
        server = system.server("s0")
        assert server.prepared
        assert server.local_stable() < server.clock

    def test_cure_vector_snapshot_covers_own_writes(self):
        system = build_system(
            "cure", objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )
        do(system, "w", write_only_txn({"X0": "a", "X1": "b"}, txid="t"))
        rec = do(system, "w", read_only_txn(("X0", "X1"), txid="r"))
        assert rec.reads == {"X0": "a", "X1": "b"}


# ---------------------------------------------------------------------------
# Spanner: locks, commit-wait, safe time
# ---------------------------------------------------------------------------


class TestSpanner:
    def build(self, eps=4):
        return build_system(
            "spanner",
            objects=("X0", "X1"),
            n_servers=2,
            clients=("w1", "w2", "r"),
            epsilon=eps,
        )

    def test_commit_wait_enforced(self):
        system = self.build(eps=6)
        sim = system.sim
        before = sim.event_count
        do(system, "w1", write_only_txn({"X0": "a", "X1": "b"}, txid="t"))
        # commit-wait forces the wall clock past commit_ts: many events
        assert sim.event_count - before > 6

    def test_read_blocks_behind_prepared(self):
        system = self.build()
        sim = system.sim
        sim.invoke("w1", write_only_txn({"X0": "a", "X1": "b"}, txid="big"))
        sim.step("w1")
        m = sim.network.pending(dst="s0")[0]
        sim.deliver_msg(m)
        sim.step("s0")  # coordinator s0 starts 2PC; prepares locally
        server = system.server("s0")
        assert server.prepared_ts or server.coordinating
        # a ROT now must wait behind the prepare; whichever side of the
        # commit timestamp its read_ts lands on, the snapshot is whole
        rec = do(system, "r", read_only_txn(("X0", "X1"), txid="rot"))
        assert rec.reads in (
            {"X0": BOTTOM, "X1": BOTTOM},
            {"X0": "a", "X1": "b"},
        )
        rec2 = do(system, "r", read_only_txn(("X0", "X1"), txid="rot2"))
        assert rec2.reads == {"X0": "a", "X1": "b"}
        from repro.analysis.metrics import analyze_transactions

        stats = analyze_transactions(sim.trace, system.history(), system.servers)
        assert stats["rot"].rounds == 1  # single round...
        assert stats["rot"].blocked  # ...but blocking

    def test_conflicting_writes_serialized_by_locks(self):
        system = self.build()
        do(system, "w1", write_only_txn({"X0": "a1", "X1": "b1"}))
        do(system, "w2", write_only_txn({"X0": "a2", "X1": "b2"}))
        rec = do(system, "r", read_only_txn(("X0", "X1")))
        assert rec.reads in (
            {"X0": "a1", "X1": "b1"},
            {"X0": "a2", "X1": "b2"},
        )

    def test_strict_serializability_verified(self):
        from repro.consistency import check_strict_serializable

        system = self.build()
        do(system, "w1", write_only_txn({"X0": "a1", "X1": "b1"}))
        do(system, "r", read_only_txn(("X0", "X1")))
        do(system, "w2", write_only_txn({"X1": "b2"}))
        do(system, "r", read_only_txn(("X0", "X1")))
        res = check_strict_serializable(system.history())
        assert res.serializable

    def test_rw_transaction(self):
        system = self.build()
        do(system, "w1", write_only_txn({"X0": "10"}))
        from repro.txn.types import rw_txn

        rec = do(system, "w2", rw_txn(["X0"], {"X1": "derived"}))
        assert rec.reads["X0"] == "10"
        rec2 = do(system, "r", read_only_txn(("X0", "X1")))
        assert rec2.reads["X1"] == "derived"

    def test_no_deadlock_on_crossed_transactions(self):
        # two rw transactions with opposite object orders; sorted-server
        # sequential prepares must prevent deadlock
        system = self.build()
        sim = system.sim
        from repro.txn.types import rw_txn

        sim.invoke("w1", rw_txn(["X0"], {"X1": "a"}, txid="t1"))
        sim.invoke("w2", rw_txn(["X1"], {"X0": "b"}, txid="t2"))
        run_until_quiescent(sim, max_events=100_000)
        assert len(system.client("w1").completed) == 1
        assert len(system.client("w2").completed) == 1


# ---------------------------------------------------------------------------
# Calvin: global order, gap buffering
# ---------------------------------------------------------------------------


class TestCalvin:
    def build(self):
        return build_system(
            "calvin", objects=("X0", "X1"), n_servers=2, clients=("a", "b", "r")
        )

    def test_all_servers_apply_same_order(self):
        system = self.build()
        do(system, "a", write_only_txn({"X0": "a1", "X1": "a2"}))
        do(system, "b", write_only_txn({"X0": "b1", "X1": "b2"}))
        rec = do(system, "r", read_only_txn(("X0", "X1")))
        assert rec.reads in (
            {"X0": "a1", "X1": "a2"},
            {"X0": "b1", "X1": "b2"},
        )

    def test_out_of_order_batch_buffered(self):
        system = self.build()
        sim = system.sim
        # two transactions through the sequencer in separate batches
        sim.invoke("a", write_only_txn({"X0": "first"}, txid="t1"))
        sim.step("a")
        sim.deliver_msg(sim.network.pending(dst="seq0")[0])
        sim.step("seq0")  # batch 1 sent
        sim.invoke("b", write_only_txn({"X0": "second"}, txid="t2"))
        sim.step("b")
        sim.deliver_msg(sim.network.pending(dst="seq0")[0])
        sim.step("seq0")  # batch 2 sent
        batches = sim.network.pending(src="seq0", dst="s0")
        assert len(batches) == 2
        # deliver the SECOND batch first: the server must buffer it
        sim.deliver_msg(batches[1])
        sim.step("s0")
        server = system.server("s0")
        assert server.buffered and server.next_slot == 0
        assert server.latest("X0").value != "second"
        sim.deliver_msg(batches[0])
        sim.step("s0")
        assert not server.buffered
        assert server.latest("X0").value == "second"

    def test_strict_serializability(self):
        from repro.consistency import check_strict_serializable

        system = self.build()
        do(system, "a", write_only_txn({"X0": "1", "X1": "1"}))
        do(system, "r", read_only_txn(("X0", "X1")))
        do(system, "b", write_only_txn({"X0": "2"}))
        do(system, "r", read_only_txn(("X0", "X1")))
        assert check_strict_serializable(system.history()).serializable


# ---------------------------------------------------------------------------
# RAMP & Eiger: fractured-read repair
# ---------------------------------------------------------------------------


class TestAtomicVisibilityRepair:
    @pytest.mark.parametrize("protocol", ["ramp", "eiger"])
    def test_read_racing_commit_is_repaired(self, protocol):
        """Deliver a ROT's two requests on either side of a commit: the
        second round must repair the torn snapshot."""
        system = build_system(
            protocol, objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )
        sim = system.sim
        do(system, "w", write_only_txn({"X0": "a0", "X1": "b0"}, txid="t0"))
        sim.invoke("r", read_only_txn(("X0", "X1"), txid="rot"))
        ev = sim.step("r")
        req = {m.dst: m for m in ev.sent}
        sim.deliver_msg(req["s0"])
        sim.step("s0")  # old X0 served
        do_frozen(system, "w", write_only_txn({"X0": "a1", "X1": "b1"}, txid="t1"),
                  [req["s1"]])
        sim.deliver_msg(req["s1"])
        sim.step("s1")  # new X1 served, with sibling metadata
        run_until_quiescent(sim)
        rec = system.client("r").completed[-1]
        # read atomicity: if it saw b1 it must have repaired X0 to a1
        if rec.reads["X1"] == "b1":
            assert rec.reads["X0"] == "a1"

    @pytest.mark.parametrize("protocol", ["ramp", "eiger"])
    def test_fetch_from_prepared(self, protocol):
        """Round-2 fetch by exact version must be served even if the
        commit message has not arrived at that server (non-blocking)."""
        system = build_system(
            protocol, objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )
        sim = system.sim
        do(system, "w", write_only_txn({"X0": "a0", "X1": "b0"}, txid="t0"))
        # start the second write txn but withhold s0's COMMIT
        sim.invoke("w", write_only_txn({"X0": "a1", "X1": "b1"}, txid="t1"))
        guard = 0
        while len(system.client("w").completed) < 2 and guard < 1000:
            guard += 1
            # deliver everything except commit messages to s0
            progressed = False
            for m in sim.network.pending():
                from repro.protocols.base import WriteRequest

                if (
                    isinstance(m.payload, WriteRequest)
                    and m.payload.kind == "commit"
                    and m.dst == "s0"
                ):
                    continue
                sim.deliver_msg(m)
                progressed = True
            for pid in ("w", "s0", "s1"):
                if sim.network.income[pid]:
                    sim.step(pid)
                    progressed = True
            if not progressed:
                break
        # t1 cannot complete (s0's commit withheld); but s1 committed it.
        rec = do(system, "r", read_only_txn(("X0", "X1"), txid="rot"))
        if rec.reads["X1"] == "b1":
            assert rec.reads["X0"] == "a1"  # served from s0's prepared set

    def test_ramp_history_read_atomic(self):
        from repro.consistency import check_read_atomic

        system = build_system(
            "ramp", objects=("X0", "X1", "X2"), n_servers=2,
            clients=("w", "r1", "r2"),
        )
        do(system, "w", write_only_txn({"X0": "a", "X1": "b"}))
        do(system, "r1", read_only_txn(("X0", "X1")))
        do(system, "w", write_only_txn({"X1": "b2", "X2": "c2"}))
        do(system, "r2", read_only_txn(("X1", "X2")))
        assert check_read_atomic(system.history())


# ---------------------------------------------------------------------------
# COPS-RW: the N+R+W sketch ships values wholesale
# ---------------------------------------------------------------------------


class TestCopsRw:
    def test_one_round_causal_via_attachments(self):
        system = build_system(
            "cops_rw", objects=("X0", "X1"), n_servers=2, clients=("w", "r")
        )
        sim = system.sim
        do(system, "w", write_only_txn({"X0": "x0-old"}, txid="pre"))
        sim.invoke("r", read_only_txn(("X0", "X1"), txid="rot"))
        ev = sim.step("r")
        req = {m.dst: m for m in ev.sent}
        sim.deliver_msg(req["s0"])
        sim.step("s0")  # old X0 served
        do_frozen(
            system, "w",
            write_only_txn({"X0": "x0-new", "X1": "x1-new"}, txid="t"),
            [req["s1"]],
        )
        sim.deliver_msg(req["s1"])
        sim.step("s1")  # new X1 + attached sibling x0-new
        run_until_quiescent(sim)
        rec = system.client("r").completed[-1]
        # the client repairs X0 from the attachment: still one round
        assert rec.reads == {"X0": "x0-new", "X1": "x1-new"}
        from repro.analysis.metrics import analyze_transactions

        stats = analyze_transactions(sim.trace, system.history(), system.servers)
        assert stats["rot"].rounds == 1
        assert not stats["rot"].blocked
        # ... and the one-value property is duly violated
        assert (
            stats["rot"].max_values_per_object > 1
            or stats["rot"].unrequested_values > 0
        )
