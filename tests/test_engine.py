"""The exploration engine's contracts: equivalence, reduction, soundness.

Three layers of evidence that :mod:`repro.engine` is a faithful — and
strictly cheaper — replacement for brute-force schedule enumeration:

* **Strategy equivalence** (per protocol): DFS, BFS and the parallel
  frontier explore the same reduced schedule space, so verdicts and the
  union of violating-history anomalies are identical.
* **POR equivalence + reduction** (full scope, slow): on the two seed
  scenarios the sleep-set/canonical-quotient search returns the same
  verdict and the same anomaly set as the unreduced DFS while expanding
  at least 2x fewer states — the acceptance gate for the reduction.
* **Independence soundness** (empirical diamond property): for sampled
  reachable configurations, every pair of enabled events the relation
  declares independent commutes — both orders land in the same
  canonical fingerprint with the same enabled sets.  This is the local
  condition the Mazurkiewicz-trace argument needs; checking it on real
  protocol states guards the hand-written relation against drift.
"""

import pytest

from repro.core.explore import explore_write_read_race
from repro.engine import ExplorationResult
from repro.protocols import REGISTRY

#: every POR-safe protocol, with a depth that keeps the reduced search
#: exhaustive-or-cheap, and the expected write/read-race verdict
MATRIX = {
    "fastclaim": (26, True),
    "cops": (26, False),
    "cops_snow": (26, False),
    "cops_rw": (26, False),
    "eiger": (22, False),
    "ramp": (22, False),
    "ramp_small": (18, False),
    "occult": (18, False),
    "handshake": (26, True),
    "calvin": (26, False),
}


def anomaly_union(result: ExplorationResult):
    return frozenset(
        str(a) for _, anomalies in result.violations for a in anomalies
    )


def test_matrix_covers_every_por_safe_protocol():
    por_safe = {name for name, info in REGISTRY.items() if info.por_safe}
    assert por_safe == set(MATRIX)


@pytest.mark.parametrize("protocol", sorted(MATRIX))
def test_strategies_and_workers_agree(protocol):
    """DFS / BFS / workers=2 (all POR): same verdict, same anomaly set."""
    depth, expect_violation = MATRIX[protocol]
    arms = {
        key: explore_write_read_race(
            protocol,
            max_depth=depth,
            max_states=60_000,
            first_violation_only=False,
            por=True,
            **kw,
        )
        for key, kw in [
            ("dfs", {}),
            ("bfs", dict(strategy="bfs")),
            ("workers2", dict(workers=2)),
        ]
    }
    for key, r in arms.items():
        assert r.violation_found == expect_violation, (protocol, key)
        assert not r.exhausted, (protocol, key)
    assert (
        anomaly_union(arms["dfs"])
        == anomaly_union(arms["bfs"])
        == anomaly_union(arms["workers2"])
    )


#: the two seed scenarios of the POR acceptance gate, at full scope
#: (depth past quiescence, zero truncation — the verdict is exhaustive)
FULL_SCOPE = {"fastclaim": 18, "cops": 22}


@pytest.mark.slow
@pytest.mark.parametrize("protocol", sorted(FULL_SCOPE))
def test_por_identical_verdict_2x_fewer_states(protocol):
    depth = FULL_SCOPE[protocol]
    kw = dict(
        max_depth=depth, max_states=80_000, first_violation_only=False
    )
    plain = explore_write_read_race(protocol, **kw)
    reduced = explore_write_read_race(protocol, por=True, **kw)
    # both explorations cover the entire scope...
    for r in (plain, reduced):
        assert r.truncated == 0 and not r.exhausted
    # ...agree on the verdict and on *which* anomalies exist...
    assert plain.violation_found == reduced.violation_found
    assert anomaly_union(plain) == anomaly_union(reduced)
    # ...and the reduction pays: >= 2x fewer expanded configurations
    assert plain.states_visited >= 2 * reduced.states_visited, (
        plain.states_visited,
        reduced.states_visited,
    )


def test_workers_bit_identical_first_violation():
    """The parallel frontier reports the same first violation as serial."""
    kw = dict(max_depth=30, max_states=60_000, por=True)
    serial = explore_write_read_race("fastclaim", workers=1, **kw)
    fanned = explore_write_read_race("fastclaim", workers=2, **kw)
    assert serial.violation_found and fanned.violation_found
    s_sched, s_anoms = serial.violations[0]
    f_sched, f_anoms = fanned.violations[0]
    assert s_sched == f_sched
    assert [str(a) for a in s_anoms] == [str(a) for a in f_anoms]


def test_workers_auto_serial_on_tiny_scope():
    """A tiny scope answers a ``workers=2`` request serially.

    The POR-reduced fastclaim scope is ~128 states — far below the
    serial probe budget — so the parallel wrapper must skip the pool and
    return the serial result verbatim: same counts, same first
    violation, flagged ``auto_serial``.
    """
    kw = dict(max_depth=30, max_states=60_000, por=True)
    serial = explore_write_read_race("fastclaim", workers=1, **kw)
    fanned = explore_write_read_race("fastclaim", workers=2, **kw)
    assert fanned.auto_serial and not serial.auto_serial
    assert "(auto-serial)" in fanned.describe()
    assert (
        fanned.states_visited,
        fanned.states_deduped,
        fanned.schedules_completed,
        fanned.truncated,
    ) == (
        serial.states_visited,
        serial.states_deduped,
        serial.schedules_completed,
        serial.truncated,
    )
    assert fanned.violations == serial.violations


def test_workers_pool_path_forced(monkeypatch):
    """With the probe disabled the pool really runs — and still matches.

    Guards the pool machinery itself now that small scopes normally
    auto-serial: verdict, anomaly union and the bit-identical first
    violation must survive the fan-out.
    """
    from repro.engine import parallel

    monkeypatch.setattr(parallel, "SERIAL_PROBE_STATES", 0)
    kw = dict(max_depth=30, max_states=60_000, por=True)
    serial = explore_write_read_race("fastclaim", workers=1, **kw)
    fanned = explore_write_read_race("fastclaim", workers=2, **kw)
    assert not fanned.auto_serial
    assert serial.violation_found and fanned.violation_found
    assert fanned.violations[0] == serial.violations[0]


def test_workers_root_dedup_on_strict_keyed_seeding(monkeypatch):
    """Strict-keyed frontier roots are deduped by canonical fingerprint.

    A first-violation run seeds with strict keys (no shared claim set),
    so roots reached by different orders of commuting events look
    distinct; the pre-ship dedup must recompute canonical prints (via
    the batched restore sweep) and collapse them — fewer payloads, same
    first violation as serial.
    """
    from repro.engine import parallel

    monkeypatch.setattr(parallel, "SERIAL_PROBE_STATES", 0)
    shipped = {}
    orig = parallel._dedup_roots

    def spy(sim, roots, canonical, partial):
        kept = orig(sim, roots, canonical, partial)
        shipped["before"], shipped["after"] = len(roots), len(kept)
        return kept

    monkeypatch.setattr(parallel, "_dedup_roots", spy)
    kw = dict(max_depth=18, max_states=60_000, first_violation_only=True)
    serial = explore_write_read_race("fastclaim", workers=1, **kw)
    fanned = explore_write_read_race("fastclaim", workers=2, **kw)
    assert not fanned.auto_serial
    assert shipped["after"] < shipped["before"]  # dedup actually bites
    assert serial.violation_found and fanned.violation_found
    assert fanned.violations[0][0] == serial.violations[0][0]


def test_workers_shared_quotient_deterministic(monkeypatch):
    """Exhaustive pool runs explore the shared canonical quotient.

    With the cross-worker claim set every canonical class is expanded
    exactly once pool-wide, so the merged counts are bit-identical run
    to run (no wall-clock dependence), never exceed the serial count,
    and the anomaly union matches serial exactly.  The seeding walk
    keys canonically too, so duplicate roots never even materialize.
    """
    from repro.engine import parallel

    monkeypatch.setattr(parallel, "SERIAL_PROBE_STATES", 0)
    kw = dict(max_depth=10, max_states=60_000, first_violation_only=False)
    serial = explore_write_read_race("fastclaim", workers=1, **kw)
    fanned = explore_write_read_race("fastclaim", workers=2, **kw)
    assert not fanned.auto_serial
    assert fanned.violation_found == serial.violation_found
    assert anomaly_union(fanned) == anomaly_union(serial)
    assert fanned.states_visited <= serial.states_visited
    assert fanned.shared_seen_hits > 0  # cross-worker dedup actually ran
    again = explore_write_read_race("fastclaim", workers=2, **kw)
    assert (
        fanned.states_visited,
        fanned.states_deduped,
        fanned.schedules_completed,
        fanned.truncated,
    ) == (
        again.states_visited,
        again.states_deduped,
        again.schedules_completed,
        again.truncated,
    )


def test_dedup_roots_sleep_subset_rule():
    """The dedup drop rule mirrors the seen-set's sleep-subset logic.

    POR path is pure (uses ``node.fingerprint`` directly), so it unit
    tests without a simulation: a later root falls only to an earlier
    kept root with the same canonical print and a *subset* sleep set.
    """
    from types import SimpleNamespace

    from repro.engine.parallel import _dedup_roots

    def node(fp, sleep=()):
        return SimpleNamespace(fingerprint=fp, sleep=frozenset(sleep))

    partial = ExplorationResult(protocol="x", strategy="dfs", por=True)
    roots = [
        node(b"A", {1}),       # kept: first occurrence
        node(b"A", {1, 2}),    # dropped: {1} <= {1, 2}
        node(b"A", set()),     # kept: {} is not a superset of {1}
        node(b"B"),            # kept: new print
        node(b"A", {2, 3}),    # dropped: covered by the kept {} visit
    ]
    kept = _dedup_roots(None, roots, True, partial)
    assert [n.fingerprint for n in kept] == [b"A", b"A", b"B"]
    assert [set(n.sleep) for n in kept] == [{1}, set(), set()]
    assert partial.states_deduped == 2


def test_sweep_order_maximizes_component_sharing():
    """Pure unit test for the batched-recompute restore sweep.

    Greedy nearest-neighbour over component signatures: start at root 0,
    hop to the root sharing the most component tokens, ties to the
    lowest index.  Signature tokens compare by identity-or-equality.
    """
    from repro.engine.parallel import sweep_order

    # 0 shares 2 tokens with 2, one with 1 and 3; from 2 the best left
    # is 3 (shares "c"); 1 comes last.
    sigs = [
        ("a", "b", "x"),
        ("q", "r", "x"),
        ("a", "b", "c"),
        ("q", "b", "c"),
    ]
    assert sweep_order(sigs) == [0, 2, 3, 1]
    # ties break low: 1 and 2 both share everything with 0
    assert sweep_order([("a",), ("a",), ("a",)]) == [0, 1, 2]
    # degenerate sizes pass through
    assert sweep_order([]) == []
    assert sweep_order([("a",)]) == [0]
    assert sweep_order([("a",), ("b",)]) == [0, 1]


def test_global_budget_caps_pool(monkeypatch):
    """``max_states`` is one pool-wide budget, not per worker.

    The canonical quotient of the full-scope fastclaim scenario is ~1.3k
    states, so a 600-state cap must bind: the pool stops at <= 600
    visits in total.  ``per_worker_budget=True`` restores the old
    semantics — each worker gets the full cap — and visits more.
    """
    from repro.engine import parallel

    monkeypatch.setattr(parallel, "SERIAL_PROBE_STATES", 0)
    kw = dict(
        max_depth=18, max_states=600, first_violation_only=False, workers=2
    )
    pooled = explore_write_read_race("fastclaim", **kw)
    assert not pooled.auto_serial
    assert pooled.exhausted
    assert pooled.states_visited <= 600
    legacy = explore_write_read_race(
        "fastclaim", per_worker_budget=True, **kw
    )
    assert legacy.states_visited > pooled.states_visited


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_workers_steal_under_load_equivalence(monkeypatch, workers):
    """Skewed load: stealing rebalances, the answer doesn't move.

    The full-scope fastclaim race is heavily skewed — subtrees under the
    multi-object write dwarf the read-first subtrees — so static root
    assignment starves workers; the deque must actually migrate work.
    Under that load, at every pool width: identical verdict and anomaly
    union, pool-wide visits never above serial, and the first-violation
    arm reports the bit-identical serial trace.
    """
    from repro.engine import parallel

    monkeypatch.setattr(parallel, "SERIAL_PROBE_STATES", 0)
    kw = dict(max_depth=18, max_states=80_000, por=True)
    serial = explore_write_read_race(
        "fastclaim", first_violation_only=False, **kw
    )
    fanned = explore_write_read_race(
        "fastclaim", first_violation_only=False, workers=workers, **kw
    )
    assert not fanned.auto_serial
    assert fanned.violation_found == serial.violation_found
    assert anomaly_union(fanned) == anomaly_union(serial)
    assert fanned.states_visited <= serial.states_visited
    # first-violation arm: the bit-identical serial trace wins the merge
    s_first = explore_write_read_race("fastclaim", **kw)
    f_first = explore_write_read_race("fastclaim", workers=workers, **kw)
    assert f_first.violations[0][0] == s_first.violations[0][0]
    assert [str(a) for a in f_first.violations[0][1]] == [
        str(a) for a in s_first.violations[0][1]
    ]


def test_workers_merge_counters():
    r = explore_write_read_race(
        "cops", max_depth=26, max_states=60_000,
        first_violation_only=False, por=True, workers=2,
    )
    assert r.workers == 2
    assert r.counters is not None and r.counters.snapshots > 0


def test_por_refused_for_unsafe_protocols():
    """Synchronized-clock protocols branch on the global step counter;
    the registry says so and the wrapper refuses to reduce them."""
    unsafe = {name for name, info in REGISTRY.items() if not info.por_safe}
    assert "spanner" in unsafe and "wren" in unsafe
    for protocol in ("spanner", "wren"):
        with pytest.raises(ValueError, match="not declared POR-safe"):
            explore_write_read_race(protocol, max_depth=8, por=True)


def test_states_deduped_split():
    """Revisits are no longer folded into states_visited."""
    r = explore_write_read_race(
        "fastclaim", max_depth=18, max_states=80_000,
        first_violation_only=False,
    )
    assert r.states_deduped > 0
    assert r.steps == r.states_visited  # SearchOutcome vocabulary


@pytest.mark.parametrize("protocol", ["fastclaim", "cops"])
def test_independence_diamond_property(protocol):
    """Empirical soundness of the independence relation.

    Walk a fixed pseudo-random schedule; at each visited configuration,
    for every enabled pair declared independent, applying the two events
    in either order must reach the same canonical fingerprint and leave
    the same events enabled.
    """
    import random

    from repro.core.setup import prepare_theorem_system
    from repro.sim.events import enabled_events, independent
    from repro.txn.types import read_only_txn, write_only_txn

    tsys = prepare_theorem_system(protocol, n_probes=2)
    sim = tsys.system.sim
    if REGISTRY[protocol].supports_wtx:
        sim.invoke(tsys.cw, write_only_txn(dict(tsys.new_values), txid="Tw"))
    else:
        for i, (obj, val) in enumerate(sorted(tsys.new_values.items())):
            sim.invoke(tsys.cw, write_only_txn({obj: val}, txid=f"Tw{i}"))
    sim.invoke(tsys.probes[0], read_only_txn(tsys.objects, txid="Tr"))
    pids = (tsys.cw, tsys.probes[0]) + tuple(tsys.servers)

    rng = random.Random(7)
    checked = 0
    for _ in range(40):  # schedule prefix of 40 moves
        events = enabled_events(sim, pids)
        if not events:
            break
        here = sim.snapshot()
        for a in events:
            for b in events:
                if not independent(a, b):
                    continue
                sim.restore(here)
                a.apply(sim)
                b.apply(sim)
                fp_ab = sim.fingerprint(canonical=True)
                en_ab = set(enabled_events(sim, pids))
                sim.restore(here)
                b.apply(sim)
                a.apply(sim)
                assert sim.fingerprint(canonical=True) == fp_ab, (a, b)
                # as a *set*: enumeration order tracks msg_id numbering,
                # which is exactly what the canonical quotient masks
                assert set(enabled_events(sim, pids)) == en_ab, (a, b)
                checked += 1
        sim.restore(here)
        events[rng.randrange(len(events))].apply(sim)
    assert checked > 50  # the walk actually exercised the relation
