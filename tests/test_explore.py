"""Bounded model checker tests (small scopes to stay fast)."""

import pytest

from repro.core.explore import ExplorationResult, explore, explore_write_read_race
from repro.protocols import build_system
from repro.txn.types import read_only_txn, write_only_txn


class TestExploreBasics:
    def test_single_write_single_schedule_family(self):
        system = build_system(
            "fastclaim", objects=("X0",), n_servers=1, clients=("c0",)
        )
        res = explore(
            system,
            [("c0", write_only_txn({"X0": "v"}, txid="t"))],
            max_depth=10,
        )
        assert res.schedules_completed >= 1
        assert not res.violation_found
        assert res.states_visited > 0

    def test_dedup_prunes_states(self):
        # two independent clients: many interleavings collapse to few states
        system = build_system(
            "fastclaim", objects=("X0", "X1"), n_servers=2, clients=("c0", "c1")
        )
        res = explore(
            system,
            [
                ("c0", write_only_txn({"X0": "a"}, txid="t0")),
                ("c1", write_only_txn({"X1": "b"}, txid="t1")),
            ],
            max_depth=20,
        )
        assert res.schedules_completed >= 1
        # without dedup the tree would be thousands of nodes
        assert res.states_visited < 3000

    def test_depth_bound_reported(self):
        system = build_system(
            "fastclaim", objects=("X0",), n_servers=1, clients=("c0",)
        )
        res = explore(
            system,
            [("c0", write_only_txn({"X0": "v"}, txid="t"))],
            max_depth=2,
        )
        assert res.truncated > 0
        assert res.schedules_completed == 0

    def test_describe(self):
        res = ExplorationResult(
            protocol="p", states_visited=5, schedules_completed=2, truncated=0
        )
        assert "no causal violation" in res.describe()


@pytest.mark.slow
class TestExploreFindsTheAnomaly:
    def test_fastclaim_violating_schedule_found(self):
        res = explore_write_read_race(
            "fastclaim", max_depth=30, max_states=60_000
        )
        assert res.violation_found, res.describe()
        schedule, anomalies = res.violations[0]
        assert any("deliver" in s for s in schedule)
        assert anomalies
        # the anomaly is the Lemma-1 pattern: Tw's write missed
        assert any(a.fresher_writer == "Tw" for a in anomalies)

    def test_handshake_violating_schedule_found(self):
        res = explore_write_read_race(
            "handshake", max_depth=30, max_states=80_000, sync_hops=1
        )
        assert res.violation_found, res.describe()


@pytest.mark.slow
class TestExploreVerifiesHonest:
    @pytest.mark.parametrize("protocol", ["cops", "wren"])
    def test_no_violation_within_scope(self, protocol):
        res = explore_write_read_race(
            protocol, max_depth=22, max_states=6_000
        )
        assert not res.violation_found, res.describe()
        assert res.states_visited > 50
