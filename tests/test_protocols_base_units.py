"""Unit tests for the shared protocol plumbing: payloads, versions,
server base (store helpers, outbox, dispatch), and the stabilization
gossip."""

import pytest

from repro.protocols.base import (
    INITIAL_TS,
    ReadReply,
    ReadRequest,
    ServerBase,
    ServerMsg,
    ValueEntry,
    Version,
    WriteReply,
    WriteRequest,
)
from repro.protocols.stability import StabilizingServer
from repro.sim.executor import Simulation
from repro.sim.messages import Message
from repro.sim.process import NullProcess, StepContext
from repro.txn.types import BOTTOM


class TestPayloads:
    def test_read_reply_declares_values(self):
        reply = ReadReply(
            txid="t",
            values=(ValueEntry("X", 1),),
            aux_values=(ValueEntry("Y", 2),),
        )
        vals = reply.carried_values()
        assert {v.obj for v in vals} == {"X", "Y"}

    def test_write_request_declares_items(self):
        req = WriteRequest(
            txid="t",
            kind="write",
            items=(ValueEntry("X", 1),),
            aux_items=(ValueEntry("Z", 3),),
        )
        assert {v.obj for v in req.carried_values()} == {"X", "Z"}

    def test_empty_fields_skipped(self):
        assert ReadReply(txid="t", values=()).carried_values() == []

    def test_write_reply_carries_nothing(self):
        assert WriteReply(txid="t", kind="ack").carried_values() == []


class TestVersionChains:
    def make_server(self):
        class S(ServerBase):
            def handle_read(self, ctx, msg, req):
                pass

            def handle_write(self, ctx, msg, req):
                pass

        return S("s0", ("X",), ("s0", "s1"), {"X": ("s0",)})

    def test_initial_version(self):
        s = self.make_server()
        v = s.latest("X")
        assert v.value is BOTTOM and v.ts == INITIAL_TS

    def test_install_sorted(self):
        s = self.make_server()
        s.install(Version("X", "b", ts=(2, "s0")))
        s.install(Version("X", "a", ts=(1, "s0")))
        assert [v.value for v in s.versions("X")] == [BOTTOM, "a", "b"]
        assert s.latest("X").value == "b"

    def test_latest_with_predicate(self):
        s = self.make_server()
        s.install(Version("X", "a", ts=(1, "s0")))
        s.install(Version("X", "b", ts=(5, "s0")))
        v = s.latest("X", pred=lambda v: v.ts == INITIAL_TS or v.ts[0] <= 3)
        assert v.value == "a"

    def test_latest_skips_invisible(self):
        s = self.make_server()
        s.install(Version("X", "hidden", ts=(9, "s0"), visible=False))
        assert s.latest("X").value is BOTTOM

    def test_version_at_or_before(self):
        s = self.make_server()
        s.install(Version("X", "a", ts=(1, "s0")))
        s.install(Version("X", "b", ts=(5, "s0")))
        assert s.version_at_or_before("X", (4, "zz")).value == "a"

    def test_find_version_exact(self):
        s = self.make_server()
        s.install(Version("X", "a", ts=(1, "s0")))
        assert s.find_version("X", (1, "s0")).value == "a"
        assert s.find_version("X", (2, "s0")) is None

    def test_entry_copies_meta(self):
        v = Version("X", "a", ts=(1, "s0"), meta={"k": 1})
        e = v.entry(extra=2)
        assert e.meta == {"k": 1, "extra": 2}
        assert v.meta == {"k": 1}

    def test_stores(self):
        s = self.make_server()
        assert s.stores("X") and not s.stores("Y")


class EchoServer(ServerBase):
    """Replies to reads; used to exercise the outbox."""

    def handle_read(self, ctx, msg, req):
        self.queue_send(ctx, msg.src, ReadReply(txid=req.txid, values=()))

    def handle_write(self, ctx, msg, req):
        pass


class TestOutbox:
    def test_second_reply_queued_and_flushed(self):
        server = EchoServer("s0", ("X",), ("s0",), {"X": ("s0",)})
        sim = Simulation([server, NullProcess("c0")])
        # two read requests from the same client in one inbox
        ctx = StepContext("c0", ["s0"], 0)
        sim.network.post(
            Message(100, "c0", "s0", 0, ReadRequest(txid="a", keys=("X",)))
        )
        sim.network.post(
            Message(101, "c0", "s0", 1, ReadRequest(txid="b", keys=("X",)))
        )
        sim.deliver("c0", "s0", 0)
        sim.deliver("c0", "s0", 1)
        ev = sim.step("s0")
        assert len(ev.sent) == 1  # one per neighbour per step
        assert server.outbox and server.wants_step()
        ev2 = sim.step("s0")
        assert len(ev2.sent) == 1
        assert not server.outbox and not server.wants_step()
        txids = {m.payload.txid for m in (ev.sent + ev2.sent)}
        assert txids == {"a", "b"}

    def test_unknown_payload_rejected(self):
        server = EchoServer("s0", ("X",), ("s0",), {"X": ("s0",)})
        sim = Simulation([server, NullProcess("c0")])
        sim.network.post(Message(0, "c0", "s0", 0, object()))
        sim.deliver("c0", "s0", 0)
        with pytest.raises(TypeError):
            sim.step("s0")


class PlainStabilizer(StabilizingServer):
    def handle_read(self, ctx, msg, req):
        pass

    def handle_write(self, ctx, msg, req):
        pass


class TestStabilityGossip:
    def make_pair(self):
        placement = {"X": ("s0",), "Y": ("s1",)}
        a = PlainStabilizer("s0", ("X",), ("s0", "s1"), placement)
        b = PlainStabilizer("s1", ("Y",), ("s0", "s1"), placement)
        return Simulation([a, b]), a, b

    def test_gst_starts_conservative(self):
        _, a, _ = self.make_pair()
        assert a.gst() == 0

    def test_dirty_broadcast_and_response(self):
        sim, a, b = self.make_pair()
        from repro.sim.scheduler import run_until_quiescent

        a.clock = 10
        a._dirty = True
        run_until_quiescent(sim, max_events=5000)
        assert b.known_clocks["s0"] >= 10
        assert a.known_clocks["s1"] > 0  # the solicited response arrived
        assert a.gst() > 0

    def test_gossip_terminates(self):
        sim, a, b = self.make_pair()
        from repro.sim.scheduler import run_until_quiescent

        a._dirty = True
        n = run_until_quiescent(sim, max_events=5000)
        assert sim.quiescent()
        assert n < 100  # damped, not a storm

    def test_clock_tracks_event_counter(self):
        sim, a, _ = self.make_pair()
        sim.event_count = 500
        sim.step("s0")
        assert a.clock >= 500

    def test_stable_vector_includes_self(self):
        _, a, _ = self.make_pair()
        a.clock = 7
        vec = a.stable_vector()
        assert vec["s0"] == 7 and "s1" in vec

    def test_unknown_server_msg_rejected(self):
        sim, a, b = self.make_pair()
        sim.network.post(
            Message(0, "s1", "s0", 0, ServerMsg(kind="mystery", data={}))
        )
        sim.deliver("s1", "s0", 0)
        with pytest.raises(NotImplementedError):
            sim.step("s0")
