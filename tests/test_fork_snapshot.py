"""The fast-fork snapshot machinery: isolation, cost accounting, budgets.

The bytes-snapshot rework (``Configuration`` as one immutable pickle
blob) must preserve the old deep-copy contract exactly: a snapshot is
isolated from every future mutation of the live simulation, a restore
never aliases live state, and the exploration engine's fingerprints
reproduce the same equivalence classes.  Every contract test here runs
against both snapshot modes.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explore import explore_write_read_race
from repro.sim.events import enabled_events
from repro.core.setup import prepare_theorem_system
from repro.sim.executor import (
    Configuration,
    DeepCopyConfiguration,
    SimCounters,
    Simulation,
    use_snapshot_mode,
)
from repro.sim.scheduler import RoundRobinScheduler

from helpers import Echo, Pinger

MODES = ("bytes", "deepcopy")


def proc_states(sim):
    """Pickled per-process protocol state (dirty counters excluded)."""
    return {
        pid: pickle.dumps(p.__getstate__()) for pid, p in sim.processes.items()
    }


def run_some(sim, tsys, events=6):
    sched = RoundRobinScheduler()
    pids = (tsys.cw,) + tuple(tsys.servers)
    for _ in range(events):
        sched.tick(sim, pids=pids)


# ---------------------------------------------------------------------------
# Snapshot isolation on a protocol with nested state (Wren: 2PC prepared
# maps, write caches, vector frontiers)
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    @pytest.mark.parametrize("mode", MODES)
    def test_live_mutation_does_not_touch_snapshot(self, mode):
        with use_snapshot_mode(mode):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            sim.invoke(tsys.cw, tsys.tw())
            run_some(sim, tsys)
            snap = sim.snapshot()
            frozen = proc_states(sim)
            fp = sim.fingerprint(snap)
            # mutate the live sim well past the snapshot
            run_some(sim, tsys, events=12)
            assert proc_states(sim) != frozen  # the run did change state
            sim.restore(snap)
            assert proc_states(sim) == frozen
            assert sim.fingerprint() == fp

    @pytest.mark.parametrize("mode", MODES)
    def test_mutating_restored_state_does_not_touch_snapshot(self, mode):
        with use_snapshot_mode(mode):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            sim.invoke(tsys.cw, tsys.tw())
            run_some(sim, tsys)
            snap = sim.snapshot()
            frozen = proc_states(sim)
            sim.restore(snap)
            run_some(sim, tsys, events=12)  # mutate the restored branch
            sim.restore(snap)  # the snapshot must still be pristine
            assert proc_states(sim) == frozen

    def test_materialized_views_are_private(self):
        # bytes-mode only: a DeepCopyConfiguration hands out the held
        # objects themselves (the old contract — restore forks, direct
        # access aliases); the blob snapshot deserializes a private copy
        # on every access
        with use_snapshot_mode("bytes"):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            sim.invoke(tsys.cw, tsys.tw())
            run_some(sim, tsys)
            snap = sim.snapshot()
            frozen = proc_states(sim)
            view = snap.processes
            # trash the materialized copy; the snapshot must not notice
            for p in view.values():
                p.__dict__.clear()
            sim.restore(snap)
            assert proc_states(sim) == frozen

    def test_fork_shares_immutable_blob(self):
        tsys = prepare_theorem_system("wren")
        sim = tsys.sim
        snap = sim.snapshot()
        fork = snap.fork()
        assert isinstance(snap, Configuration)
        assert fork.blob is snap.blob  # O(1): no bytes are copied
        assert fork.size_bytes() == snap.size_bytes() > 0

    def test_deepcopy_fork_is_independent(self):
        with use_snapshot_mode("deepcopy"):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            snap = sim.snapshot()
            assert isinstance(snap, DeepCopyConfiguration)
            fork = snap.fork()
            assert fork.processes is not snap.processes
            assert fork.size_bytes() > 0


# ---------------------------------------------------------------------------
# Mode equivalence: the fast path must reproduce the reference exploration
# ---------------------------------------------------------------------------


class TestModeEquivalence:
    @pytest.mark.parametrize("protocol", ["fastclaim", "cops"])
    def test_exploration_identical_across_modes(self, protocol):
        results = {}
        for mode in MODES:
            with use_snapshot_mode(mode):
                r = explore_write_read_race(
                    protocol, max_depth=14, max_states=4_000
                )
            results[mode] = (
                r.states_visited,
                r.schedules_completed,
                r.truncated,
                sorted(tuple(s) for s, _ in r.violations),
            )
        assert results["bytes"] == results["deepcopy"]


# ---------------------------------------------------------------------------
# Cost accounting
# ---------------------------------------------------------------------------


class TestSimCounters:
    def test_counters_track_snapshot_restore_fingerprint(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        snap = sim.snapshot()
        sim.fingerprint(snap)
        sim.step("p")
        sim.restore(snap)
        c = sim.counters
        assert c.snapshots == 1
        assert c.restores == 1
        assert c.fingerprints == 1
        assert c.bytes_serialized > 0

    def test_unchanged_state_reuses_serialization(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        sim.snapshot()
        before = sim.counters.bytes_serialized
        sim.snapshot()  # no event in between: the cached blob is reused
        assert sim.counters.bytes_serialized == before
        assert sim.counters.cache_hits >= 1
        assert sim.counters.bytes_reused > 0

    def test_restore_to_current_state_keeps_live_objects(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        snap = sim.snapshot()
        procs = sim.processes
        sim.restore(snap)  # nothing happened: live state already matches
        assert sim.counters.restore_reuses == 1
        assert sim.processes is procs

    def test_restore_after_event_materializes_fresh_objects(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        snap = sim.snapshot()
        procs = sim.processes
        sim.step("p")
        sim.restore(snap)
        assert sim.processes is not procs
        assert sim.counters.bytes_restored > 0

    def test_describe_and_as_dict(self):
        c = SimCounters(snapshots=3, restores=2, fingerprints=1,
                        bytes_serialized=100, bytes_reused=300)
        text = c.describe()
        assert "3 snapshots" in text and "2 restores" in text
        d = c.as_dict()
        assert d["snapshots"] == 3 and d["bytes_reused"] == 300

    def test_exploration_surfaces_counters(self):
        r = explore_write_read_race("fastclaim", max_depth=10, max_states=500)
        assert r.counters is not None
        assert r.counters.snapshots > 0
        assert "cost:" in r.describe()


# ---------------------------------------------------------------------------
# The max_states budget
# ---------------------------------------------------------------------------


class TestStateBudget:
    def test_budget_cuts_search_immediately(self):
        r = explore_write_read_race(
            "cops", max_depth=22, max_states=200, first_violation_only=False
        )
        # the budget check counts the state that overflows it, then stops
        # all descent: exactly one state past the budget is ever visited
        assert r.states_visited == 201
        assert r.truncated >= 1

    def test_budget_truncation_counts_cut_siblings(self):
        small = explore_write_read_race("cops", max_depth=22, max_states=200)
        big = explore_write_read_race("cops", max_depth=22, max_states=6_000)
        assert big.states_visited == 6_001
        # a deeper budget explores strictly more and truncates elsewhere
        assert big.schedules_completed > small.schedules_completed

    def test_unbudgeted_run_not_truncated(self):
        r = explore_write_read_race("fastclaim", max_depth=8, max_states=10**6)
        # shallow depth truncates, but never via the state budget
        assert r.states_visited < 10**6


# ---------------------------------------------------------------------------
# Fingerprint properties (hypothesis): equal prefixes agree, any extra
# event disagrees — this is the property that guards the dirty-tracked
# fingerprint cache (a missing mark_dirty would serve a stale fingerprint
# and break the second half)
# ---------------------------------------------------------------------------


def fresh_sim():
    return Simulation([Pinger("p", "e", n=3), Echo("e")])


def apply_choices(sim, choices):
    """Drive the sim by the explorer's own enabled-event menu."""
    applied = 0
    for c in choices:
        events = enabled_events(sim, ("p", "e"))
        if not events:
            break
        events[c % len(events)].apply(sim)
        applied += 1
    return applied


class TestFingerprintProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=12))
    def test_same_prefix_same_fingerprint(self, choices):
        a, b = fresh_sim(), fresh_sim()
        apply_choices(a, choices)
        apply_choices(b, choices)
        assert a.fingerprint() == b.fingerprint()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=7), max_size=10),
        st.integers(min_value=0, max_value=7),
    )
    def test_extra_event_changes_fingerprint(self, choices, extra):
        sim = fresh_sim()
        apply_choices(sim, choices)
        fp = sim.fingerprint()
        if apply_choices(sim, [extra]) == 0:
            return  # quiescent: no extra event exists
        assert sim.fingerprint() != fp

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=10))
    def test_fingerprint_stable_across_snapshot_restore(self, choices):
        sim = fresh_sim()
        apply_choices(sim, choices)
        snap = sim.snapshot()
        fp = sim.fingerprint(snap)
        apply_choices(sim, [0, 1, 2])
        sim.restore(snap)
        assert sim.fingerprint() == fp
