"""The fast-fork snapshot machinery: isolation, cost accounting, budgets.

The component-granular snapshot rework (``Configuration`` as one pickle
sub-blob per process plus a structural network capture, restored as a
delta) must preserve the old deep-copy contract exactly: a snapshot is
isolated from every future mutation of the live simulation, a restore
never hands out mutable state aliased with the snapshot, and the
exploration engine's fingerprints reproduce the same equivalence
classes.  Every contract test here runs against all three snapshot
modes — the delta path, the retained monolithic blob path, and the
deep-copy oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explore import explore_write_read_race
from repro.sim.events import enabled_events
from repro.core.setup import prepare_theorem_system
from repro.sim.executor import (
    BlobConfiguration,
    Configuration,
    DeepCopyConfiguration,
    SimCounters,
    Simulation,
    use_snapshot_mode,
)
from repro.sim.scheduler import RoundRobinScheduler

from helpers import Echo, Pinger

MODES = ("bytes", "blob", "deepcopy")


def proc_states(sim):
    """Canonical per-process protocol state (dirty counters excluded).

    Serialized with the identity-blind canonical dump, not a raw
    ``pickle.dumps``: a raw pickle's memo encodes object-*sharing*
    topology, which is not part of the semantic state (restoring a
    snapshot materializes value-equal objects whose sharing may differ
    from the originals — ``copy.deepcopy`` and ``pickle.loads`` already
    disagree about it).  The canonical dump is exact on values, which is
    the relation every verdict and fingerprint is defined over.
    """
    return {
        pid: Simulation._dumps_canonical(p.__getstate__())
        for pid, p in sim.processes.items()
    }


def run_some(sim, tsys, events=6):
    sched = RoundRobinScheduler()
    pids = (tsys.cw,) + tuple(tsys.servers)
    for _ in range(events):
        sched.tick(sim, pids=pids)


# ---------------------------------------------------------------------------
# Snapshot isolation on a protocol with nested state (Wren: 2PC prepared
# maps, write caches, vector frontiers)
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    @pytest.mark.parametrize("mode", MODES)
    def test_live_mutation_does_not_touch_snapshot(self, mode):
        with use_snapshot_mode(mode):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            sim.invoke(tsys.cw, tsys.tw())
            run_some(sim, tsys)
            snap = sim.snapshot()
            frozen = proc_states(sim)
            fp = sim.fingerprint(snap)
            # mutate the live sim well past the snapshot
            run_some(sim, tsys, events=12)
            assert proc_states(sim) != frozen  # the run did change state
            sim.restore(snap)
            assert proc_states(sim) == frozen
            assert sim.fingerprint() == fp

    @pytest.mark.parametrize("mode", MODES)
    def test_mutating_restored_state_does_not_touch_snapshot(self, mode):
        with use_snapshot_mode(mode):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            sim.invoke(tsys.cw, tsys.tw())
            run_some(sim, tsys)
            snap = sim.snapshot()
            frozen = proc_states(sim)
            sim.restore(snap)
            run_some(sim, tsys, events=12)  # mutate the restored branch
            sim.restore(snap)  # the snapshot must still be pristine
            assert proc_states(sim) == frozen

    @pytest.mark.parametrize("mode", ["bytes", "blob"])
    def test_materialized_views_are_private(self, mode):
        # serialized modes only: a DeepCopyConfiguration hands out the
        # held objects themselves (the old contract — restore forks,
        # direct access aliases); the serialized snapshots materialize a
        # private copy on every access
        with use_snapshot_mode(mode):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            sim.invoke(tsys.cw, tsys.tw())
            run_some(sim, tsys)
            snap = sim.snapshot()
            frozen = proc_states(sim)
            view = snap.processes
            # trash the materialized copy; the snapshot must not notice
            for p in view.values():
                p.__dict__.clear()
            sim.restore(snap)
            assert proc_states(sim) == frozen

    def test_fork_shares_immutable_captures(self):
        tsys = prepare_theorem_system("wren")
        sim = tsys.sim
        snap = sim.snapshot()
        fork = snap.fork()
        assert isinstance(snap, Configuration)
        # O(1): the per-component captures are shared, not copied
        assert fork.proc_blobs is snap.proc_blobs
        assert fork.net_state is snap.net_state
        assert fork.size_bytes() == snap.size_bytes() > 0

    def test_blob_mode_fork_shares_immutable_blob(self):
        with use_snapshot_mode("blob"):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            snap = sim.snapshot()
            fork = snap.fork()
            assert isinstance(snap, BlobConfiguration)
            assert fork.blob is snap.blob  # O(1): no bytes are copied
            assert fork.size_bytes() == snap.size_bytes() > 0

    def test_consecutive_snapshots_share_clean_components(self):
        # after one event, a new snapshot re-captures only the touched
        # components; every clean sub-blob is the *same* object as the
        # previous snapshot's
        tsys = prepare_theorem_system("wren")
        sim = tsys.sim
        sim.invoke(tsys.cw, tsys.tw())
        run_some(sim, tsys)
        snap1 = sim.snapshot()
        sim.step(tsys.cw)  # touches cw (and the network, via its sends)
        snap2 = sim.snapshot()
        blobs1, blobs2 = dict(snap1.proc_blobs), dict(snap2.proc_blobs)
        assert blobs1.keys() == blobs2.keys()
        shared = [pid for pid in blobs1 if blobs1[pid] is blobs2[pid]]
        assert set(blobs1) - set(shared) == {tsys.cw}

    def test_delta_restore_touches_only_changed_components(self):
        # a backtrack after a single step re-materializes that process
        # (plus the network when the step moved messages), keeping every
        # other process object live
        tsys = prepare_theorem_system("wren")
        sim = tsys.sim
        sim.invoke(tsys.cw, tsys.tw())
        run_some(sim, tsys)
        snap = sim.snapshot()
        sim.fingerprint(snap)
        before = {pid: p for pid, p in sim.processes.items()}
        sim.step(tsys.cw)
        base = sim.counters.components_restored
        sim.restore(snap)
        assert sim.counters.components_restored - base <= 2  # cw + network
        for pid, p in sim.processes.items():
            if pid == tsys.cw:
                assert p is not before[pid]
            else:
                assert p is before[pid]

    def test_deepcopy_fork_is_independent(self):
        with use_snapshot_mode("deepcopy"):
            tsys = prepare_theorem_system("wren")
            sim = tsys.sim
            snap = sim.snapshot()
            assert isinstance(snap, DeepCopyConfiguration)
            fork = snap.fork()
            assert fork.processes is not snap.processes
            assert fork.size_bytes() > 0


# ---------------------------------------------------------------------------
# Mode equivalence: the fast path must reproduce the reference exploration
# ---------------------------------------------------------------------------


class TestModeEquivalence:
    @pytest.mark.parametrize("protocol", ["fastclaim", "cops"])
    def test_exploration_identical_across_modes(self, protocol):
        results = {}
        for mode in MODES:
            with use_snapshot_mode(mode):
                r = explore_write_read_race(
                    protocol, max_depth=14, max_states=4_000
                )
            results[mode] = (
                r.states_visited,
                r.schedules_completed,
                r.truncated,
                sorted(tuple(s) for s, _ in r.violations),
            )
        assert results["bytes"] == results["deepcopy"] == results["blob"]


# ---------------------------------------------------------------------------
# Cost accounting
# ---------------------------------------------------------------------------


class TestSimCounters:
    def test_counters_track_snapshot_restore_fingerprint(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        snap = sim.snapshot()
        sim.fingerprint(snap)
        sim.step("p")
        sim.restore(snap)
        c = sim.counters
        assert c.snapshots == 1
        assert c.restores == 1
        assert c.fingerprints == 1
        assert c.bytes_serialized > 0

    def test_unchanged_state_reuses_serialization(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        sim.snapshot()
        before = sim.counters.bytes_serialized
        sim.snapshot()  # no event in between: the cached blob is reused
        assert sim.counters.bytes_serialized == before
        assert sim.counters.cache_hits >= 1
        assert sim.counters.bytes_reused > 0

    def test_restore_to_current_state_keeps_live_objects(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        snap = sim.snapshot()
        procs = sim.processes
        sim.restore(snap)  # nothing happened: live state already matches
        assert sim.counters.restore_reuses == 1
        assert sim.processes is procs

    def test_restore_after_event_materializes_fresh_objects(self):
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        snap = sim.snapshot()
        procs = sim.processes
        sim.step("p")
        sim.restore(snap)
        assert sim.processes is not procs
        assert sim.counters.bytes_restored > 0

    def test_byte_accumulation_arithmetic(self):
        """The ledger's byte fields follow the component arithmetic.

        A fresh snapshot pays exactly its own size in ``bytes_serialized``
        (the network component is a zero-byte structural capture, so
        ``size_bytes`` and the pickled process bytes coincide); a delta
        restore pays ``bytes_restored`` only for the process sub-blobs it
        actually reloads, and every component it touches lands in exactly
        one of ``components_restored`` / ``components_reused``.
        """
        sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
        n_components = len(sim.processes) + 1  # + the network
        snap = sim.snapshot()
        c = sim.counters
        assert c.bytes_serialized == snap.size_bytes()
        assert c.components_serialized == c.cache_misses == n_components
        sim.step("p")
        before = c.as_dict()
        sim.restore(snap)
        assert c.restores == before["restores"] + 1
        loaded = c.components_restored - before["components_restored"]
        kept = c.components_reused - before["components_reused"]
        assert loaded + kept == n_components
        # the step dirtied exactly "p" and the network; "e" stays live
        assert (loaded, kept) == (2, n_components - 2)
        delta = c.bytes_restored - before["bytes_restored"]
        assert delta == len(dict(snap.proc_blobs)["p"])

    @pytest.mark.parametrize("mode", MODES)
    def test_restore_reuse_consistency_across_modes(self, mode):
        """``restore_reuses`` means zero byte traffic, in both byte modes.

        The deepcopy oracle is deliberately naive — it always rebuilds,
        so it must never claim a reuse (a reuse it *wrongly* claimed
        would mask exactly the cache bugs the oracle exists to catch).
        """
        with use_snapshot_mode(mode):
            sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
            snap = sim.snapshot()
            before = sim.counters.as_dict()
            sim.restore(snap)  # live state already matches the snapshot
            c = sim.counters
            expected_reuses = 0 if mode == "deepcopy" else 1
            assert c.restore_reuses == before["restore_reuses"] + expected_reuses
            assert c.bytes_restored == before["bytes_restored"]
            sim.step("p")
            sim.restore(snap)  # now a real restore: traffic resumes
            assert (
                c.restore_reuses == before["restore_reuses"] + expected_reuses
            )
            if mode != "deepcopy":  # deepcopy moves objects, not bytes
                assert c.bytes_restored > before["bytes_restored"]

    @pytest.mark.parametrize("mode", ["bytes", "blob"])
    def test_snapshot_reuse_bytes_across_modes(self, mode):
        """Back-to-back snapshots reuse serialization in both byte modes."""
        with use_snapshot_mode(mode):
            sim = Simulation([Pinger("p", "e", n=2), Echo("e")])
            sim.snapshot()
            before = sim.counters.as_dict()
            sim.snapshot()
            c = sim.counters
            assert c.bytes_serialized == before["bytes_serialized"]
            assert c.bytes_reused > before["bytes_reused"]
            assert c.cache_hits > before["cache_hits"]

    def test_merge_adds_every_field(self):
        """merge() is plain fieldwise addition — including the component
        fields, so worker ledgers survive the parallel merge intact."""
        a = SimCounters(**{k: 2 * i + 1 for i, k in
                           enumerate(SimCounters().as_dict())})
        b = SimCounters(**{k: 10 * (i + 1) for i, k in
                           enumerate(SimCounters().as_dict())})
        expect = {k: a.as_dict()[k] + b.as_dict()[k] for k in a.as_dict()}
        a.merge(b)
        assert a.as_dict() == expect

    def test_workers_counters_include_worker_traffic(self, monkeypatch):
        """A pooled run's merged ledger carries the workers' restores."""
        from repro.engine import parallel

        monkeypatch.setattr(parallel, "SERIAL_PROBE_STATES", 0)
        serial = explore_write_read_race(
            "fastclaim", max_depth=12, max_states=4_000, por=True,
            first_violation_only=False,
        )
        fanned = explore_write_read_race(
            "fastclaim", max_depth=12, max_states=4_000, por=True,
            first_violation_only=False, workers=2,
        )
        assert not fanned.auto_serial
        # the merged ledger covers seeding + every worker subtree: at
        # least as many restores/snapshots as the serial run's whole walk
        assert fanned.counters.restores >= serial.counters.restores
        assert fanned.counters.snapshots >= serial.counters.snapshots

    def test_describe_and_as_dict(self):
        c = SimCounters(snapshots=3, restores=2, fingerprints=1,
                        bytes_serialized=100, bytes_reused=300)
        text = c.describe()
        assert "3 snapshots" in text and "2 restores" in text
        d = c.as_dict()
        assert d["snapshots"] == 3 and d["bytes_reused"] == 300

    def test_exploration_surfaces_counters(self):
        r = explore_write_read_race("fastclaim", max_depth=10, max_states=500)
        assert r.counters is not None
        assert r.counters.snapshots > 0
        assert "cost:" in r.describe()


# ---------------------------------------------------------------------------
# The max_states budget
# ---------------------------------------------------------------------------


class TestStateBudget:
    def test_budget_cuts_search_immediately(self):
        r = explore_write_read_race(
            "cops", max_depth=22, max_states=200, first_violation_only=False
        )
        # the budget check counts the state that overflows it, then stops
        # all descent: exactly one state past the budget is ever visited
        assert r.states_visited == 201
        assert r.truncated >= 1

    def test_budget_truncation_counts_cut_siblings(self):
        small = explore_write_read_race("cops", max_depth=22, max_states=200)
        big = explore_write_read_race("cops", max_depth=22, max_states=6_000)
        assert big.states_visited == 6_001
        # a deeper budget explores strictly more and truncates elsewhere
        assert big.schedules_completed > small.schedules_completed

    def test_unbudgeted_run_not_truncated(self):
        r = explore_write_read_race("fastclaim", max_depth=8, max_states=10**6)
        # shallow depth truncates, but never via the state budget
        assert r.states_visited < 10**6


# ---------------------------------------------------------------------------
# Fingerprint properties (hypothesis): equal prefixes agree, any extra
# event disagrees — this is the property that guards the dirty-tracked
# fingerprint cache (a missing mark_dirty would serve a stale fingerprint
# and break the second half)
# ---------------------------------------------------------------------------


def fresh_sim():
    return Simulation([Pinger("p", "e", n=3), Echo("e")])


def apply_choices(sim, choices):
    """Drive the sim by the explorer's own enabled-event menu."""
    applied = 0
    for c in choices:
        events = enabled_events(sim, ("p", "e"))
        if not events:
            break
        events[c % len(events)].apply(sim)
        applied += 1
    return applied


class TestFingerprintProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=12))
    def test_same_prefix_same_fingerprint(self, choices):
        a, b = fresh_sim(), fresh_sim()
        apply_choices(a, choices)
        apply_choices(b, choices)
        assert a.fingerprint() == b.fingerprint()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=7), max_size=10),
        st.integers(min_value=0, max_value=7),
    )
    def test_extra_event_changes_fingerprint(self, choices, extra):
        sim = fresh_sim()
        apply_choices(sim, choices)
        fp = sim.fingerprint()
        if apply_choices(sim, [extra]) == 0:
            return  # quiescent: no extra event exists
        assert sim.fingerprint() != fp

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=10))
    def test_fingerprint_stable_across_snapshot_restore(self, choices):
        sim = fresh_sim()
        apply_choices(sim, choices)
        snap = sim.snapshot()
        fp = sim.fingerprint(snap)
        apply_choices(sim, [0, 1, 2])
        sim.restore(snap)
        assert sim.fingerprint() == fp


# ---------------------------------------------------------------------------
# Network-capture reuse soundness across DFS branches (regression)
# ---------------------------------------------------------------------------


class TestNetCaptureBranchSoundness:
    """The per-container reuse inside ``_net_capture`` must compare
    element-for-element by identity.

    Restores share the pre-fork ``Message`` objects by reference and
    ``Network.deliver`` removes from arbitrary queue positions, so two
    sibling branches that deliver *different* non-last messages out of
    the same restored length-3 queue hold containers with equal length
    and an identical last element but different contents.  The old
    (length, last-element) guard aliased their captures, corrupting the
    second branch's snapshot and strict fingerprint.
    """

    @pytest.mark.parametrize("mode", ("bytes", "codec"))
    def test_sibling_branches_do_not_alias_captures(self, mode):
        with use_snapshot_mode(mode):
            sim = Simulation([Pinger("a", "b", n=3), Echo("b")])
            for _ in range(3):
                sim.step("a")  # queue a->b now holds link_seq 0, 1, 2
            base = sim.snapshot()
            sim.fingerprint(base)
            # branch A: deliver the head of the queue
            sim.deliver("a", "b", 0)
            snap_a = sim.snapshot()
            fp_a = sim.fingerprint(snap_a)
            # back out; branch B: deliver the *middle* message — same
            # length, same (shared) last element, different contents
            sim.restore(base)
            sim.deliver("a", "b", 1)
            snap_b = sim.snapshot()
            fp_b = sim.fingerprint(snap_b)
            q_a = [m.link_seq for m in snap_a.network.in_transit[("a", "b")]]
            q_b = [m.link_seq for m in snap_b.network.in_transit[("a", "b")]]
            assert q_a == [1, 2]
            assert q_b == [0, 2]
            assert fp_a != fp_b
            # the strict fingerprint must be a pure function of the
            # state: a fresh simulation driven to B's exact state agrees
            fresh = Simulation([Pinger("a", "b", n=3), Echo("b")])
            for _ in range(3):
                fresh.step("a")
            fresh.deliver("a", "b", 1)
            assert fresh.fingerprint() == fp_b

    @pytest.mark.parametrize("mode", ("bytes", "codec"))
    def test_income_buffers_do_not_alias_captures(self, mode):
        """Same aliasing shape on the income buffers: both branches end
        by delivering the same (shared) message, so the buffers agree on
        length and last element but differ in the middle."""
        with use_snapshot_mode(mode):
            sim = Simulation([Pinger("a", "b", n=3), Echo("b")])
            for _ in range(3):
                sim.step("a")
            base = sim.snapshot()
            sim.fingerprint(base)
            sim.deliver("a", "b", 0)
            sim.deliver("a", "b", 2)
            snap_a = sim.snapshot()
            fp_a = sim.fingerprint(snap_a)
            sim.restore(base)
            sim.deliver("a", "b", 1)
            sim.deliver("a", "b", 2)
            snap_b = sim.snapshot()
            fp_b = sim.fingerprint(snap_b)
            assert fp_a != fp_b
            got_a = [m.link_seq for m in snap_a.network.income["b"]]
            got_b = [m.link_seq for m in snap_b.network.income["b"]]
            assert got_a == [0, 2]
            assert got_b == [1, 2]


# ---------------------------------------------------------------------------
# Identity-keyed fingerprint memos stay bounded (regression)
# ---------------------------------------------------------------------------


def test_payload_canon_memo_is_bounded(monkeypatch):
    """The canonical-payload memo pins every message it ever sees, so it
    must evict: messages are re-minted on every post-restore
    re-execution and an unbounded memo grows with total events."""
    from repro.sim import executor as executor_mod
    from repro.sim.messages import Message

    from helpers import Note

    monkeypatch.setattr(executor_mod, "_PAYLOAD_MEMO_CAP", 8)
    sim = Simulation([Echo("a"), Echo("b")])
    for i in range(50):
        m = Message(msg_id=i, src="a", dst="b", link_seq=i, payload=Note(i))
        assert sim._canon_payload(m) == sim._canon_payload(m)
    assert len(sim._payload_canon) <= 8


def test_net_frag_memo_is_bounded(monkeypatch):
    """The strict-payload fragment memo is cleared on overflow instead
    of pinning every capture sub-tuple for the simulation's life."""
    from repro.sim import executor as executor_mod

    monkeypatch.setattr(executor_mod, "_NET_FRAG_CAP", 4)
    sim = Simulation([Pinger("a", "b", n=10), Echo("b")])
    fps = []
    for _ in range(10):
        sim.step("a")
        fps.append(sim.fingerprint())
    # one insert per container per pass after a possible clear: the memo
    # hovers at the cap plus the live container count, independent of
    # the number of events executed
    containers = len(sim.network.in_transit) + len(sim.network.income)
    assert len(sim._net_frag) <= 4 + containers
    assert len(set(fps)) == len(fps)  # eviction never changed a hash
