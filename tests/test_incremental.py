"""The incremental checkers against their batch oracles.

Three layers of evidence that :mod:`repro.consistency.incremental` is a
faithful replacement for re-running the batch checkers at every
exploration leaf:

* **CausalOrder units** — the append path (``add_node``/``add_edge``)
  agrees with batch ``from_edges`` closure, reports exact closure
  deltas, and rolls back through checkpoints bit-exactly.
* **Property equivalence** (hypothesis) — for random histories driven
  through arbitrary advance/checkpoint/rollback/re-advance sequences,
  every intermediate verdict of every incremental checker is
  *bit-identical* (same anomalies, same order) to the matching batch
  checker on the records consumed so far; corrupt histories raise the
  same way.
* **Engine equivalence** — ``explore`` with the delta checkers returns
  the same result as with the batch scan, including the first-violation
  schedule trace, across POR and parallel workers; the engine's
  ``checker_oracle`` cross-check stays silent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency import (
    IncrementalCausalChecker,
    IncrementalReadAtomicChecker,
    IncrementalSessionChecker,
    find_causal_anomalies,
    find_fractured_reads,
)
from repro.consistency.sessions import check_sessions
from repro.core.explore import explore_write_read_race
from repro.txn.history import CausalOrder, History
from repro.txn.types import BOTTOM

from helpers import rec

CHECKERS = [
    (IncrementalCausalChecker, find_causal_anomalies),
    (IncrementalReadAtomicChecker, find_fractured_reads),
    (IncrementalSessionChecker, check_sessions),
]


# ---------------------------------------------------------------------------
# CausalOrder: append path vs batch closure, checkpoint/rollback
# ---------------------------------------------------------------------------


class TestCausalOrderAppendPath:
    def test_extend_matches_from_edges(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("b", "c"), ("a", "d")]
        batch = CausalOrder.from_edges(nodes, edges)
        inc = CausalOrder()
        for n in nodes:
            inc.add_node(n)
        inc.extend(edges)
        for x in nodes:
            for y in nodes:
                assert inc.lt(x, y) == batch.lt(x, y), (x, y)

    def test_add_edge_reports_closure_delta(self):
        o = CausalOrder()
        for n in ("a", "b", "c"):
            o.add_node(n)
        assert o.add_edge("a", "b") == [("a", "b")]
        # closing b<c also relates a<c transitively
        assert sorted(o.add_edge("b", "c")) == [("a", "c"), ("b", "c")]
        # an already-implied edge is an empty delta
        assert o.add_edge("a", "c") == []

    def test_add_edge_rejects_cycles_unchanged(self):
        o = CausalOrder()
        for n in ("a", "b"):
            o.add_node(n)
        o.add_edge("a", "b")
        with pytest.raises(ValueError):
            o.add_edge("b", "a")
        assert o.lt("a", "b") and not o.lt("b", "a")

    def test_rollback_restores_relations_and_nodes(self):
        o = CausalOrder()
        o.add_node("a")
        tok = o.checkpoint()
        o.add_node("b")
        o.add_edge("a", "b")
        assert o.lt("a", "b")
        o.rollback(tok)
        assert "b" not in o and not o.lt("a", "b")
        # the order is reusable after rollback
        o.add_node("b2")
        o.add_edge("a", "b2")
        assert o.lt("a", "b2")


# ---------------------------------------------------------------------------
# property equivalence: incremental == batch under arbitrary schedules
# ---------------------------------------------------------------------------


@st.composite
def arrival_plans(draw):
    """Records plus an arrival order and a checkpoint/rollback script.

    Up to 6 transactions over 2 objects and 3 clients; reads may be ⊥, a
    previously-written value, a value written by a *later* record (so it
    arrives pending and resolves on the writer's commit), or a value
    nobody ever writes (the "<nonexistent>" verdict paths).  Arrival
    order is any interleaving preserving per-client program order.
    """
    n = draw(st.integers(1, 6))
    objs = ("X", "Y")
    clients = ("c1", "c2", "c3")
    all_vals = [f"{o}{i}" for o in objs for i in range(n)]
    records = []
    for i in range(n):
        client = draw(st.sampled_from(clients))
        kind = draw(st.sampled_from(["r", "w", "rw"]))
        reads, writes = {}, {}
        if kind in ("r", "rw"):
            for obj in sorted(draw(st.sets(st.sampled_from(objs), min_size=1))):
                reads[obj] = draw(
                    st.sampled_from(
                        [BOTTOM]
                        + [v for v in all_vals if v.startswith(obj)]
                        + [f"{obj}never"]
                    )
                )
        if kind in ("w", "rw"):
            for obj in sorted(draw(st.sets(st.sampled_from(objs), min_size=1))):
                writes[obj] = f"{obj}{i}"
        if not reads and not writes:
            writes = {"X": f"X{i}"}
        records.append(
            rec(f"T{i}", client, reads=reads, writes=writes, invoked_at=i)
        )
    # an arrival interleaving preserving per-client program order
    per_client = {c: [r for r in records if r.client == c] for c in clients}
    arrival = []
    pos = {c: 0 for c in clients}
    while len(arrival) < n:
        ready = [c for c in clients if pos[c] < len(per_client[c])]
        c = draw(st.sampled_from(sorted(ready)))
        arrival.append(per_client[c][pos[c]])
        pos[c] += 1
    script = draw(
        st.lists(st.sampled_from(["advance", "mark", "rollback"]), max_size=12)
    )
    return arrival, script


def batch_verdict(batch, consumed):
    """The batch checker's verdict on the records consumed so far."""
    hist = History(
        records=sorted(consumed, key=lambda r: (r.invoked_at, r.txid))
    )
    try:
        return ("ok", [repr(a) for a in batch(hist)])
    except ValueError:
        return ("corrupt",)


def incremental_verdict(checker):
    try:
        return ("ok", [repr(a) for a in checker.anomalies()])
    except ValueError:
        return ("corrupt",)


@pytest.mark.parametrize(
    "factory,batch", CHECKERS, ids=["causal", "read-atomic", "sessions"]
)
class TestIncrementalMatchesBatch:
    @given(arrival_plans())
    @settings(max_examples=120, deadline=None)
    def test_every_intermediate_verdict(self, factory, batch, plan):
        arrival, script = plan
        checker = factory()
        consumed = []
        # interleave the script's checkpoints/rollbacks with advancing,
        # ending with everything consumed; verify after every step
        marks = []
        i = 0
        for op in script + ["advance"] * (len(arrival) - i):
            if op == "advance" and i < len(arrival):
                checker.advance([arrival[i]])
                consumed.append(arrival[i])
                i += 1
            elif op == "mark":
                marks.append((checker.checkpoint(), i))
            elif op == "rollback" and marks:
                tok, i = marks.pop()
                checker.rollback(tok)
                consumed = consumed[:i]
            assert incremental_verdict(checker) == batch_verdict(
                batch, consumed
            ), [r.txid for r in consumed]
        while i < len(arrival):
            checker.advance([arrival[i]])
            consumed.append(arrival[i])
            i += 1
        assert incremental_verdict(checker) == batch_verdict(batch, consumed)


# ---------------------------------------------------------------------------
# engine equivalence: delta checkers vs batch scan end to end
# ---------------------------------------------------------------------------


def result_key(r):
    return (
        r.states_visited,
        r.states_deduped,
        r.schedules_completed,
        r.truncated,
        [(trace, [str(a) for a in anomalies]) for trace, anomalies in r.violations],
    )


@pytest.mark.parametrize(
    "protocol,por,workers",
    [
        ("fastclaim", False, 1),
        ("fastclaim", True, 1),
        ("fastclaim", True, 2),
        ("cops_snow", True, 1),
        ("cops_snow", True, 2),
    ],
)
def test_explore_identical_with_and_without_delta_checkers(
    protocol, por, workers
):
    """Counts, verdicts and the first-violation trace are bit-identical."""
    inc = explore_write_read_race(
        protocol, por=por, workers=workers, max_depth=30
    )
    bat = explore_write_read_race(
        protocol, por=por, workers=workers, max_depth=30, incremental=False
    )
    assert inc.incremental and not bat.incremental
    assert result_key(inc) == result_key(bat)
    assert inc.checks == bat.checks


@pytest.mark.parametrize("checker", ["causal", "read-atomic", "sessions"])
def test_engine_oracle_stays_silent(checker):
    """checker_oracle re-runs the batch scan at every leaf and raises on
    any divergence — a silent pass is leaf-by-leaf bit-identity."""
    r = explore_write_read_race(
        "fastclaim",
        por=True,
        checker=checker,
        max_depth=30,
        first_violation_only=False,
        checker_oracle=True,
    )
    assert r.checks > 0 and r.incremental


def test_non_dfs_strategies_fall_back_to_batch():
    r = explore_write_read_race(
        "fastclaim", strategy="bfs", por=True, max_depth=26
    )
    assert not r.incremental and r.checks > 0
